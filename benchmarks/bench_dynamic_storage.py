"""E6 — Case study (Section VII): dynamic-weighted storage vs. static baselines.

Thin wrapper over the registered ``dynamic-storage-adaptation`` scenario
(:mod:`repro.experiments.catalogue`): a read/write workload runs against
three deployments of the same 5-server cluster while the two initially-fast
servers degrade by 8x halfway through.

Shape to reproduce: before the degradation the two weighted variants are
comparable and beat MQS; after it, only the dynamic variant recovers, because
it is the only one that can re-point quorums without reconfiguration.
"""

from __future__ import annotations

from repro.experiments import get_scenario

from benchmarks.conftest import print_table


def run_comparison():
    return get_scenario("dynamic-storage-adaptation").execute(
        {"slow_at": 150.0, "slow_factor": 8.0, "operations": 60, "seed": 11}
    )["rows"]


def test_dynamic_storage_adapts(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=2, iterations=1)

    print_table(
        "E6: client op latency before/after the fast servers degrade (median)",
        ["storage", "before degradation", "after degradation", "after p95"],
        [
            (row["flavour"], f"{row['before']:.1f}", f"{row['after']:.1f}", f"{row['after_p95']:.1f}")
            for row in rows
        ],
    )
    print("paper claim (Sec. I/VII): static weights help only while the weight "
          "distribution matches reality; the dynamic-weighted storage re-points "
          "quorums at run time and recovers after the change")

    majority, static_weighted, dynamic = rows
    # Before the slowdown, weighted quorums (static or dynamic) beat plain majority.
    assert static_weighted["before"] <= majority["before"] + 1e-6
    assert dynamic["before"] <= majority["before"] + 1e-6
    # After the slowdown the dynamic variant recovers: it beats the static
    # weighted deployment, whose weights still sit on the degraded servers.
    assert dynamic["after"] < static_weighted["after"]
