"""E6 — Case study (Section VII): dynamic-weighted storage vs. static baselines.

A read/write workload runs against three deployments of the same 5-server
cluster while the two initially-fast servers degrade by 8x halfway through:

* static majority ABD (MQS),
* static weighted ABD (weights fixed to the *initial* latencies, WHEAT-style),
* the paper's dynamic-weighted storage, where a transfer moves the voting
  power away from the degraded servers mid-run.

Shape to reproduce: before the degradation the two weighted variants are
comparable and beat MQS; after it, only the dynamic variant recovers, because
it is the only one that can re-point quorums without reconfiguration.
"""

from __future__ import annotations

from repro.core.spec import SystemConfig
from repro.net.latency import PerLinkLatency, SlowdownLatency
from repro.sim.cluster import build_dynamic_cluster, build_static_cluster
from repro.sim.metrics import summarize
from repro.sim.workload import uniform_workload
from repro.net.simloop import gather

from benchmarks.conftest import print_table

SLOW_AT = 150.0
RTT_ONE_WAY = {"s1": 1.0, "s2": 1.0, "s3": 4.0, "s4": 5.0, "s5": 30.0}
INITIAL_WEIGHTS = {"s1": 1.6, "s2": 1.6, "s3": 0.7, "s4": 0.7, "s5": 0.4}


def make_latency():
    table = {}
    for server, one_way in RTT_ONE_WAY.items():
        for peer in ("c1", "c2", "s1", "s2", "s3", "s4", "s5"):
            if peer != server:
                table[(peer, server)] = one_way
                table[(server, peer)] = one_way
    base = PerLinkLatency(table, default=1.0, jitter=0.02, seed=11)
    return SlowdownLatency(base, slow=["s1", "s2"], factor=8.0, start_at=SLOW_AT)


def run_flavour(flavour):
    config = SystemConfig(
        servers=tuple(sorted(INITIAL_WEIGHTS, key=lambda s: int(s[1:]))),
        f=1,
        initial_weights=dict(INITIAL_WEIGHTS),
    )
    if flavour == "dynamic-weighted":
        cluster = build_dynamic_cluster(config, latency=make_latency(), client_count=2)
    else:
        cluster = build_static_cluster(
            config, latency=make_latency(), client_count=2,
            weighted=(flavour == "static-weighted"),
        )
    loop = cluster.loop
    before, after = [], []

    async def client_loop(client):
        for index in range(60):
            bucket = before if loop.now < SLOW_AT else after
            if index % 3 == 0:
                await client.write(f"{client.pid}-{index}")
            else:
                await client.read()
            bucket.append(client.history[-1].latency)
            await loop.sleep(3.0)

    async def reassigner():
        if flavour != "dynamic-weighted":
            return
        await loop.sleep(SLOW_AT + 20.0)
        # The degraded servers push their weight to the healthy ones (C1/C2).
        await cluster.servers["s1"].transfer("s3", 0.8)
        await cluster.servers["s2"].transfer("s4", 0.8)

    tasks = [client_loop(client) for client in cluster.clients.values()]
    tasks.append(reassigner())
    loop.run_until_complete(gather(loop, tasks))
    return {
        "flavour": flavour,
        "before": summarize(before).median,
        "after": summarize(after).median,
        "after_p95": summarize(after).p95,
    }


def run_comparison():
    return [
        run_flavour("static-majority"),
        run_flavour("static-weighted"),
        run_flavour("dynamic-weighted"),
    ]


def test_dynamic_storage_adapts(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=2, iterations=1)

    print_table(
        "E6: client op latency before/after the fast servers degrade (median)",
        ["storage", "before degradation", "after degradation", "after p95"],
        [
            (row["flavour"], f"{row['before']:.1f}", f"{row['after']:.1f}", f"{row['after_p95']:.1f}")
            for row in rows
        ],
    )
    print("paper claim (Sec. I/VII): static weights help only while the weight "
          "distribution matches reality; the dynamic-weighted storage re-points "
          "quorums at run time and recovers after the change")

    majority, static_weighted, dynamic = rows
    # Before the slowdown, weighted quorums (static or dynamic) beat plain majority.
    assert static_weighted["before"] <= majority["before"] + 1e-6
    assert dynamic["before"] <= majority["before"] + 1e-6
    # After the slowdown the dynamic variant recovers: it beats the static
    # weighted deployment, whose weights still sit on the degraded servers.
    assert dynamic["after"] < static_weighted["after"]
