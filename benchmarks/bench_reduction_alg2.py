"""E4 — Algorithm 2 / Theorem 2: consensus from pairwise weight reassignment.

Same sweep as E3, using the pairwise transfer pattern of Algorithm 2
(intra-F 0.1 shuffles, 0.4 transfers towards s1).  Additionally checks the
pairwise-specific invariants: the total weight never changes, and the decided
value always originates outside F.
"""

from __future__ import annotations

from repro.core.reductions import (
    OraclePairwiseReassignment,
    algorithm2_propose,
    algorithm_config,
)
from repro.net.registers import SWMRRegisterArray
from repro.net.simloop import SimLoop, gather

from benchmarks.conftest import print_table

SWEEP = [(7, 2), (10, 3), (13, 4)]


def run_sweep():
    rows = []
    for n, f in SWEEP:
        loop = SimLoop()
        config = algorithm_config(n, f)
        registers = SWMRRegisterArray(config.servers)
        oracle = OraclePairwiseReassignment(loop, config)
        decisions = loop.run_until_complete(
            gather(
                loop,
                [
                    algorithm2_propose(loop, config, registers, oracle, i, f"value-{i}")
                    for i in range(1, n + 1)
                ],
            )
        )
        # Count only the 0.4-transfers issued by members of S \ F (the intra-F
        # 0.1 shuffles may also target s1 and are always effective).
        effective_into_s1 = sum(
            1
            for record in oracle.trace
            if record.requested[2] == 0.4 and any(c.delta != 0 for c in record.created)
        )
        total_drift = max(
            abs(sum(record.weights_after.values()) - config.total_initial_weight)
            for record in oracle.trace
        )
        decided_index = int(decisions[0].split("-")[1])
        rows.append(
            {
                "n": n,
                "f": f,
                "distinct_decisions": len(set(decisions)),
                "effective_into_s1": effective_into_s1,
                "decided_outside_f": decided_index > f,
                "total_drift": total_drift,
            }
        )
    return rows


def test_algorithm2_reduction(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=3, iterations=1)

    print_table(
        "E4 / Algorithm 2: consensus from pairwise weight reassignment",
        ["n", "f", "distinct decisions", "effective 0.4-transfers", "decided outside F", "total-weight drift"],
        [
            (
                row["n"],
                row["f"],
                row["distinct_decisions"],
                row["effective_into_s1"],
                row["decided_outside_f"],
                f"{row['total_drift']:.1e}",
            )
            for row in rows
        ],
    )
    print("paper: exactly one transfer by a member of S\\F completes effectively; all "
          "servers decide that member's proposal; the total weight never changes")

    for row in rows:
        assert row["distinct_decisions"] == 1
        assert row["effective_into_s1"] == 1
        assert row["decided_outside_f"]
        assert row["total_drift"] < 1e-9
