"""E10 — Section VIII: the relationship with asset transfer.

Runs the same transfer workload through (a) consensus-free 1-owner asset
transfer and (b) sequencer-ordered k-owner asset transfer, and contrasts both
with the paper's pairwise weight reassignment on the dimension the paper
highlights: what must hold besides "balances stay non-negative".

Shapes to reproduce:
* 1-asset transfer completes in a couple of message delays with no ordering
  service (consensus number 1), exactly like the paper's restricted protocol;
* k-owner accounts need the ordering service, and conflicting overdraws are
  resolved identically everywhere;
* weight reassignment additionally enforces a *distribution* constraint
  (P-Integrity): a transfer that keeps every balance non-negative can still be
  rejected because it concentrates too much voting power.
"""

from __future__ import annotations

from repro.assettransfer.k_asset import KAssetReplica
from repro.assettransfer.one_asset import OneAssetServer
from repro.consensus.sequencer import Sequencer
from repro.core.reductions import OraclePairwiseReassignment, algorithm_config
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.simloop import SimLoop, gather

from benchmarks.conftest import print_table


def run_one_asset():
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    ids = [f"s{i}" for i in range(1, 6)]
    servers = {pid: OneAssetServer(pid, network, ids, 1, {p: 10.0 for p in ids}) for pid in ids}

    async def scenario():
        outcomes = await gather(loop, [
            servers["s1"].transfer("s2", 3.0),
            servers["s2"].transfer("s3", 3.0),
            servers["s3"].transfer("s1", 3.0),
        ])
        return outcomes

    outcomes = loop.run_until_complete(scenario())
    loop.run()
    totals = {pid: server.book.total() for pid, server in servers.items()}
    mean_latency = sum(o.latency for o in outcomes) / len(outcomes)
    return {"applied": sum(o.applied for o in outcomes), "latency": mean_latency,
            "total_conserved": all(abs(t - 50.0) < 1e-9 for t in totals.values()),
            "messages": network.messages_sent}


def run_k_asset():
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    ids = [f"s{i}" for i in range(1, 5)]
    Sequencer("seq", network, ids)
    balances = {"shared": 10.0, "sink": 0.0}
    owners = {"shared": ids[:2], "sink": ids}
    replicas = {pid: KAssetReplica(pid, network, "seq", balances, owners) for pid in ids}

    async def scenario():
        return await gather(loop, [
            replicas["s1"].transfer("shared", "sink", 7.0),
            replicas["s2"].transfer("shared", "sink", 7.0),
        ])

    outcomes = loop.run_until_complete(scenario())
    loop.run()
    final = {pid: replica.balance_of("shared") for pid, replica in replicas.items()}
    mean_latency = sum(o.latency for o in outcomes) / len(outcomes)
    return {"applied": sum(o.applied for o in outcomes),
            "consistent": len(set(final.values())) == 1,
            "latency": mean_latency}


def run_pairwise_distribution_constraint():
    loop = SimLoop()
    config = algorithm_config(7, 2)
    oracle = OraclePairwiseReassignment(loop, config)

    async def scenario():
        # Both transfers keep every "balance" non-negative, yet the second is
        # rejected: it would give the f heaviest servers half the voting power.
        first = await oracle.transfer("s3", "s3", "s1", 0.4)
        second = await oracle.transfer("s4", "s4", "s1", 0.4)
        return first, second

    first, second = loop.run_until_complete(scenario())
    balances_stay_non_negative = all(
        weight >= 0 for weight in oracle.current_weights().values()
    )
    return {"first_effective": first[0].delta != 0, "second_effective": second[0].delta != 0,
            "balances_non_negative": balances_stay_non_negative}


def test_asset_transfer_relationship(benchmark):
    one, k, pairwise = benchmark.pedantic(
        lambda: (run_one_asset(), run_k_asset(), run_pairwise_distribution_constraint()),
        rounds=3, iterations=1,
    )

    print_table(
        "E10: asset transfer vs. pairwise weight reassignment",
        ["system", "ordering service", "observation"],
        [
            ("1-asset transfer (1 owner)", "none",
             f"{one['applied']}/3 transfers applied, mean latency {one['latency']:.1f}, "
             f"totals conserved={one['total_conserved']}"),
            ("k-asset transfer (2 owners)", "sequencer",
             f"conflicting overdraws -> {k['applied']}/2 applied, replicas consistent={k['consistent']}"),
            ("pairwise weight reassignment", "n/a (oracle)",
             "2nd transfer rejected by P-Integrity although no balance went negative"),
        ],
    )
    print("paper claim (Sec. VIII): pairwise reassignment resembles asset transfer, but "
          "adds a weight-distribution condition (P-Integrity) that asset transfer lacks")

    assert one["applied"] == 3 and one["total_conserved"]
    assert k["applied"] == 1 and k["consistent"]
    assert pairwise["first_effective"] and not pairwise["second_effective"]
    assert pairwise["balances_non_negative"]
