"""E9/E10 — Section VIII: the relationship with asset transfer.

A thin wrapper over the registered ``asset-transfer`` scenario (see
:mod:`repro.experiments.catalogue`), which runs the same transfer workload
through (a) consensus-free 1-owner asset transfer and (b) sequencer-ordered
k-owner asset transfer, and contrasts both with the paper's pairwise weight
reassignment on the dimension the paper highlights: what must hold besides
"balances stay non-negative".

Shapes to reproduce:
* 1-asset transfer completes in a couple of message delays with no ordering
  service (consensus number 1), exactly like the paper's restricted protocol;
* k-owner accounts need the ordering service, and conflicting overdraws are
  resolved identically everywhere;
* weight reassignment additionally enforces a *distribution* constraint
  (P-Integrity): a transfer that keeps every balance non-negative can still be
  rejected because it concentrates too much voting power.
"""

from __future__ import annotations

from repro.experiments.catalogue import asset_transfer

from benchmarks.conftest import print_table


def test_asset_transfer_relationship(benchmark):
    result = benchmark.pedantic(asset_transfer, rounds=3, iterations=1)
    one, k, pairwise = result["one_asset"], result["k_asset"], result["pairwise"]

    print_table(
        "E9/E10: asset transfer vs. pairwise weight reassignment",
        ["system", "ordering service", "observation"],
        [
            ("1-asset transfer (1 owner)", "none",
             f"{one['applied']}/3 transfers applied, mean latency "
             f"{one['mean_latency']:.1f}, totals conserved={one['total_conserved']}"),
            ("k-asset transfer (2 owners)", "sequencer",
             f"conflicting overdraws -> {k['applied']}/2 applied, "
             f"replicas consistent={k['consistent']}"),
            ("pairwise weight reassignment", "n/a (oracle)",
             "2nd transfer rejected by P-Integrity although no balance went negative"),
        ],
    )
    print("paper claim (Sec. VIII): pairwise reassignment resembles asset transfer, but "
          "adds a weight-distribution condition (P-Integrity) that asset transfer lacks")

    assert one["applied"] == 3 and one["total_conserved"]
    assert k["applied"] == 1 and k["consistent"]
    assert pairwise["first_effective"] and not pairwise["second_effective"]
    assert pairwise["balances_non_negative"]
