"""E7 — Epochless RPWR vs. the epoch-based protocol of related work [11].

Thin wrapper over the registered ``epoch-vs-epochless`` scenario
(:mod:`repro.experiments.catalogue`).  Shapes to reproduce (Section VIII):
the epochless protocol completes in a few message delays regardless of any
epoch knob, while the epoch-based protocol's latency scales with the epoch
length and it can leak weight when issuers crash mid-protocol.
"""

from __future__ import annotations

from repro.experiments import get_scenario

from benchmarks.conftest import print_table

N = 7
EPOCH_LENGTHS = [5.0, 20.0, 80.0]


def run_comparison():
    return get_scenario("epoch-vs-epochless").execute(
        {"n": N, "f": 2, "epoch_lengths": EPOCH_LENGTHS, "crash_epoch_length": 20.0}
    )["rows"]


def test_epoch_vs_epochless(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=3, iterations=1)

    print_table(
        "E7: reassignment completion latency and weight preservation (n=7, f=2)",
        ["protocol", "epoch len", "mean completion latency", "total weight after", "leaked"],
        [
            (
                row["protocol"],
                row["epoch"],
                f"{row['mean_latency']:.2f}",
                f"{row['total_weight']:.2f}",
                f"{row['leaked']:.2f}",
            )
            for row in rows
        ],
    )
    print("paper claim (Sec. VIII): the epochless protocol is insensitive to any epoch "
          "knob and never loses voting power; the epoch-based protocol's latency tracks "
          "the epoch length and its total weight can shrink below W_S,0")

    epochless = rows[0]
    epoch_rows = rows[1:4]
    crash_row = rows[4]
    # Epochless latency is a few message delays and beats every epoch setting.
    assert epochless["mean_latency"] <= min(row["mean_latency"] for row in epoch_rows)
    # Epoch-based latency grows with the epoch length (monotone in the sweep).
    latencies = [row["mean_latency"] for row in epoch_rows]
    assert latencies == sorted(latencies)
    # Weight preservation: the paper's protocol keeps the total constant ...
    assert abs(epochless["total_weight"] - N) < 1e-9
    # ... while a crashed issuer leaks weight in the epoch-based baseline.
    assert crash_row["total_weight"] < N - 1e-9
    assert crash_row["leaked"] > 0
