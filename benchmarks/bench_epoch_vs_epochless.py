"""E7 — Epochless RPWR vs. the epoch-based protocol of related work [11].

Drives the same stream of transfer requests through (a) the paper's
restricted pairwise protocol and (b) the epoch-based baseline at several
epoch lengths, and reports completion latency and total-weight preservation.
Shapes to reproduce (Section VIII): the epochless protocol completes in a few
message delays regardless of any epoch knob, while the epoch-based protocol's
latency scales with the epoch length and it can leak weight when issuers
crash mid-protocol.
"""

from __future__ import annotations

from repro.core.protocol import ReassignmentServer
from repro.core.spec import SystemConfig
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.simloop import SimLoop, gather
from repro.reassign.epoch_based import EpochBasedCoordinator, EpochBasedServer

from benchmarks.conftest import print_table

N, F = 7, 2
REQUESTS = [("s4", "s1", 0.1), ("s5", "s2", 0.1), ("s6", "s3", 0.1), ("s7", "s1", 0.1)]
EPOCH_LENGTHS = [5.0, 20.0, 80.0]


def run_epochless():
    config = SystemConfig.uniform(N, f=F)
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    servers = {pid: ReassignmentServer(pid, network, config) for pid in config.servers}

    async def one(source, target, delta):
        return await servers[source].transfer(target, delta)

    outcomes = loop.run_until_complete(
        gather(loop, [one(*request) for request in REQUESTS])
    )
    loop.run()
    total = sum(servers["s1"].local_weights().values())
    mean_latency = sum(o.latency for o in outcomes) / len(outcomes)
    return {"protocol": "restricted pairwise (paper)", "epoch": "-",
            "mean_latency": mean_latency, "total_weight": total, "leaked": 0.0}


def run_epoch_based(epoch_length, crash_issuer=False):
    config = SystemConfig.uniform(N, f=F)
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    coordinator = EpochBasedCoordinator("coord", network, config, epoch_length)
    servers = {pid: EpochBasedServer(pid, network, config, "coord") for pid in config.servers}

    latencies = []

    async def one(source, target, delta):
        started = loop.now
        await servers[source].transfer(target, delta)
        latencies.append(loop.now - started)

    async def scenario():
        tasks = [loop.create_task(one(*request)) for request in REQUESTS]
        if crash_issuer:
            await loop.sleep(epoch_length * 0.5)
            network.crash("s4")
        for task in tasks:
            if not crash_issuer:
                await task

    loop.run_until_complete(scenario())
    loop.run(until=loop.now + 3 * epoch_length)
    coordinator.stop()
    loop.run(until=loop.now + epoch_length + 1)
    label = f"{epoch_length:.0f}" + (" +crash" if crash_issuer else "")
    return {
        "protocol": "epoch-based [11]",
        "epoch": label,
        "mean_latency": sum(latencies) / len(latencies) if latencies else float("nan"),
        "total_weight": coordinator.total_weight(),
        "leaked": coordinator.leaked_weight,
    }


def run_comparison():
    rows = [run_epochless()]
    for epoch_length in EPOCH_LENGTHS:
        rows.append(run_epoch_based(epoch_length))
    rows.append(run_epoch_based(20.0, crash_issuer=True))
    return rows


def test_epoch_vs_epochless(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=3, iterations=1)

    print_table(
        "E7: reassignment completion latency and weight preservation (n=7, f=2)",
        ["protocol", "epoch len", "mean completion latency", "total weight after", "leaked"],
        [
            (
                row["protocol"],
                row["epoch"],
                f"{row['mean_latency']:.2f}",
                f"{row['total_weight']:.2f}",
                f"{row['leaked']:.2f}",
            )
            for row in rows
        ],
    )
    print("paper claim (Sec. VIII): the epochless protocol is insensitive to any epoch "
          "knob and never loses voting power; the epoch-based protocol's latency tracks "
          "the epoch length and its total weight can shrink below W_S,0")

    epochless = rows[0]
    epoch_rows = rows[1:4]
    crash_row = rows[4]
    # Epochless latency is a few message delays and beats every epoch setting.
    assert epochless["mean_latency"] <= min(row["mean_latency"] for row in epoch_rows)
    # Epoch-based latency grows with the epoch length (monotone in the sweep).
    latencies = [row["mean_latency"] for row in epoch_rows]
    assert latencies == sorted(latencies)
    # Weight preservation: the paper's protocol keeps the total constant ...
    assert abs(epochless["total_weight"] - N) < 1e-9
    # ... while a crashed issuer leaks weight in the epoch-based baseline.
    assert crash_row["total_weight"] < N - 1e-9
    assert crash_row["leaked"] > 0
