"""E1 — Fig. 1 / Example 2: the restricted pairwise reassignment walkthrough.

Regenerates the paper's only figure: n = 7, f = 2, uniform initial weights.
Three transfers concentrate weight on {s1, s2, s3} until that minority forms
a weighted quorum; the two "red box" transfers are rejected because they
would push their sources to the RP-Integrity bound.
"""

from __future__ import annotations

from repro.core.protocol import ReassignmentServer
from repro.core.spec import SystemConfig, check_rp_integrity
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.simloop import SimLoop
from repro.quorum.weighted import WeightedMajorityQuorumSystem

from benchmarks.conftest import print_table

ACCEPTED_TRANSFERS = [("s4", "s1", 0.2), ("s5", "s2", 0.2), ("s6", "s3", 0.2)]
REJECTED_TRANSFERS = [("s6", "s2", 0.2), ("s7", "s3", 0.3)]


def run_fig1_scenario():
    config = SystemConfig.uniform(7, f=2)
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    servers = {pid: ReassignmentServer(pid, network, config) for pid in config.servers}

    async def scenario():
        outcomes = []
        for source, target, delta in ACCEPTED_TRANSFERS + REJECTED_TRANSFERS:
            outcomes.append((source, target, delta, await servers[source].transfer(target, delta)))
        return outcomes

    outcomes = loop.run_until_complete(scenario())
    loop.run()
    weights = servers["s1"].local_weights()
    return config, outcomes, weights, network.messages_sent


def test_fig1_example2(benchmark):
    config, outcomes, weights, messages = benchmark.pedantic(
        run_fig1_scenario, rounds=3, iterations=1
    )

    print_table(
        "E1 / Fig. 1: transfer outcomes (n=7, f=2, bound=0.70)",
        ["transfer", "delta", "outcome (paper)", "outcome (measured)"],
        [
            (
                f"{source}->{target}",
                delta,
                "effective" if (source, target, delta) in ACCEPTED_TRANSFERS else "rejected",
                "effective" if outcome.effective else "rejected",
            )
            for source, target, delta, outcome in outcomes
        ],
    )
    print_table(
        "E1 / Fig. 1: weights at t1",
        ["server", "weight"],
        [(server, f"{weight:.2f}") for server, weight in sorted(weights.items())],
    )

    # Shape assertions: the paper's accepted/rejected split and the minority quorum.
    assert [o.effective for *_r, o in outcomes] == [True, True, True, False, False]
    quorum_system = WeightedMajorityQuorumSystem(weights)
    assert quorum_system.is_quorum(["s1", "s2", "s3"])
    assert quorum_system.smallest_quorum_size() == 3
    assert check_rp_integrity(weights, config.total_initial_weight, config.f)
    print(f"\n{{s1,s2,s3}} forms a weighted quorum of cardinality 3 (< majority of 4); "
          f"{messages} messages exchanged")
