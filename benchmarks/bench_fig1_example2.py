"""E1 — Fig. 1 / Example 2: the restricted pairwise reassignment walkthrough.

Thin wrapper over the registered ``fig1-walkthrough`` scenario
(:mod:`repro.experiments.catalogue`): executes it through the experiment
subsystem and asserts the paper's shape — the accepted/rejected transfer
split and the minority weighted quorum on {s1, s2, s3}.
"""

from __future__ import annotations

from repro.experiments import get_scenario

from benchmarks.conftest import print_table


def run_fig1_scenario():
    return get_scenario("fig1-walkthrough").execute()


def test_fig1_example2(benchmark):
    result = benchmark.pedantic(run_fig1_scenario, rounds=3, iterations=1)

    print_table(
        "E1 / Fig. 1: transfer outcomes (n=7, f=2, bound=0.70)",
        ["transfer", "delta", "outcome (paper)", "outcome (measured)"],
        [
            (
                f"{row['source']}->{row['target']}",
                row["delta"],
                "effective" if row["expected_effective"] else "rejected",
                "effective" if row["effective"] else "rejected",
            )
            for row in result["transfers"]
        ],
    )
    print_table(
        "E1 / Fig. 1: weights at t1",
        ["server", "weight"],
        [(server, f"{weight:.2f}") for server, weight in sorted(result["weights"].items())],
    )

    # Shape assertions: the paper's accepted/rejected split and the minority quorum.
    assert [row["effective"] for row in result["transfers"]] == [True, True, True, False, False]
    assert all(
        row["effective"] == row["expected_effective"] for row in result["transfers"]
    )
    assert result["minority_is_quorum"]
    assert result["smallest_quorum_size"] == 3
    assert result["rp_integrity"]
    print(f"\n{{s1,s2,s3}} forms a weighted quorum of cardinality 3 (< majority of 4); "
          f"{result['messages']} messages exchanged")
