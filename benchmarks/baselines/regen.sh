#!/usr/bin/env sh
# Regenerate every checked-in baseline from the scenario's default
# parameters.  Run from anywhere; results are deterministic in virtual
# time, so a regenerated baseline only changes when the code does.
set -e
cd "$(dirname "$0")/../.."
for baseline in benchmarks/baselines/*.json; do
    name=$(basename "$baseline" .json)
    echo "regenerating $name"
    PYTHONPATH=src python -m repro run "$name" --json "$baseline" --quiet
done
