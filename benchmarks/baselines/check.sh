#!/usr/bin/env sh
# The regression gate: re-run every baselined scenario with default
# parameters and compare against the checked-in JSON.  CI runs this on
# every push; a diff means a semantic change that must be intentional
# (regenerate with regen.sh and commit the new baseline alongside the
# code change).
set -e
cd "$(dirname "$0")/../.."
status=0
for baseline in benchmarks/baselines/*.json; do
    name=$(basename "$baseline" .json)
    fresh="${TMPDIR:-/tmp}/repro-baseline-$name.json"
    PYTHONPATH=src python -m repro run "$name" --json "$fresh" --quiet
    if PYTHONPATH=src python -m repro compare "$fresh" "$baseline"; then
        echo "ok: $name"
    else
        echo "REGRESSION: $name diverges from $baseline" >&2
        status=1
    fi
done
exit $status
