"""E3 — Algorithm 1 / Theorem 1: consensus from (unrestricted) weight reassignment.

Sweeps (n, f) and, for each setting, runs all n servers' ``propose`` calls
concurrently against the oracle weight-reassignment service with distinct
proposals.  Reports the consensus properties and the number of effective
reassignments (which must be exactly one — the crux of the reduction).
"""

from __future__ import annotations

from repro.core.reductions import (
    OracleWeightReassignment,
    algorithm1_propose,
    algorithm_config,
)
from repro.net.registers import SWMRRegisterArray
from repro.net.simloop import SimLoop, gather

from benchmarks.conftest import print_table

SWEEP = [(4, 1), (7, 2), (10, 3), (13, 4)]


def run_sweep():
    rows = []
    for n, f in SWEEP:
        loop = SimLoop()
        config = algorithm_config(n, f)
        registers = SWMRRegisterArray(config.servers)
        oracle = OracleWeightReassignment(loop, config)
        decisions = loop.run_until_complete(
            gather(
                loop,
                [
                    algorithm1_propose(loop, config, registers, oracle, i, f"value-{i}")
                    for i in range(1, n + 1)
                ],
            )
        )
        effective = sum(
            1
            for record in oracle.trace
            if any(change.delta != 0 for change in record.created)
        )
        rows.append(
            {
                "n": n,
                "f": f,
                "deciders": len(decisions),
                "distinct_decisions": len(set(decisions)),
                "effective_reassignments": effective,
                "decided": decisions[0],
                "virtual_time": loop.now,
            }
        )
    return rows


def test_algorithm1_reduction(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=3, iterations=1)

    print_table(
        "E3 / Algorithm 1: consensus from weight reassignment",
        ["n", "f", "deciders", "distinct decisions", "effective reassigns", "virtual time"],
        [
            (
                row["n"],
                row["f"],
                row["deciders"],
                row["distinct_decisions"],
                row["effective_reassignments"],
                f"{row['virtual_time']:.1f}",
            )
            for row in rows
        ],
    )
    print("paper: exactly one reassignment completes effectively and every correct "
          "server decides that server's proposal (Agreement, Validity, Termination)")

    for row in rows:
        assert row["deciders"] == row["n"]            # Termination
        assert row["distinct_decisions"] == 1         # Agreement
        assert row["effective_reassignments"] == 1    # the reduction's pivot
        assert row["decided"].startswith("value-")    # Validity
