"""E8 — Section VIII: dynamic-weighted vs. reconfigurable storage availability.

Thin wrapper over the registered ``storage-vs-reconfig`` scenario
(:mod:`repro.experiments.catalogue`).  Shape to reproduce: the
dynamic-weighted storage stays live whenever at most ``f`` servers crash,
independent of pending transfers; the reconfigurable storage blocks as soon
as any *pending configuration* loses its majority, even though no more than
``f`` of the original servers crashed.
"""

from __future__ import annotations

from repro.experiments import get_scenario

from benchmarks.conftest import print_table


def run_comparison():
    return get_scenario("storage-vs-reconfig").execute()["rows"]


def test_storage_vs_reconfigurable(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=2, iterations=1)

    print_table(
        "E8: does the store stay live under the crash schedule?",
        ["crash schedule", "dynamic-weighted (static f=2)", "reconfigurable (pending config)"],
        [
            (row["schedule"], "live" if row["dynamic"] else "BLOCKED",
             "live" if row["reconfigurable"] else "BLOCKED")
            for row in rows
        ],
    )
    print("paper claim (Sec. VIII): the dynamic-weighted store's fault threshold is "
          "static and independent of reassignment requests; the reconfigurable store "
          "is only live while every pending configuration keeps a correct majority")

    assert rows[0]["dynamic"] and rows[0]["reconfigurable"]
    # f crashes: the dynamic-weighted store always survives ...
    assert rows[1]["dynamic"] and rows[2]["dynamic"]
    # ... and so does the reconfigurable store while its pending configuration
    # keeps a majority, but the same number of crashes placed inside the
    # pending configuration's membership blocks it.
    assert rows[1]["reconfigurable"]
    assert not rows[2]["reconfigurable"]
