"""E8 — Section VIII: dynamic-weighted vs. reconfigurable storage availability.

Both systems change quorum formation at run time; the paper's point is that
their availability conditions differ.  We subject both to the same crash
schedule: an operator action is in flight (a weight transfer in one system, a
configuration change in the other) and then crashes hit.

Shape to reproduce: the dynamic-weighted storage stays live whenever at most
``f`` servers crash, independent of pending transfers; the reconfigurable
storage blocks as soon as any *pending configuration* loses its majority,
even though no more than ``f`` of the original servers crashed.
"""

from __future__ import annotations

from repro.core.spec import SystemConfig
from repro.core.storage import DynamicWeightedStorageClient, DynamicWeightedStorageServer
from repro.errors import DeadlockError, SimTimeoutError
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.simloop import SimLoop
from repro.storage.reconfigurable import (
    ReconfigurableStorageClient,
    ReconfigurableStorageServer,
)
from repro.types import server_set  # noqa: F401  (used by schedule helpers)

from benchmarks.conftest import print_table


def run_dynamic_weighted(crashes):
    config = SystemConfig.uniform(5, f=2)
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    servers = {pid: DynamicWeightedStorageServer(pid, network, config) for pid in config.servers}
    client = DynamicWeightedStorageClient("c1", network, config)

    async def scenario():
        await client.write("seed")
        await servers["s1"].transfer("s3", 0.2)  # an in-flight "operator action"
        for pid in crashes:
            network.crash(pid)
        await client.write("after-crashes")
        return await client.read()

    try:
        value = loop.run_until_complete(scenario(), max_time=10_000.0)
        return value == "after-crashes"
    except (DeadlockError, SimTimeoutError):
        return False


def run_reconfigurable(crashes):
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    everyone = server_set(8)
    initial = server_set(5)
    for pid in everyone:
        ReconfigurableStorageServer(pid, network, initial)
    client = ReconfigurableStorageClient("c1", network, initial, everyone)

    async def scenario():
        await client.write("seed")
        # The operator proposes replacing s3/s4/s5 with s6/s7 (a pending config).
        await client.reconfigure(("s1", "s2", "s6", "s7"))
        for pid in crashes:
            network.crash(pid)
        await client.write("after-crashes")
        return await client.read()

    try:
        value = loop.run_until_complete(scenario(), max_time=10_000.0)
        return value == "after-crashes"
    except (DeadlockError, SimTimeoutError):
        return False


# Each schedule gives the crash set for both systems: the dynamic-weighted
# store always faces f = 2 crashes among its (fixed) five servers; the
# reconfigurable store faces the "same amount of bad luck" but hitting the
# membership of its pending configuration.
SCHEDULES = [
    ("no crashes", (), ()),
    ("f=2 crashes, none touching the pending change", ("s4", "s5"), ("s4", "s5")),
    ("f=2 crashes hitting the newly added servers", ("s4", "s5"), ("s6", "s7")),
]


def run_comparison():
    rows = []
    for name, dynamic_crashes, reconfig_crashes in SCHEDULES:
        dyn = run_dynamic_weighted(dynamic_crashes)
        rec = run_reconfigurable(reconfig_crashes)
        rows.append({"schedule": name, "dynamic": dyn, "reconfigurable": rec})
    return rows


def test_storage_vs_reconfigurable(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=2, iterations=1)

    print_table(
        "E8: does the store stay live under the crash schedule?",
        ["crash schedule", "dynamic-weighted (static f=2)", "reconfigurable (pending config)"],
        [
            (row["schedule"], "live" if row["dynamic"] else "BLOCKED",
             "live" if row["reconfigurable"] else "BLOCKED")
            for row in rows
        ],
    )
    print("paper claim (Sec. VIII): the dynamic-weighted store's fault threshold is "
          "static and independent of reassignment requests; the reconfigurable store "
          "is only live while every pending configuration keeps a correct majority")

    assert rows[0]["dynamic"] and rows[0]["reconfigurable"]
    # f crashes: the dynamic-weighted store always survives ...
    assert rows[1]["dynamic"] and rows[2]["dynamic"]
    # ... and so does the reconfigurable store while its pending configuration
    # keeps a majority, but the same number of crashes placed inside the
    # pending configuration's membership blocks it.
    assert rows[1]["reconfigurable"]
    assert not rows[2]["reconfigurable"]
