"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one experiment from DESIGN.md's index
(E1-E11).  Because the paper reports no absolute numbers, every benchmark

* prints the rows/series it regenerates (visible with ``pytest -s`` and
  captured in ``bench_output.txt``), and
* asserts the *shape* of the result — who wins, by roughly what factor,
  where the crossover falls — so a regression in the reproduction fails the
  benchmark suite, not just changes a number.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a fixed-width table (the benchmark harness's 'paper row' format)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    header = tuple(str(cell) for cell in header)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
