"""E9 — Section V-C: the restricted protocol cannot always shrink quorums.

Reproduces the discussion's example: n = 7, f = 2, initial weights
(1.6, 1.4, 0.8, 0.8, 0.8, 0.8, 0.8), and the two heavy servers s1, s2 become
slow/failed.  Under the *unrestricted* problem the remaining servers could
take over their weight; under the restricted pairwise problem nobody but
s1/s2 themselves may move that weight, so the smallest quorum that avoids
them stays at five servers.
"""

from __future__ import annotations

from repro.core.protocol import ReassignmentServer
from repro.core.spec import SystemConfig
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.simloop import SimLoop
from repro.quorum.weighted import WeightedMajorityQuorumSystem

from benchmarks.conftest import print_table

WEIGHTS = {"s1": 1.6, "s2": 1.4, "s3": 0.8, "s4": 0.8, "s5": 0.8, "s6": 0.8, "s7": 0.8}


def smallest_quorum_avoiding(weights, avoid):
    usable = {server: weight for server, weight in weights.items() if server not in avoid}
    total = sum(weights.values())
    accumulated, count = 0.0, 0
    for weight in sorted(usable.values(), reverse=True):
        accumulated += weight
        count += 1
        if accumulated > total / 2:
            return count
    return None  # no quorum without the avoided servers


def run_scenario():
    config = SystemConfig(servers=tuple(sorted(WEIGHTS, key=lambda s: int(s[1:]))),
                          f=2, initial_weights=dict(WEIGHTS))
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    servers = {pid: ReassignmentServer(pid, network, config) for pid in config.servers}

    before = smallest_quorum_avoiding(WEIGHTS, avoid={"s1", "s2"})

    async def try_to_shrink():
        # The healthy servers try every RP-legal move they have: they can only
        # shuffle their *own* 0.8 weights among themselves, never touch s1/s2.
        attempts = []
        attempts.append(await servers["s3"].transfer("s4", 0.05))
        attempts.append(await servers["s5"].transfer("s6", 0.05))
        # They cannot take weight from s1/s2 (C1 forbids it by construction:
        # there is no operation for it), and they cannot give much of their own
        # away (C2 caps them at the 0.7 bound), so attempts to concentrate
        # weight are mostly rejected.
        attempts.append(await servers["s4"].transfer("s3", 0.2))
        return attempts

    attempts = loop.run_until_complete(try_to_shrink())
    loop.run()
    after_weights = servers["s3"].local_weights()
    after = smallest_quorum_avoiding(after_weights, avoid={"s1", "s2"})
    return config, attempts, before, after, after_weights


def test_limitation_with_slow_heavy_servers(benchmark):
    config, attempts, before, after, after_weights = benchmark.pedantic(
        run_scenario, rounds=3, iterations=1
    )

    print_table(
        "E9 / Sec. V-C: smallest quorum avoiding the slow servers s1, s2",
        ["stage", "smallest quorum without {s1,s2}"],
        [
            ("initial weights (paper: 5)", before),
            ("after every RP-legal reassignment attempt", after),
        ],
    )
    full_quorum = WeightedMajorityQuorumSystem(after_weights)
    print(f"for comparison, the smallest quorum *using* s1/s2 has "
          f"{full_quorum.smallest_quorum_size()} servers")
    print("paper claim (Sec. V-C): with the restricted problem, servers cannot form "
          "smaller quorums by reassigning weights when the heavy servers are slow/failed")

    assert before == 5
    assert after == 5  # the restriction prevents any improvement
