"""E11 — Protocol micro-costs: message complexity and latency vs. n.

The paper gives Algorithms 3 and 4 without a cost analysis; this benchmark
fills in the constants a practitioner would ask about.  For a sweep of
cluster sizes it measures, in the constant-latency model (delay = 1):

* ``transfer``: completion latency (paper: one reliable broadcast plus one
  acknowledgement round, i.e. a small constant number of delays) and the
  number of protocol messages (O(n^2) due to the echo-based reliable
  broadcast);
* ``read_changes``: completion latency (two request/reply rounds = 4 delays)
  and its O(n) message count.
"""

from __future__ import annotations

from repro.core.protocol import read_changes
from repro.core.spec import SystemConfig
from repro.net.process import Process
from repro.sim.cluster import build_reassignment_fleet

from benchmarks.conftest import print_table

SWEEP = [4, 7, 10, 16, 25]


def run_sweep():
    rows = []
    for n in SWEEP:
        f = (n - 1) // 3
        fleet = build_reassignment_fleet(SystemConfig.uniform(n, f=f))
        loop, network, config, servers = fleet.loop, fleet.network, fleet.config, fleet.servers
        client = Process("c1", network)

        async def one_transfer():
            network.reset_stats()
            outcome = await servers["s1"].transfer("s2", 0.05)
            return outcome

        outcome = loop.run_until_complete(one_transfer())
        loop.run()  # let the broadcast echo finish for an honest message count
        transfer_messages = network.messages_sent
        transfer_latency = outcome.latency

        async def one_read():
            network.reset_stats()
            started = loop.now
            await read_changes(client, "s2", config)
            return loop.now - started

        read_latency = loop.run_until_complete(one_read())
        read_messages = network.messages_sent
        rows.append(
            {
                "n": n,
                "f": f,
                "transfer_latency": transfer_latency,
                "transfer_messages": transfer_messages,
                "read_latency": read_latency,
                "read_messages": read_messages,
            }
        )
    return rows


def test_protocol_costs(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=3, iterations=1)

    print_table(
        "E11: cost of transfer and read_changes vs. cluster size (unit link delay)",
        ["n", "f", "transfer latency", "transfer msgs", "read_changes latency", "read_changes msgs"],
        [
            (
                row["n"],
                row["f"],
                f"{row['transfer_latency']:.1f}",
                row["transfer_messages"],
                f"{row['read_latency']:.1f}",
                row["read_messages"],
            )
            for row in rows
        ],
    )
    print("expected shape: latencies stay constant (a fixed number of message delays) "
          "while message counts grow ~n^2 for transfer (echo broadcast) and ~n for "
          "read_changes")

    latencies = [row["transfer_latency"] for row in rows]
    # Constant number of message delays, independent of n.
    assert max(latencies) - min(latencies) < 1e-9
    read_latencies = [row["read_latency"] for row in rows]
    assert max(read_latencies) - min(read_latencies) < 1e-9
    # Message complexity grows superlinearly for transfer, linearly for reads.
    assert rows[-1]["transfer_messages"] > rows[0]["transfer_messages"] * 4
    assert rows[-1]["read_messages"] < rows[0]["read_messages"] * 12
