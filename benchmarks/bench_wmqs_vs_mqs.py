"""E5 — Motivation claim: WMQS beats MQS on heterogeneous wide-area latencies.

For several WAN-like round-trip-time vectors, compares the expected quorum
latency and the smallest quorum cardinality of the plain majority system
against a weighted majority system whose weights follow inverse latency
(Property-1-preserving).  The shape to reproduce: WMQS never loses, and wins
whenever the latency distribution is skewed; with homogeneous latencies the
two coincide.
"""

from __future__ import annotations

from repro.analysis import expected_quorum_latency, inverse_latency_weights
from repro.quorum.availability import minimum_quorum_cardinality
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.weighted import WeightedMajorityQuorumSystem
from repro.types import server_set

from benchmarks.conftest import print_table

SCENARIOS = {
    "homogeneous LAN (5 sites)": {"s1": 1.0, "s2": 1.0, "s3": 1.0, "s4": 1.0, "s5": 1.0},
    "EU client, 2 near / 3 far (5 sites)": {"s1": 10.0, "s2": 12.0, "s3": 45.0, "s4": 80.0, "s5": 95.0},
    "WHEAT-like geo deployment (5 sites)": {"s1": 5.0, "s2": 8.0, "s3": 35.0, "s4": 70.0, "s5": 150.0},
    "7 sites, one fast continent": {
        "s1": 5.0, "s2": 6.0, "s3": 8.0, "s4": 60.0, "s5": 70.0, "s6": 90.0, "s7": 120.0,
    },
    "13 sites planet-scale": {
        f"s{i}": latency
        for i, latency in enumerate(
            [5, 6, 8, 10, 12, 40, 55, 70, 80, 95, 110, 140, 180], start=1
        )
    },
}


def run_comparison():
    rows = []
    for name, rtt in SCENARIOS.items():
        servers = tuple(sorted(rtt, key=lambda s: int(s[1:])))
        n = len(servers)
        f = (n - 1) // 3 if n > 5 else 1
        mqs = MajorityQuorumSystem(servers)
        # Raise the per-server floor until the assignment tolerates f failures
        # (very skewed latency vectors need a higher floor to satisfy Property 1).
        weights = None
        for floor_fraction in (0.5, 0.6, 0.7, 0.8, 0.9):
            try:
                weights = inverse_latency_weights(
                    rtt, total_weight=float(n), f=f, floor_fraction=floor_fraction
                )
                break
            except Exception:
                continue
        assert weights is not None, f"no feasible weight assignment for {name}"
        wmqs = WeightedMajorityQuorumSystem(weights)
        mqs_latency = expected_quorum_latency(mqs, rtt)
        wmqs_latency = expected_quorum_latency(wmqs, rtt)
        rows.append(
            {
                "scenario": name,
                "n": n,
                "f": f,
                "mqs_latency": mqs_latency,
                "wmqs_latency": wmqs_latency,
                "speedup": mqs_latency / wmqs_latency if wmqs_latency else 1.0,
                "mqs_quorum": mqs.quorum_size(),
                "wmqs_quorum": minimum_quorum_cardinality(weights),
            }
        )
    return rows


def test_wmqs_vs_mqs(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=5, iterations=1)

    print_table(
        "E5: expected quorum latency, MQS vs WMQS (inverse-latency weights)",
        ["scenario", "n", "f", "MQS lat", "WMQS lat", "speedup", "MQS |Q|", "WMQS |Q|"],
        [
            (
                row["scenario"],
                row["n"],
                row["f"],
                f"{row['mqs_latency']:.1f}",
                f"{row['wmqs_latency']:.1f}",
                f"{row['speedup']:.2f}x",
                row["mqs_quorum"],
                row["wmqs_quorum"],
            )
            for row in rows
        ],
    )
    print("paper claim (Sec. I / WHEAT): weighted quorums allow proportionally smaller, "
          "faster quorums on heterogeneous deployments; no benefit on homogeneous ones")

    for row in rows:
        # WMQS never does worse than MQS.
        assert row["wmqs_latency"] <= row["mqs_latency"] + 1e-9
        assert row["wmqs_quorum"] <= row["mqs_quorum"]
    # Homogeneous case: no advantage (crossover point).
    assert rows[0]["speedup"] == 1.0
    # Every skewed case: strict advantage.
    assert all(row["speedup"] > 1.0 for row in rows[1:])
