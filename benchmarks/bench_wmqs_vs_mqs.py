"""E5 — Motivation claim: WMQS beats MQS on heterogeneous wide-area latencies.

Thin wrapper over the registered ``wmqs-vs-mqs`` scenario
(:mod:`repro.experiments.catalogue`).  The shape to reproduce: WMQS never
loses, and wins whenever the latency distribution is skewed; with
homogeneous latencies the two coincide.
"""

from __future__ import annotations

from repro.experiments import get_scenario

from benchmarks.conftest import print_table


def run_comparison():
    return get_scenario("wmqs-vs-mqs").execute()["rows"]


def test_wmqs_vs_mqs(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=5, iterations=1)

    print_table(
        "E5: expected quorum latency, MQS vs WMQS (inverse-latency weights)",
        ["scenario", "n", "f", "MQS lat", "WMQS lat", "speedup", "MQS |Q|", "WMQS |Q|"],
        [
            (
                row["scenario"],
                row["n"],
                row["f"],
                f"{row['mqs_latency']:.1f}",
                f"{row['wmqs_latency']:.1f}",
                f"{row['speedup']:.2f}x",
                row["mqs_quorum"],
                row["wmqs_quorum"],
            )
            for row in rows
        ],
    )
    print("paper claim (Sec. I / WHEAT): weighted quorums allow proportionally smaller, "
          "faster quorums on heterogeneous deployments; no benefit on homogeneous ones")

    for row in rows:
        # WMQS never does worse than MQS.
        assert row["wmqs_latency"] <= row["mqs_latency"] + 1e-9
        assert row["wmqs_quorum"] <= row["mqs_quorum"]
    # Homogeneous case: no advantage (crossover point).
    assert rows[0]["speedup"] == 1.0
    # Every skewed case: strict advantage.
    assert all(row["speedup"] > 1.0 for row in rows[1:])
