"""E2 — Example 1 (Section III): unrestricted weight-reassignment semantics.

Replays the exact operation sequence of Example 1 against the oracle
implementation of the (consensus-requiring) weight reassignment problem and
checks every outcome the example states: the effective +1.5 reassignment, the
read that must contain it, and the aborted -0.5 reassignment that would have
violated Integrity.
"""

from __future__ import annotations

from repro.core.change import Change
from repro.core.reductions import OracleWeightReassignment
from repro.core.spec import SystemConfig, check_integrity
from repro.net.simloop import SimLoop

from benchmarks.conftest import print_table


def run_example1():
    config = SystemConfig.uniform(4, f=1)
    loop = SimLoop()
    oracle = OracleWeightReassignment(loop, config)

    async def scenario():
        steps = []
        first = await oracle.reassign("s1", "s1", 1.5)
        steps.append(("reassign(s1, +1.5) by s1", first.delta))
        read_s1 = await oracle.read_changes("s1")
        steps.append(("read_changes(s1) by c1 -> W(s1)", read_s1.weight_of("s1")))
        second = await oracle.reassign("s3", "s2", -0.5)
        steps.append(("reassign(s2, -0.5) by s3", second.delta))
        read_s2 = await oracle.read_changes("s2")
        steps.append(("read_changes(s2) by c2 -> W(s2)", read_s2.weight_of("s2")))
        return steps, read_s1, read_s2

    steps, read_s1, read_s2 = loop.run_until_complete(scenario())
    return config, oracle, steps, read_s1, read_s2


def test_example1_semantics(benchmark):
    config, oracle, steps, read_s1, read_s2 = benchmark.pedantic(
        run_example1, rounds=3, iterations=1
    )

    paper_expectations = ["1.5 (effective)", "2.5", "0.0 (aborted)", "1.0"]
    print_table(
        "E2 / Example 1: operation outcomes (n=4, f=1)",
        ["operation", "paper", "measured"],
        [
            (name, paper_expectations[index], f"{value:.1f}")
            for index, (name, value) in enumerate(steps)
        ],
    )

    # Shape assertions straight from the example's text.
    assert steps[0][1] == 1.5
    assert steps[1][1] == 2.5
    assert steps[2][1] == 0.0
    assert steps[3][1] == 1.0
    assert Change("s1", 2, "s1", 1.5) in read_s1
    assert Change("s3", 2, "s2", 0.0) in read_s2
    for record in oracle.trace:
        assert check_integrity(record.weights_after, config.f)
