"""Weight-reassignment protocols under a common interface.

Three protocols, matching the comparison the paper draws in its related-work
discussion (Section VIII):

* :mod:`repro.reassign.restricted` — the paper's consensus-free, epochless
  *restricted pairwise* protocol (a thin adapter over
  :class:`repro.core.protocol.ReassignmentServer`).
* :mod:`repro.reassign.epoch_based` — an epoch-based pairwise protocol in the
  spirit of related work [11]: requests issued during an epoch are applied at
  the epoch boundary, and increments whose epoch closed before they were
  confirmed are dropped, which is why the total weight can shrink over time.
* :mod:`repro.reassign.consensus_based` — the unrestricted weight
  reassignment problem solved with a total-order primitive, as done for
  partially synchronous systems in [10], [22], [27].

The shared :class:`~repro.reassign.base.ReassignmentEndpoint` interface lets
the E7 benchmark drive all of them with the same workload.
"""

from repro.reassign.base import ReassignmentEndpoint, ReassignmentResult
from repro.reassign.restricted import RestrictedPairwiseEndpoint
from repro.reassign.epoch_based import EpochBasedServer, EpochBasedEndpoint
from repro.reassign.consensus_based import ConsensusBasedServer, ConsensusBasedEndpoint

__all__ = [
    "ReassignmentEndpoint",
    "ReassignmentResult",
    "RestrictedPairwiseEndpoint",
    "EpochBasedServer",
    "EpochBasedEndpoint",
    "ConsensusBasedServer",
    "ConsensusBasedEndpoint",
]
