"""Epoch-based pairwise weight reassignment (synthetic stand-in for [11]).

The paper's related-work section describes an earlier consensus-free,
epoch-based pairwise reassignment protocol [11] and criticises two of its
properties:

1. requests issued during an epoch are only applied at the end of the epoch,
   so completion latency is governed by the epoch length (which is hard to
   tune); and
2. the total weight of the servers may drop below ``W_{S,0}`` over time,
   losing voting power.

We do not have the full text of [11], so this module implements a *synthetic
but behaviour-preserving* stand-in (recorded in DESIGN.md): a coordinator
closes epochs every ``epoch_length`` time units; a transfer's **decrement** is
applied at the end of the epoch in which it was issued, while its
**increment** is only applied at the end of the *next* epoch and only if the
issuer confirmed it in time — an issuer that crashed (or whose confirmation
is late) leaks the in-flight weight, reproducing deficiency (2).  Deficiency
(1) falls out of the epoch boundaries directly.

The E7 benchmark sweeps ``epoch_length`` and reports completion latency and
total weight against the paper's epochless protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimFuture
from repro.numerics import strictly_greater
from repro.reassign.base import ReassignmentEndpoint, ReassignmentResult
from repro.types import ProcessId, VirtualTime, Weight

__all__ = ["EpochBasedCoordinator", "EpochBasedServer", "EpochBasedEndpoint"]

EP_REQUEST = "EP_REQUEST"
EP_CONFIRM = "EP_CONFIRM"
EP_WEIGHTS = "EP_WEIGHTS"


@dataclass
class _PendingIncrement:
    request_id: int
    issuer: ProcessId
    target: ProcessId
    delta: Weight
    confirmed: bool = False


class EpochBasedCoordinator(Process):
    """The process closing epochs and publishing weight vectors."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        config: SystemConfig,
        epoch_length: VirtualTime,
    ) -> None:
        if epoch_length <= 0:
            raise ConfigurationError("epoch_length must be positive")
        super().__init__(pid, network)
        self.config = config
        self.epoch_length = epoch_length
        self.epoch = 0
        self.weights: Dict[ProcessId, Weight] = dict(config.initial_weights)
        self._requests: List[Dict] = []
        self._pending_increments: List[_PendingIncrement] = []
        self.leaked_weight: Weight = 0.0
        self._stopped = False
        self.register_handler(EP_REQUEST, self._on_request)
        self.register_handler(EP_CONFIRM, self._on_confirm)
        self._ticker = self.loop.create_task(self._run_epochs(), name=f"{pid}.epochs")

    # -- request intake --------------------------------------------------------
    def _on_request(self, message: Message) -> None:
        self._requests.append(
            {
                "issuer": message.sender,
                "target": message.payload["target"],
                "delta": message.payload["delta"],
                "request_id": message.payload["request_id"],
            }
        )

    def _on_confirm(self, message: Message) -> None:
        for pending in self._pending_increments:
            if (
                pending.issuer == message.sender
                and pending.request_id == message.payload["request_id"]
            ):
                pending.confirmed = True

    # -- epoch machinery -----------------------------------------------------------
    def stop(self) -> None:
        """Stop closing epochs (ends the ticker task at the next boundary).

        The ticker otherwise runs forever, so simulations that drain the event
        loop to completion (rather than running ``until`` a bound) should call
        this once the experiment is over.
        """
        self._stopped = True

    async def _run_epochs(self) -> None:
        while not self.crashed and not self._stopped:
            await self.loop.sleep(self.epoch_length)
            if self.crashed or self.network.is_crashed(self.pid) or self._stopped:
                return
            self._close_epoch()

    def _close_epoch(self) -> None:
        self.epoch += 1
        # 1. Increments scheduled at the previous boundary: apply if confirmed,
        #    otherwise the weight leaks (deficiency 2).
        still_pending, matured = [], []
        for pending in self._pending_increments:
            matured.append(pending)
        self._pending_increments = still_pending
        for pending in matured:
            if pending.confirmed:
                self.weights[pending.target] += pending.delta
            else:
                self.leaked_weight += pending.delta

        # 2. Requests issued during the epoch that just closed: apply the
        #    decrement now (if the source can afford it) and schedule the
        #    increment for the next boundary.
        requests, self._requests = self._requests, []
        applied_request_ids: List[tuple] = []
        for request in sorted(
            requests, key=lambda r: (r["issuer"], r["request_id"])
        ):
            source = request["issuer"]
            delta = request["delta"]
            if strictly_greater(
                self.weights[source], delta + self.config.rp_min_weight
            ):
                self.weights[source] -= delta
                self._pending_increments.append(
                    _PendingIncrement(
                        request_id=request["request_id"],
                        issuer=source,
                        target=request["target"],
                        delta=delta,
                    )
                )
                applied_request_ids.append((source, request["request_id"], True))
            else:
                applied_request_ids.append((source, request["request_id"], False))

        # 3. Publish the epoch's weight vector to every server.
        for server in self.config.servers:
            self.send(
                server,
                EP_WEIGHTS,
                {
                    "epoch": self.epoch,
                    "weights": dict(self.weights),
                    "outcomes": list(applied_request_ids),
                    "awaiting_confirm": [
                        (p.issuer, p.request_id) for p in self._pending_increments
                    ],
                },
            )

    def total_weight(self) -> Weight:
        """Total weight currently assigned (excludes leaked, in-flight weight)."""
        return sum(self.weights.values())


class EpochBasedServer(Process):
    """A server participating in the epoch-based protocol."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        config: SystemConfig,
        coordinator: ProcessId,
    ) -> None:
        super().__init__(pid, network)
        self.config = config
        self.coordinator = coordinator
        self.weights: Dict[ProcessId, Weight] = dict(config.initial_weights)
        self.epoch = 0
        self._request_ids = itertools.count(1)
        self._waiters: Dict[int, SimFuture] = {}
        self._effective: Dict[int, bool] = {}
        self.register_handler(EP_WEIGHTS, self._on_weights)

    def _on_weights(self, message: Message) -> None:
        self.epoch = message.payload["epoch"]
        self.weights = dict(message.payload["weights"])
        for issuer, request_id, applied in message.payload["outcomes"]:
            if issuer == self.pid:
                self._effective[request_id] = applied
                waiter = self._waiters.pop(request_id, None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(applied)
        # Confirm increments that await this server's acknowledgement.
        for issuer, request_id in message.payload["awaiting_confirm"]:
            if issuer == self.pid:
                self.send(self.coordinator, EP_CONFIRM, {"request_id": request_id})

    async def transfer(self, target: ProcessId, delta: Weight) -> bool:
        """Request a pairwise transfer; resolves at the closing epoch boundary."""
        self._ensure_alive()
        if target not in self.config.servers or target == self.pid:
            raise ConfigurationError(f"invalid target {target!r}")
        if delta <= 0:
            raise ConfigurationError("delta must be positive")
        request_id = next(self._request_ids)
        waiter = SimFuture(name=f"{self.pid}.epoch_transfer[{request_id}]")
        self._waiters[request_id] = waiter
        self.send(
            self.coordinator,
            EP_REQUEST,
            {"target": target, "delta": delta, "request_id": request_id},
        )
        return bool(await waiter)


class EpochBasedEndpoint(ReassignmentEndpoint):
    """Endpoint adapter for the benchmark harness."""

    protocol_name = "epoch-based (related work [11])"

    def __init__(self, server: EpochBasedServer) -> None:
        self.server = server

    async def request_transfer(
        self, target: ProcessId, delta: Weight
    ) -> ReassignmentResult:
        started_at = self.server.loop.now
        effective = await self.server.transfer(target, delta)
        return ReassignmentResult(
            protocol=self.protocol_name,
            issuer=self.server.pid,
            target=target,
            delta=delta,
            effective=effective,
            started_at=started_at,
            completed_at=self.server.loop.now,
            weights_after=dict(self.server.weights),
        )

    def observed_weights(self) -> Dict[ProcessId, Weight]:
        return dict(self.server.weights)
