"""Common interface over the three reassignment protocols.

Each protocol exposes a per-server *endpoint* with a single coroutine:
``request_transfer(target, delta)``.  The endpoint reports whether the
reassignment took effect, how long it took to complete, and the weight map
the issuing server observes afterwards — the three quantities the E7
benchmark compares across protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.types import ProcessId, VirtualTime, Weight

__all__ = ["ReassignmentResult", "ReassignmentEndpoint"]


@dataclass(frozen=True)
class ReassignmentResult:
    """Outcome of one reassignment request, protocol-agnostic."""

    protocol: str
    issuer: ProcessId
    target: ProcessId
    delta: Weight
    effective: bool
    started_at: VirtualTime
    completed_at: VirtualTime
    weights_after: Dict[ProcessId, Weight]

    @property
    def latency(self) -> VirtualTime:
        return self.completed_at - self.started_at


class ReassignmentEndpoint:
    """Per-server handle used by the benchmark harness."""

    protocol_name = "abstract"

    async def request_transfer(
        self, target: ProcessId, delta: Weight
    ) -> ReassignmentResult:  # pragma: no cover - interface
        raise NotImplementedError

    def observed_weights(self) -> Dict[ProcessId, Weight]:  # pragma: no cover - interface
        raise NotImplementedError

    def observed_total_weight(self) -> Weight:
        return sum(self.observed_weights().values())
