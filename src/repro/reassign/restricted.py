"""Adapter exposing the paper's protocol through the common endpoint interface."""

from __future__ import annotations

from typing import Dict

from repro.core.protocol import ReassignmentServer
from repro.reassign.base import ReassignmentEndpoint, ReassignmentResult
from repro.types import ProcessId, Weight

__all__ = ["RestrictedPairwiseEndpoint"]


class RestrictedPairwiseEndpoint(ReassignmentEndpoint):
    """Wrap a :class:`~repro.core.protocol.ReassignmentServer` (Algorithm 4)."""

    protocol_name = "restricted-pairwise (paper)"

    def __init__(self, server: ReassignmentServer) -> None:
        self.server = server

    async def request_transfer(
        self, target: ProcessId, delta: Weight
    ) -> ReassignmentResult:
        outcome = await self.server.transfer(target, delta)
        return ReassignmentResult(
            protocol=self.protocol_name,
            issuer=self.server.pid,
            target=target,
            delta=delta,
            effective=outcome.effective,
            started_at=outcome.started_at,
            completed_at=outcome.completed_at,
            weights_after=self.server.local_weights(),
        )

    def observed_weights(self) -> Dict[ProcessId, Weight]:
        return self.server.local_weights()
