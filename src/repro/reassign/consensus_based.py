"""Consensus-based weight reassignment (the partially-synchronous baseline).

Related work ([10], [22], [27]) reassigns weights by running every request
through consensus (or an equivalent total-order primitive): all replicas apply
the same sequence of requests, each validated against the Integrity property,
so no restriction on *who* may reassign *whose* weight is needed.  This is
exactly what the paper proves cannot be done in a purely asynchronous
failure-prone system — the total-order primitive is where the extra synchrony
hides.

The implementation orders requests with the sequencer-based total-order
broadcast of :mod:`repro.consensus.sequencer` and validates them with the same
:func:`repro.core.spec.check_integrity` predicate used everywhere else.  The
E7/E8 benchmarks contrast it with the paper's consensus-free protocol both in
latency (an extra round trip through the sequencer) and in liveness (crash the
sequencer and the baseline stops completing requests).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.core.spec import SystemConfig, check_integrity
from repro.consensus.sequencer import TotalOrderClient
from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.process import Process
from repro.reassign.base import ReassignmentEndpoint, ReassignmentResult
from repro.types import ProcessId, Weight

__all__ = ["ConsensusBasedServer", "ConsensusBasedEndpoint"]


class ConsensusBasedServer(Process):
    """A replica applying totally-ordered (pairwise) reassignment requests."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        config: SystemConfig,
        sequencer: ProcessId,
    ) -> None:
        if pid not in config.servers:
            raise ConfigurationError(f"{pid!r} is not part of the configured server set")
        super().__init__(pid, network)
        self.config = config
        self.weights: Dict[ProcessId, Weight] = dict(config.initial_weights)
        self._order = TotalOrderClient(self, sequencer, self._apply)
        self._counter = itertools.count(1)

    # -- deterministic state machine ---------------------------------------------
    def _apply(self, submitter: ProcessId, command: Dict) -> bool:
        source, target, delta = command["source"], command["target"], command["delta"]
        tentative = dict(self.weights)
        tentative[source] -= delta
        tentative[target] += delta
        if all(weight >= 0 for weight in tentative.values()) and check_integrity(
            tentative, self.config.f
        ):
            self.weights = tentative
            return True
        return False

    # -- client-facing operation ----------------------------------------------------
    async def transfer(self, source: ProcessId, target: ProcessId, delta: Weight) -> bool:
        """Submit a reassignment; resolves once this replica has applied it.

        Unlike the paper's restricted protocol there is no C1 restriction:
        any server may move weight between any pair of servers, because the
        total order resolves conflicts.
        """
        self._ensure_alive()
        if source not in self.config.servers or target not in self.config.servers:
            raise ConfigurationError("source and target must be configured servers")
        if delta == 0:
            raise ConfigurationError("delta must be non-zero")
        command = {
            "source": source,
            "target": target,
            "delta": delta,
            "id": next(self._counter),
        }
        return bool(await self._order.submit(command))


class ConsensusBasedEndpoint(ReassignmentEndpoint):
    """Endpoint adapter for the benchmark harness."""

    protocol_name = "consensus-based (total order)"

    def __init__(self, server: ConsensusBasedServer) -> None:
        self.server = server

    async def request_transfer(
        self, target: ProcessId, delta: Weight
    ) -> ReassignmentResult:
        started_at = self.server.loop.now
        effective = await self.server.transfer(self.server.pid, target, delta)
        return ReassignmentResult(
            protocol=self.protocol_name,
            issuer=self.server.pid,
            target=target,
            delta=delta,
            effective=effective,
            started_at=started_at,
            completed_at=self.server.loop.now,
            weights_after=dict(self.server.weights),
        )

    def observed_weights(self) -> Dict[ProcessId, Weight]:
        return dict(self.server.weights)
