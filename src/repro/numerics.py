"""Tolerant comparisons for weight arithmetic.

The paper's safety properties are *strict* inequalities (``W_F < W_S / 2``,
``W_s > W_{S,0} / (2(n-f))``), and several of its examples sit exactly on the
boundary (e.g. the rejected transfers of Fig. 1 leave a server at precisely
the RP-Integrity bound).  With binary floating point, sums such as
``1.0 - 0.1 - 0.2`` drift by a few ULPs around the exact value, which could
flip a boundary case the wrong way.

The helpers below implement strict comparisons with a small symmetric
tolerance: values within :data:`EPSILON` of the boundary are treated as *on*
the boundary, i.e. the strict inequality is considered **not** satisfied.
This errs on the conservative side — a transfer that lands exactly on the
bound is rejected, and a weight map exactly at the Integrity boundary is
reported as violating — which matches the intent of the paper's strict
inequalities.
"""

from __future__ import annotations

__all__ = ["EPSILON", "strictly_greater", "strictly_less", "approximately_equal"]

#: Absolute tolerance for weight comparisons.  Weights in this library are
#: human-scale numbers (fractions of a few units), so an absolute tolerance is
#: appropriate and simpler to reason about than a relative one.
EPSILON = 1e-9


def strictly_greater(left: float, right: float, epsilon: float = EPSILON) -> bool:
    """True iff ``left > right`` by more than ``epsilon``."""
    return left > right + epsilon


def strictly_less(left: float, right: float, epsilon: float = EPSILON) -> bool:
    """True iff ``left < right`` by more than ``epsilon``."""
    return left < right - epsilon


def approximately_equal(left: float, right: float, epsilon: float = EPSILON) -> bool:
    """True iff ``left`` and ``right`` differ by at most ``epsilon``."""
    return abs(left - right) <= epsilon
