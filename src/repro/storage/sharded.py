"""Key-sharded storage: N independent registers behind one keyed facade.

The paper's protocols (and every store in this repository) implement a
*single* logical register.  That is the right granularity for studying the
reassignment protocol itself, but the road to "millions of users" runs
through partitioning: real deployments slice the key space into shards, each
served by its own replica group with its own quorum weights.  This module
adds that layer without touching any protocol code:

* :func:`shard_for_key` — a stable FNV-1a hash routing a workload key to a
  shard index.  It is deliberately *not* Python's built-in ``hash`` (which is
  randomised per process): the same key maps to the same shard in every
  process, which is what makes sharded runs deterministic under fixed seeds
  and bit-identical between serial and parallel sweep executions.
* :class:`ShardFactory` and its three concrete factories — one per storage
  flavour (the paper's dynamic-weighted store, classical ABD over a static
  quorum system, and the reconfigurable comparator of Section VIII).  A
  factory builds one shard's server group and per-client handles over a
  *shared* network, so all shards advance in one coherent virtual timeline.
* :class:`ShardedStore` — the per-client facade: ``read(key)`` /
  ``write(value, key)`` route each operation to the register instance owning
  the key's shard.  Because shards are independent registers, atomicity holds
  *per key* (every key lives on exactly one shard), which is the standard
  guarantee of sharded key-value stores.

Each shard carries its own :class:`~repro.core.spec.SystemConfig`, so
per-shard quorum weights and per-shard reassignment state evolve
independently: a hotspot shard can re-point its quorums while cold shards
keep their initial weights.

Shard-local processes share the simulated network, so their ids are
suffixed with the shard index (``s1#0`` is shard 0's first server,
``c2#1`` is client ``c2``'s handle into shard 1); :func:`shard_process_name`
/ :func:`base_process_name` convert between the two namings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.spec import SystemConfig
from repro.core.storage import (
    DynamicWeightedStorageClient,
    DynamicWeightedStorageServer,
    OperationRecord,
)
from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.obs.observer import current_observer
from repro.quorum.base import QuorumSystem
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.weighted import WeightedMajorityQuorumSystem
from repro.storage.abd import StaticQuorumStorageClient, StaticQuorumStorageServer
from repro.storage.reconfigurable import (
    ReconfigurableStorageClient,
    ReconfigurableStorageServer,
)
from repro.types import ProcessId

__all__ = [
    "shard_for_key",
    "shard_process_name",
    "base_process_name",
    "expand_process_names",
    "shard_config",
    "ShardFactory",
    "DynamicWeightedShardFactory",
    "StaticQuorumShardFactory",
    "ReconfigurableShardFactory",
    "shard_factory",
    "ShardedRecord",
    "ShardedStore",
]

_SHARD_SEPARATOR = "#"


def shard_for_key(key: Optional[str], shards: int) -> int:
    """Route ``key`` to a shard index in ``[0, shards)``.

    The routing is a 32-bit FNV-1a hash with a final avalanche mix, chosen
    because it is stable across processes and Python versions (unlike the
    built-in ``hash``, which is seeded per interpreter).  ``None`` keys (a
    workload that never set one) land on shard 0, preserving the
    single-register behaviour for un-keyed workloads.
    """
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")
    if key is None or shards == 1:
        return 0
    digest = 0x811C9DC5
    for byte in key.encode("utf-8"):
        digest ^= byte
        digest = (digest * 0x01000193) & 0xFFFFFFFF
    # Avalanche the low bits: short keys like "k1".."k64" differ only in a
    # couple of bytes, and plain FNV would correlate them with small moduli.
    digest ^= digest >> 15
    digest = (digest * 0x2C1B3C6D) & 0xFFFFFFFF
    digest ^= digest >> 12
    return digest % shards


def shard_process_name(base: ProcessId, shard: int) -> ProcessId:
    """The network-unique name of ``base`` inside ``shard`` (``s1#2``)."""
    if shard < 0:
        raise ConfigurationError(f"shard indices are 0-based, got {shard}")
    return f"{base}{_SHARD_SEPARATOR}{shard}"


def base_process_name(pid: ProcessId) -> ProcessId:
    """Strip the shard suffix (``s1#2`` -> ``s1``); no-op for unsharded ids."""
    base, _, _ = pid.partition(_SHARD_SEPARATOR)
    return base


def expand_process_names(
    pids: Sequence[ProcessId], shards: int
) -> Tuple[ProcessId, ...]:
    """Resolve process names into the sharded namespace.

    A *canonical* name (no ``#`` suffix, e.g. ``s1``) addresses that
    process's instance in **every** shard — the co-located deployment model
    where shard k's ``s1#k`` all run on the same physical machine ``s1``, so
    crashing or slowing the machine affects all of them.  A *qualified* name
    (``s1#2``) passes through unchanged and targets a single shard's
    instance.  With one shard, names pass through untouched — this function
    resolves *spec-level* names, where ``shards == 1`` means the classic
    unsharded cluster with canonical process ids.  Callers driving
    :func:`~repro.sim.cluster.build_sharded_cluster` directly (whose
    processes are shard-qualified even at ``shards=1``) should address
    processes by their qualified names instead.
    """
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")
    if shards == 1:
        return tuple(pids)
    expanded: List[ProcessId] = []
    for pid in pids:
        if _SHARD_SEPARATOR in pid:
            expanded.append(pid)
        else:
            expanded.extend(shard_process_name(pid, shard) for shard in range(shards))
    return tuple(expanded)


def shard_config(template: SystemConfig, shard: int) -> SystemConfig:
    """``template`` with every server renamed into ``shard``'s namespace.

    Each shard gets its own :class:`SystemConfig` instance, so its change
    sets, weight maps and fault threshold are fully independent of every
    other shard's.
    """
    servers = tuple(shard_process_name(pid, shard) for pid in template.servers)
    weights = {
        shard_process_name(pid, shard): weight
        for pid, weight in template.initial_weights.items()
    }
    return SystemConfig(servers=servers, f=template.f, initial_weights=weights)


# ---------------------------------------------------------------------------
# Per-flavour shard factories
# ---------------------------------------------------------------------------


class ShardFactory:
    """Builds one shard's server group and per-client storage handles.

    The two hooks mirror how the unsharded cluster builders are split:
    :meth:`build_servers` wires the shard's replica group onto the shared
    network, and :meth:`build_client` creates one logical client's handle
    into that shard.  Every storage flavour supplies a concrete factory, so
    the sharded cluster builder is flavour-agnostic.
    """

    flavour = "abstract"

    def build_servers(
        self, config: SystemConfig, network: Network
    ) -> Dict[ProcessId, Any]:
        """Create and register the shard's servers (keyed by full pid)."""
        raise NotImplementedError

    def build_client(
        self, pid: ProcessId, network: Network, config: SystemConfig
    ) -> Any:
        """Create one client handle (full ``c1#k`` pid) into the shard."""
        raise NotImplementedError


class DynamicWeightedShardFactory(ShardFactory):
    """The paper's dynamic-weighted storage (Algorithms 5/6) per shard.

    Every shard runs its own reassignment protocol instance: weights
    transferred inside one shard are invisible to the others.
    """

    flavour = "dynamic-weighted"

    def build_servers(
        self, config: SystemConfig, network: Network
    ) -> Dict[ProcessId, DynamicWeightedStorageServer]:
        return {
            pid: DynamicWeightedStorageServer(pid, network, config)
            for pid in config.servers
        }

    def build_client(
        self, pid: ProcessId, network: Network, config: SystemConfig
    ) -> DynamicWeightedStorageClient:
        return DynamicWeightedStorageClient(pid, network, config)


class StaticQuorumShardFactory(ShardFactory):
    """Classical ABD over a static (majority or weighted-majority) system."""

    def __init__(self, weighted: bool = False) -> None:
        self.weighted = weighted
        self.flavour = "static-weighted" if weighted else "static-majority"

    def _quorum_system(self, config: SystemConfig) -> QuorumSystem:
        if self.weighted:
            return WeightedMajorityQuorumSystem(config.initial_weights)
        return MajorityQuorumSystem(config.servers)

    def build_servers(
        self, config: SystemConfig, network: Network
    ) -> Dict[ProcessId, StaticQuorumStorageServer]:
        return {
            pid: StaticQuorumStorageServer(pid, network) for pid in config.servers
        }

    def build_client(
        self, pid: ProcessId, network: Network, config: SystemConfig
    ) -> StaticQuorumStorageClient:
        return StaticQuorumStorageClient(pid, network, self._quorum_system(config))


class ReconfigurableShardFactory(ShardFactory):
    """The Section VIII reconfigurable comparator, one instance per shard.

    The shard's server set doubles as the universe of addressable servers;
    reconfigurations within a shard (``client.reconfigure``) therefore pick
    subsets of that shard's group, matching how the E8 comparison deploys it.
    """

    flavour = "reconfigurable"

    def build_servers(
        self, config: SystemConfig, network: Network
    ) -> Dict[ProcessId, ReconfigurableStorageServer]:
        return {
            pid: ReconfigurableStorageServer(pid, network, config.servers)
            for pid in config.servers
        }

    def build_client(
        self, pid: ProcessId, network: Network, config: SystemConfig
    ) -> ReconfigurableStorageClient:
        return ReconfigurableStorageClient(pid, network, config.servers, config.servers)


_FACTORIES = {
    "dynamic-weighted": DynamicWeightedShardFactory,
    "static-majority": lambda: StaticQuorumShardFactory(weighted=False),
    "static-weighted": lambda: StaticQuorumShardFactory(weighted=True),
    "reconfigurable": ReconfigurableShardFactory,
}


def shard_factory(flavour: str) -> ShardFactory:
    """Look up the :class:`ShardFactory` for a storage ``flavour``."""
    try:
        return _FACTORIES[flavour]()
    except KeyError:
        raise ConfigurationError(
            f"unknown sharded storage flavour {flavour!r}; "
            f"expected one of {tuple(sorted(_FACTORIES))}"
        ) from None


# ---------------------------------------------------------------------------
# The keyed client facade
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedRecord:
    """One completed keyed operation: which shard served it, and its record."""

    shard: int
    key: Optional[str]
    record: OperationRecord


class ShardedStore:
    """One logical client's keyed view over the shard set.

    ``read``/``write`` route on the operation's key via :func:`shard_for_key`
    and delegate to the per-shard client handle (an independent register
    client wired into that shard's replica group).  The facade mirrors the
    unsharded clients' ``history`` attribute so the generic runner
    aggregation keeps working, and additionally keeps a
    :attr:`sharded_history` with shard/key placements for the per-shard
    metrics.

    Like the paper's clients, a logical client is *sequential*: one facade
    supports one operation at a time (the workload runner issues each
    client's operations in order).  Concurrent operations on the same facade
    would make the per-shard record attribution ambiguous, so the facade
    raises instead of silently mis-counting; use one facade per concurrent
    logical client.
    """

    #: Marks the client as key-aware for the workload runner.
    keyed = True

    def __init__(self, pid: ProcessId, shard_clients: Sequence[Any]) -> None:
        if not shard_clients:
            raise ConfigurationError("a sharded store needs at least one shard client")
        self.pid = pid
        self.shard_clients = tuple(shard_clients)
        self.shards = len(self.shard_clients)
        self._in_flight = False
        # Ambient observer captured at construction, like Network/SimLoop do
        # (the facade holds no network reference of its own).
        self.obs = current_observer()
        # key -> shard memo: workloads revisit a small key set thousands of
        # times, so each key pays the FNV-1a hash exactly once per facade.
        self._shard_memo: Dict[Optional[str], int] = {}
        #: Completed operations in issue order (same shape as unsharded clients).
        self.history: List[OperationRecord] = []
        #: Completed operations with their shard/key placement.
        self.sharded_history: List[ShardedRecord] = []

    # -- routing -----------------------------------------------------------------
    def shard_of(self, key: Optional[str]) -> int:
        """The shard index serving ``key`` (memoised :func:`shard_for_key`)."""
        memo = self._shard_memo
        shard = memo.get(key)
        if shard is None:
            shard = memo[key] = shard_for_key(key, self.shards)
        return shard

    def client_for(self, key: Optional[str]) -> Any:
        """The per-shard client handle serving ``key``."""
        return self.shard_clients[self.shard_of(key)]

    def _begin(self) -> None:
        if self._in_flight:
            raise ConfigurationError(
                f"logical client {self.pid!r} issued concurrent operations; "
                "sharded store facades are sequential — use one facade per "
                "concurrent client"
            )
        self._in_flight = True

    def _absorb(self, shard: int, key: Optional[str]) -> OperationRecord:
        # The per-shard sub-client is exclusive to this logical client, and
        # _begin() enforces that the logical client is sequential, so the
        # sub-client's latest history entry is exactly the operation that
        # just completed.
        record = self.shard_clients[shard].history[-1]
        self.history.append(record)
        self.sharded_history.append(ShardedRecord(shard=shard, key=key, record=record))
        if self.obs is not None:
            self.obs.shard_routed(self.pid, shard, record.kind)
        return record

    # -- public API ----------------------------------------------------------------
    async def read(self, key: Optional[str] = None) -> Any:
        """Atomically read the register owning ``key``."""
        shard = self.shard_of(key)
        self._begin()
        try:
            value = await self.shard_clients[shard].read()
            self._absorb(shard, key)
        finally:
            self._in_flight = False
        return value

    async def write(self, value: Any, key: Optional[str] = None) -> None:
        """Atomically write ``value`` to the register owning ``key``."""
        shard = self.shard_of(key)
        self._begin()
        try:
            await self.shard_clients[shard].write(value)
            self._absorb(shard, key)
        finally:
            self._in_flight = False

    # -- introspection ---------------------------------------------------------------
    def shard_loads(self) -> Dict[int, int]:
        """Completed-operation counts per shard (only shards this client hit)."""
        loads: Dict[int, int] = {}
        for entry in self.sharded_history:
            loads[entry.shard] = loads.get(entry.shard, 0) + 1
        return loads
