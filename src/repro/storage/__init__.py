"""Atomic-storage baselines.

* :mod:`repro.storage.abd` — the classical multi-writer ABD register [26]
  parameterised by a static quorum system; instantiated with
  :class:`~repro.quorum.majority.MajorityQuorumSystem` it is the MQS baseline
  of the paper's introduction, with a static
  :class:`~repro.quorum.weighted.WeightedMajorityQuorumSystem` it is the
  static-weight WMQS storage (WHEAT-style) the dynamic variant improves on.
* :mod:`repro.storage.reconfigurable` — a simplified reconfigurable atomic
  storage used for the Section VIII availability comparison (E8).
* :mod:`repro.storage.sharded` — key-sharded composition: N independent
  register instances (any of the flavours above, via a common factory)
  behind a keyed ``read(key)``/``write(value, key)`` facade, each shard
  carrying its own quorum weights and reassignment state.
"""

from repro.storage.abd import StaticQuorumStorageServer, StaticQuorumStorageClient
from repro.storage.reconfigurable import (
    ReconfigurableStorageServer,
    ReconfigurableStorageClient,
)
from repro.storage.sharded import (
    DynamicWeightedShardFactory,
    ReconfigurableShardFactory,
    ShardFactory,
    ShardedRecord,
    ShardedStore,
    StaticQuorumShardFactory,
    base_process_name,
    expand_process_names,
    shard_config,
    shard_factory,
    shard_for_key,
    shard_process_name,
)

__all__ = [
    "StaticQuorumStorageServer",
    "StaticQuorumStorageClient",
    "ReconfigurableStorageServer",
    "ReconfigurableStorageClient",
    "ShardFactory",
    "DynamicWeightedShardFactory",
    "StaticQuorumShardFactory",
    "ReconfigurableShardFactory",
    "ShardedRecord",
    "ShardedStore",
    "base_process_name",
    "expand_process_names",
    "shard_config",
    "shard_factory",
    "shard_for_key",
    "shard_process_name",
]
