"""Atomic-storage baselines.

* :mod:`repro.storage.abd` — the classical multi-writer ABD register [26]
  parameterised by a static quorum system; instantiated with
  :class:`~repro.quorum.majority.MajorityQuorumSystem` it is the MQS baseline
  of the paper's introduction, with a static
  :class:`~repro.quorum.weighted.WeightedMajorityQuorumSystem` it is the
  static-weight WMQS storage (WHEAT-style) the dynamic variant improves on.
* :mod:`repro.storage.reconfigurable` — a simplified reconfigurable atomic
  storage used for the Section VIII availability comparison (E8).
"""

from repro.storage.abd import StaticQuorumStorageServer, StaticQuorumStorageClient
from repro.storage.reconfigurable import (
    ReconfigurableStorageServer,
    ReconfigurableStorageClient,
)

__all__ = [
    "StaticQuorumStorageServer",
    "StaticQuorumStorageClient",
    "ReconfigurableStorageServer",
    "ReconfigurableStorageClient",
]
