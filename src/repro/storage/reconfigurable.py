"""A simplified reconfigurable atomic storage (the Section VIII comparator).

The paper contrasts its dynamic-weighted storage with *reconfigurable* atomic
storage [13]-[17]: both change quorum formation at run time, but their
availability conditions differ fundamentally —

* dynamic-weighted storage stays live as long as at most ``f`` servers crash,
  where ``f`` is static and independent of any reassignment requests;
* reconfigurable storage stays live only while **every pending configuration**
  retains a correct majority (of servers not proposed for removal), i.e. its
  effective fault threshold depends on the reconfiguration requests in flight.

This module implements a deliberately simplified, consensus-free
reconfigurable register that preserves exactly that availability condition
(the property experiment E8 measures), while leaving out the optimisations of
DynaStore/SmartMerge (garbage collection of old configurations, speculating
on config chains):

* configurations are plain server sets, disseminated on a grow-only
  "known configurations" set piggybacked on every reply (like the change sets
  of the dynamic-weighted storage);
* a read/write phase completes only once it holds replies from a majority of
  **each** known configuration;
* a reconfiguration completes once the new configuration is stored by a
  majority of every configuration known to the issuer (old ones and the new
  one), after transferring the register state read from the old
  configurations.

DESIGN.md records this simplification.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.storage import OperationRecord, StoredValue
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.process import Process
from repro.types import ProcessId, Tag, VirtualTime

__all__ = ["ReconfigurableStorageServer", "ReconfigurableStorageClient"]

RC_R = "RCFG_R"
RC_R_ACK = "RCFG_R_ACK"
RC_W = "RCFG_W"
RC_W_ACK = "RCFG_W_ACK"

Configuration = FrozenSet[ProcessId]


def _majority_of_every_config(
    senders: Set[ProcessId], configs: Iterable[Configuration]
) -> bool:
    """True when ``senders`` contains a strict majority of every configuration."""
    for config in configs:
        present = len(senders & config)
        if present <= len(config) / 2:
            return False
    return True


class ReconfigurableStorageServer(Process):
    """Server side: tagged register + grow-only set of known configurations."""

    def __init__(
        self, pid: ProcessId, network: Network, initial_config: Sequence[ProcessId]
    ) -> None:
        super().__init__(pid, network)
        self.stored = StoredValue.initial()
        self.known_configs: Set[Configuration] = {frozenset(initial_config)}
        self.register_handler(RC_R, self._on_read_phase)
        self.register_handler(RC_W, self._on_write_phase)

    def _merge_configs(self, configs: Iterable[Tuple[ProcessId, ...]]) -> None:
        for config in configs:
            self.known_configs.add(frozenset(config))

    def _configs_payload(self) -> Tuple[Tuple[ProcessId, ...], ...]:
        return tuple(tuple(sorted(config)) for config in sorted(self.known_configs, key=sorted))

    def _on_read_phase(self, message: Message) -> None:
        self._merge_configs(message.payload.get("configs", ()))
        self.reply(
            message,
            RC_R_ACK,
            {"stored": self.stored, "configs": self._configs_payload()},
        )

    def _on_write_phase(self, message: Message) -> None:
        self._merge_configs(message.payload.get("configs", ()))
        incoming: StoredValue = message.payload["stored"]
        if self.stored.tag < incoming.tag:
            self.stored = incoming
        self.reply(message, RC_W_ACK, {"configs": self._configs_payload()})


class ReconfigurableStorageClient(Process):
    """Reader/writer/reconfigurer side of the simplified reconfigurable store."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        initial_config: Sequence[ProcessId],
        all_servers: Sequence[ProcessId],
    ) -> None:
        super().__init__(pid, network)
        #: Every server that could ever be part of a configuration (the
        #: message fabric needs their addresses even before they join).
        self.all_servers = tuple(all_servers)
        self.known_configs: Set[Configuration] = {frozenset(initial_config)}
        self._op_count = 0
        self.history: List[OperationRecord] = []

    # -- internals -----------------------------------------------------------------
    def _members(self) -> Tuple[ProcessId, ...]:
        members: Set[ProcessId] = set()
        for config in self.known_configs:
            members |= config
        return tuple(sorted(members))

    def _configs_payload(self) -> Tuple[Tuple[ProcessId, ...], ...]:
        return tuple(tuple(sorted(config)) for config in sorted(self.known_configs, key=sorted))

    async def _run_phase(self, kind: str, payload: dict) -> List[Message]:
        """One phase: wait for majorities of every known configuration.

        Restarts (by raising ``_NewConfigs``) when replies reveal
        configurations this client did not know about.
        """
        while True:
            self._op_count += 1
            request_payload = dict(
                payload, cnt=self._op_count, configs=self._configs_payload()
            )
            collector = self.request_all(self._members(), kind, request_payload)
            known_before = set(self.known_configs)

            def done(replies: List[Message]) -> bool:
                if any(
                    frozenset(config) not in known_before
                    for reply in replies
                    for config in reply.payload["configs"]
                ):
                    return True
                senders = {reply.sender for reply in replies}
                return _majority_of_every_config(senders, known_before)

            replies = await collector.wait_until(done, name="reconfig-quorum")
            new_configs = {
                frozenset(config)
                for reply in replies
                for config in reply.payload["configs"]
            } - known_before
            if new_configs:
                self.known_configs |= new_configs
                continue
            return replies

    async def _read_write(self, value: Any, is_write: bool) -> OperationRecord:
        started_at = self.loop.now
        replies = await self._run_phase(RC_R, {})
        max_stored: StoredValue = max(
            (reply.payload["stored"] for reply in replies), key=lambda s: s.tag
        )
        if is_write:
            tag = Tag(ts=max_stored.tag.ts + 1, pid=self.pid)
            value_to_write = value
        else:
            tag = max_stored.tag
            value_to_write = max_stored.value
        replies = await self._run_phase(
            RC_W, {"stored": StoredValue(tag=tag, value=value_to_write)}
        )
        record = OperationRecord(
            kind="write" if is_write else "read",
            value=value_to_write,
            tag=tag,
            started_at=started_at,
            completed_at=self.loop.now,
            restarts=0,
            contacted=len({reply.sender for reply in replies}),
        )
        self.history.append(record)
        return record

    # -- public API -------------------------------------------------------------------
    async def read(self) -> Any:
        """Atomically read the register."""
        record = await self._read_write(None, is_write=False)
        return record.value

    async def write(self, value: Any) -> None:
        """Atomically write ``value``."""
        if value is None:
            raise ConfigurationError("None is reserved as the 'unwritten' value")
        await self._read_write(value, is_write=True)

    async def reconfigure(self, new_config: Sequence[ProcessId]) -> None:
        """Propose ``new_config`` as a new configuration and install it.

        The operation transfers the current register state into the union of
        configurations: it reads (majorities of every known configuration),
        adds the new configuration, and writes the state back until majorities
        of every configuration — including the new one — have stored it.
        """
        members = frozenset(new_config)
        unknown = members - set(self.all_servers)
        if unknown:
            raise ConfigurationError(f"unknown servers in new config: {sorted(unknown)}")
        replies = await self._run_phase(RC_R, {})
        max_stored: StoredValue = max(
            (reply.payload["stored"] for reply in replies), key=lambda s: s.tag
        )
        self.known_configs.add(members)
        await self._run_phase(RC_W, {"stored": max_stored})

    @property
    def pending_config_count(self) -> int:
        return len(self.known_configs)
