"""Classical multi-writer ABD atomic storage over a static quorum system.

This is the baseline storage of the paper's introduction: the ABD protocol
[26] (two phases, read-then-write-back / read-tag-then-write) running against
a *fixed* quorum system.  Passing a
:class:`~repro.quorum.majority.MajorityQuorumSystem` gives the plain MQS
deployment; passing a static
:class:`~repro.quorum.weighted.WeightedMajorityQuorumSystem` gives the
static-weight WMQS deployment (as in WHEAT [20]).  Contrasting both with the
dynamic-weighted storage of :mod:`repro.core.storage` under run-time
performance variation is experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.core.storage import OperationRecord, StoredValue
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.process import Process
from repro.quorum.base import QuorumSystem
from repro.types import ProcessId, Tag, VirtualTime

__all__ = ["StaticQuorumStorageServer", "StaticQuorumStorageClient"]

SR = "S_R"  # static-storage phase-1 request
SR_ACK = "S_R_ACK"
SW = "S_W"  # static-storage phase-2 request
SW_ACK = "S_W_ACK"


class StaticQuorumStorageServer(Process):
    """Server side: a tagged register plus the two ABD handlers."""

    def __init__(self, pid: ProcessId, network: Network) -> None:
        super().__init__(pid, network)
        self.stored = StoredValue.initial()
        self.register_handler(SR, self._on_read_phase)
        self.register_handler(SW, self._on_write_phase)

    def _on_read_phase(self, message: Message) -> None:
        self.reply(message, SR_ACK, {"stored": self.stored})

    def _on_write_phase(self, message: Message) -> None:
        incoming: StoredValue = message.payload["stored"]
        if self.stored.tag < incoming.tag:
            self.stored = incoming
        self.reply(message, SW_ACK, {})


class StaticQuorumStorageClient(Process):
    """Reader/writer side, parameterised by a static quorum system."""

    def __init__(
        self, pid: ProcessId, network: Network, quorum_system: QuorumSystem
    ) -> None:
        super().__init__(pid, network)
        self.quorum_system = quorum_system
        self.servers = tuple(quorum_system.servers)
        self._op_count = 0
        self.history: List[OperationRecord] = []

    # -- the two-phase engine -----------------------------------------------------
    async def _run_phase(self, kind: str, payload: dict) -> List[Message]:
        self._op_count += 1
        payload = dict(payload, cnt=self._op_count)
        collector = self.request_all(self.servers, kind, payload)
        return await collector.wait_for_senders(
            self.quorum_system.is_quorum, name="static-quorum"
        )

    async def _read_write(self, value: Any, is_write: bool) -> OperationRecord:
        kind = "write" if is_write else "read"
        started_at = self.loop.now
        obs = self.network.obs
        if obs is not None:
            obs.operation_started("abd", self.pid, kind, started_at)
        replies = await self._run_phase(SR, {})
        if obs is not None:
            obs.quorum_phase(
                "abd",
                self.pid,
                "phase1",
                len({reply.sender for reply in replies}),
                self.loop.now,
            )
        max_stored: StoredValue = max(
            (reply.payload["stored"] for reply in replies), key=lambda s: s.tag
        )
        if is_write:
            tag = Tag(ts=max_stored.tag.ts + 1, pid=self.pid)
            value_to_write = value
        else:
            tag = max_stored.tag
            value_to_write = max_stored.value
        replies = await self._run_phase(
            SW, {"stored": StoredValue(tag=tag, value=value_to_write)}
        )
        contacted = len({reply.sender for reply in replies})
        if obs is not None:
            obs.quorum_phase("abd", self.pid, "phase2", contacted, self.loop.now)
            obs.operation_completed(
                "abd",
                self.pid,
                kind,
                self.loop.now,
                0,
                contacted,
                self.loop.now - started_at,
            )
        record = OperationRecord(
            kind=kind,
            value=value_to_write,
            tag=tag,
            started_at=started_at,
            completed_at=self.loop.now,
            restarts=0,
            contacted=contacted,
        )
        self.history.append(record)
        return record

    # -- public API -------------------------------------------------------------------
    async def read(self) -> Any:
        """Atomically read the register."""
        record = await self._read_write(None, is_write=False)
        return record.value

    async def write(self, value: Any) -> None:
        """Atomically write ``value``."""
        if value is None:
            raise ConfigurationError("None is reserved as the 'unwritten' value")
        await self._read_write(value, is_write=True)
