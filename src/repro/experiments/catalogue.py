"""The built-in scenario catalogue.

This module registers the paper's headline experiments as named scenarios —
the Fig. 1 walkthrough, WMQS-vs-MQS, epoch-vs-epochless reassignment and
dynamic-storage-vs-reconfiguration — together with a set of declarative
storage workloads (quickstart, static baselines, crash resilience).

The function scenarios here are the single source of truth for the
corresponding ``benchmarks/bench_*.py`` modules, which are now thin wrappers
that execute a registered scenario and assert the paper's shape claims on
its result dict.  Everything a scenario returns is JSON-serialisable, so the
sweep engine, the result sinks and the CLI can all consume it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis import expected_quorum_latency, inverse_latency_weights
from repro.assettransfer import KAssetReplica, OneAssetServer
from repro.consensus.sequencer import Sequencer
from repro.core.reductions import OraclePairwiseReassignment, algorithm_config
from repro.core.spec import SystemConfig, check_rp_integrity
from repro.errors import ConfigurationError, DeadlockError, SimTimeoutError
from repro.experiments.registry import register_spec, scenario
from repro.experiments.sections import SpecSection
from repro.experiments.spec import (
    ArrivalSpec,
    ClusterSpec,
    FaultSpec,
    KeySpec,
    LatencySpec,
    MixSpec,
    PhaseSpec,
    ScenarioSpec,
    TransferEvent,
    WorkloadSpec,
    run_spec,
)
from repro.monitoring.controller import WeightController
from repro.monitoring.loop import install_monitoring_control
from repro.net.latency import (
    ConstantLatency,
    PerLinkLatency,
    SlowdownLatency,
    UniformLatency,
)
from repro.net.network import Network
from repro.net.simloop import SimLoop, gather
from repro.quorum.availability import minimum_quorum_cardinality
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.weighted import WeightedMajorityQuorumSystem
from repro.reassign.epoch_based import EpochBasedCoordinator, EpochBasedServer
from repro.sim.cluster import (
    build_dynamic_cluster,
    build_reassignment_fleet,
    build_sharded_cluster,
    build_static_cluster,
)
from repro.sim.metrics import summarize
from repro.sim.runner import run_workload
from repro.storage.sharded import shard_for_key, shard_process_name
from repro.storage.reconfigurable import (
    ReconfigurableStorageClient,
    ReconfigurableStorageServer,
)
from repro.types import server_set
from repro.workloads.arrivals import ClosedLoopArrivals, PoissonArrivals
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.keys import HotspotKeys
from repro.workloads.mix import OperationMix
from repro.workloads.phases import Phase
from repro.workloads.stats import workload_stats

__all__ = [
    "fig1_walkthrough",
    "wmqs_vs_mqs",
    "epoch_vs_epochless",
    "storage_vs_reconfig",
    "dynamic_storage_adaptation",
    "hotspot_shift_monitoring",
    "sharded_zipfian_imbalance",
    "sharded_hotspot_reassignment",
    "AssetTransferSpec",
    "asset_transfer",
]


# ---------------------------------------------------------------------------
# E1 — Fig. 1 / Example 2: the restricted pairwise reassignment walkthrough.
# ---------------------------------------------------------------------------

FIG1_ACCEPTED = (("s4", "s1", 0.2), ("s5", "s2", 0.2), ("s6", "s3", 0.2))
FIG1_REJECTED = (("s6", "s2", 0.2), ("s7", "s3", 0.3))


@scenario(
    "fig1-walkthrough",
    description="Fig. 1 / Example 2: three accepted transfers concentrate a "
    "minority quorum on {s1,s2,s3}; two more are rejected by RP-Integrity.",
    tags=("paper", "reassignment"),
)
def fig1_walkthrough(n: int = 7, f: int = 2) -> Dict[str, Any]:
    """Replay the paper's Fig. 1 transfer sequence and check RP-Integrity."""
    if n < 7:
        raise ConfigurationError(
            f"fig1-walkthrough replays the paper's fixed transfer requests on "
            f"servers s1..s7 and needs n >= 7, got n={n}"
        )
    fleet = build_reassignment_fleet(SystemConfig.uniform(n, f=f))

    async def run() -> List[Dict[str, Any]]:
        outcomes = []
        for source, target, delta in FIG1_ACCEPTED + FIG1_REJECTED:
            outcome = await fleet.servers[source].transfer(target, delta)
            outcomes.append(
                {
                    "source": source,
                    "target": target,
                    "delta": delta,
                    "expected_effective": (source, target, delta) in FIG1_ACCEPTED,
                    "effective": outcome.effective,
                    "latency": outcome.latency,
                }
            )
        return outcomes

    transfers = fleet.loop.run_until_complete(run())
    fleet.loop.run()  # let the broadcast echoes finish for an honest message count
    weights = fleet.servers["s1"].local_weights()
    quorum_system = WeightedMajorityQuorumSystem(weights)
    return {
        "transfers": transfers,
        "weights": {pid: weight for pid, weight in sorted(weights.items())},
        "messages": fleet.network.messages_sent,
        "minority_is_quorum": quorum_system.is_quorum(["s1", "s2", "s3"]),
        "smallest_quorum_size": quorum_system.smallest_quorum_size(),
        "rp_integrity": check_rp_integrity(
            weights, fleet.config.total_initial_weight, fleet.config.f
        ),
    }


# ---------------------------------------------------------------------------
# E5 — WMQS vs MQS expected quorum latency on WAN-like RTT vectors.
# ---------------------------------------------------------------------------

WAN_RTT_VECTORS: Dict[str, Dict[str, float]] = {
    "homogeneous LAN (5 sites)": {"s1": 1.0, "s2": 1.0, "s3": 1.0, "s4": 1.0, "s5": 1.0},
    "EU client, 2 near / 3 far (5 sites)": {"s1": 10.0, "s2": 12.0, "s3": 45.0, "s4": 80.0, "s5": 95.0},
    "WHEAT-like geo deployment (5 sites)": {"s1": 5.0, "s2": 8.0, "s3": 35.0, "s4": 70.0, "s5": 150.0},
    "7 sites, one fast continent": {
        "s1": 5.0, "s2": 6.0, "s3": 8.0, "s4": 60.0, "s5": 70.0, "s6": 90.0, "s7": 120.0,
    },
    "13 sites planet-scale": {
        f"s{i}": float(latency)
        for i, latency in enumerate(
            [5, 6, 8, 10, 12, 40, 55, 70, 80, 95, 110, 140, 180], start=1
        )
    },
}


@scenario(
    "wmqs-vs-mqs",
    description="Expected quorum latency and cardinality: plain majority vs "
    "inverse-latency weighted majority across WAN RTT vectors.",
    tags=("paper", "quorum", "analytic"),
)
def wmqs_vs_mqs(total_weight_per_server: float = 1.0) -> Dict[str, Any]:
    """Expected quorum latency, majority vs weighted, on WAN RTT vectors."""
    rows = []
    for name, rtt in WAN_RTT_VECTORS.items():
        servers = tuple(sorted(rtt, key=lambda s: int(s[1:])))
        n = len(servers)
        f = (n - 1) // 3 if n > 5 else 1
        mqs = MajorityQuorumSystem(servers)
        # Raise the per-server floor until the assignment tolerates f failures
        # (very skewed latency vectors need a higher floor to satisfy Property 1).
        weights = None
        for floor_fraction in (0.5, 0.6, 0.7, 0.8, 0.9):
            try:
                weights = inverse_latency_weights(
                    rtt,
                    total_weight=total_weight_per_server * n,
                    f=f,
                    floor_fraction=floor_fraction,
                )
                break
            except Exception:
                continue
        if weights is None:
            raise ConfigurationError(f"no feasible weight assignment for {name}")
        wmqs = WeightedMajorityQuorumSystem(weights)
        mqs_latency = expected_quorum_latency(mqs, rtt)
        wmqs_latency = expected_quorum_latency(wmqs, rtt)
        rows.append(
            {
                "scenario": name,
                "n": n,
                "f": f,
                "mqs_latency": mqs_latency,
                "wmqs_latency": wmqs_latency,
                "speedup": mqs_latency / wmqs_latency if wmqs_latency else 1.0,
                "mqs_quorum": mqs.quorum_size(),
                "wmqs_quorum": minimum_quorum_cardinality(weights),
            }
        )
    return {"rows": rows}


# ---------------------------------------------------------------------------
# E7 — Epochless restricted pairwise reassignment vs the epoch-based baseline.
# ---------------------------------------------------------------------------

EPOCH_REQUESTS = (("s4", "s1", 0.1), ("s5", "s2", 0.1), ("s6", "s3", 0.1), ("s7", "s1", 0.1))


def _run_epochless(n: int, f: int) -> Dict[str, Any]:
    fleet = build_reassignment_fleet(SystemConfig.uniform(n, f=f))

    async def one(source: str, target: str, delta: float):
        return await fleet.servers[source].transfer(target, delta)

    outcomes = fleet.loop.run_until_complete(
        gather(fleet.loop, [one(*request) for request in EPOCH_REQUESTS])
    )
    fleet.loop.run()
    total = sum(fleet.servers["s1"].local_weights().values())
    mean_latency = sum(o.latency for o in outcomes) / len(outcomes)
    return {"protocol": "restricted pairwise (paper)", "epoch": "-",
            "mean_latency": mean_latency, "total_weight": total, "leaked": 0.0}


def _run_epoch_based(
    n: int, f: int, epoch_length: float, crash_issuer: bool = False
) -> Dict[str, Any]:
    config = SystemConfig.uniform(n, f=f)
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    coordinator = EpochBasedCoordinator("coord", network, config, epoch_length)
    servers = {pid: EpochBasedServer(pid, network, config, "coord") for pid in config.servers}

    latencies: List[float] = []

    async def one(source: str, target: str, delta: float) -> None:
        started = loop.now
        await servers[source].transfer(target, delta)
        latencies.append(loop.now - started)

    async def run() -> None:
        tasks = [loop.create_task(one(*request)) for request in EPOCH_REQUESTS]
        if crash_issuer:
            await loop.sleep(epoch_length * 0.5)
            network.crash("s4")
        for task in tasks:
            if not crash_issuer:
                await task

    loop.run_until_complete(run())
    loop.run(until=loop.now + 3 * epoch_length)
    coordinator.stop()
    loop.run(until=loop.now + epoch_length + 1)
    label = f"{epoch_length:.0f}" + (" +crash" if crash_issuer else "")
    return {
        "protocol": "epoch-based [11]",
        "epoch": label,
        "mean_latency": sum(latencies) / len(latencies) if latencies else float("nan"),
        "total_weight": coordinator.total_weight(),
        "leaked": coordinator.leaked_weight,
    }


@scenario(
    "epoch-vs-epochless",
    description="Reassignment completion latency and weight preservation: the "
    "paper's epochless protocol vs an epoch-based baseline at several epoch "
    "lengths, including a crashed issuer that leaks weight.",
    tags=("paper", "reassignment", "baseline"),
)
def epoch_vs_epochless(
    n: int = 7,
    f: int = 2,
    epoch_lengths: Sequence[float] = (5.0, 20.0, 80.0),
    crash_epoch_length: float = 20.0,
) -> Dict[str, Any]:
    """Compare reassignment latency and weight leakage across protocols."""
    if n < 7:
        raise ConfigurationError(
            f"epoch-vs-epochless issues its fixed transfer requests from "
            f"servers s4..s7 and needs n >= 7, got n={n}"
        )
    rows = [_run_epochless(n, f)]
    for epoch_length in epoch_lengths:
        rows.append(_run_epoch_based(n, f, epoch_length))
    rows.append(_run_epoch_based(n, f, crash_epoch_length, crash_issuer=True))
    return {"rows": rows}


# ---------------------------------------------------------------------------
# E8 — Dynamic-weighted storage vs reconfigurable storage availability.
# ---------------------------------------------------------------------------

RECONFIG_SCHEDULES: Tuple[Tuple[str, Tuple[str, ...], Tuple[str, ...]], ...] = (
    ("no crashes", (), ()),
    ("f=2 crashes, none touching the pending change", ("s4", "s5"), ("s4", "s5")),
    ("f=2 crashes hitting the newly added servers", ("s4", "s5"), ("s6", "s7")),
)


def _dynamic_stays_live(crashes: Sequence[str]) -> bool:
    config = SystemConfig.uniform(5, f=2)
    cluster = build_dynamic_cluster(config, client_count=1)
    client = cluster.any_client()

    async def run() -> Any:
        await client.write("seed")
        await cluster.servers["s1"].transfer("s3", 0.2)  # an in-flight "operator action"
        for pid in crashes:
            cluster.network.crash(pid)
        await client.write("after-crashes")
        return await client.read()

    try:
        value = cluster.loop.run_until_complete(run(), max_time=10_000.0)
        return value == "after-crashes"
    except (DeadlockError, SimTimeoutError):
        return False


def _reconfigurable_stays_live(crashes: Sequence[str]) -> bool:
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    everyone = server_set(8)
    initial = server_set(5)
    for pid in everyone:
        ReconfigurableStorageServer(pid, network, initial)
    client = ReconfigurableStorageClient("c1", network, initial, everyone)

    async def run() -> Any:
        await client.write("seed")
        # The operator proposes replacing s3/s4/s5 with s6/s7 (a pending config).
        await client.reconfigure(("s1", "s2", "s6", "s7"))
        for pid in crashes:
            network.crash(pid)
        await client.write("after-crashes")
        return await client.read()

    try:
        value = loop.run_until_complete(run(), max_time=10_000.0)
        return value == "after-crashes"
    except (DeadlockError, SimTimeoutError):
        return False


@scenario(
    "storage-vs-reconfig",
    description="Liveness under crash schedules: the dynamic-weighted store's "
    "static fault threshold vs the reconfigurable store's pending-configuration "
    "majority condition.",
    tags=("paper", "storage", "baseline"),
)
def storage_vs_reconfig() -> Dict[str, Any]:
    """Liveness under crash schedules: dynamic-weighted vs reconfigurable."""
    rows = []
    for name, dynamic_crashes, reconfig_crashes in RECONFIG_SCHEDULES:
        rows.append(
            {
                "schedule": name,
                "dynamic": _dynamic_stays_live(dynamic_crashes),
                "reconfigurable": _reconfigurable_stays_live(reconfig_crashes),
            }
        )
    return {"rows": rows}


# ---------------------------------------------------------------------------
# E6 — Case study: dynamic-weighted storage vs static baselines under slowdown.
# ---------------------------------------------------------------------------

CASE_STUDY_RTT = {"s1": 1.0, "s2": 1.0, "s3": 4.0, "s4": 5.0, "s5": 30.0}
CASE_STUDY_WEIGHTS = {"s1": 1.6, "s2": 1.6, "s3": 0.7, "s4": 0.7, "s5": 0.4}


def _case_study_latency(slow_at: float, slow_factor: float, seed: int) -> SlowdownLatency:
    table = {}
    for server, one_way in CASE_STUDY_RTT.items():
        for peer in ("c1", "c2", "s1", "s2", "s3", "s4", "s5"):
            if peer != server:
                table[(peer, server)] = one_way
                table[(server, peer)] = one_way
    base = PerLinkLatency(table, default=1.0, jitter=0.02, seed=seed)
    return SlowdownLatency(base, slow=["s1", "s2"], factor=slow_factor, start_at=slow_at)


def _case_study_flavour(
    flavour: str,
    slow_at: float,
    slow_factor: float,
    operations: int,
    seed: int,
) -> Dict[str, Any]:
    config = SystemConfig(
        servers=tuple(sorted(CASE_STUDY_WEIGHTS, key=lambda s: int(s[1:]))),
        f=1,
        initial_weights=dict(CASE_STUDY_WEIGHTS),
    )
    latency = _case_study_latency(slow_at, slow_factor, seed)
    if flavour == "dynamic-weighted":
        cluster = build_dynamic_cluster(config, latency=latency, client_count=2)
    else:
        cluster = build_static_cluster(
            config, latency=latency, client_count=2,
            weighted=(flavour == "static-weighted"),
        )
    loop = cluster.loop
    before: List[float] = []
    after: List[float] = []

    async def client_loop(client: Any) -> None:
        for index in range(operations):
            bucket = before if loop.now < slow_at else after
            if index % 3 == 0:
                await client.write(f"{client.pid}-{index}")
            else:
                await client.read()
            bucket.append(client.history[-1].latency)
            await loop.sleep(3.0)

    async def reassigner() -> None:
        if flavour != "dynamic-weighted":
            return
        await loop.sleep(slow_at + 20.0)
        # The degraded servers push their weight to the healthy ones.
        await cluster.servers["s1"].transfer("s3", 0.8)
        await cluster.servers["s2"].transfer("s4", 0.8)

    tasks = [client_loop(client) for client in cluster.clients.values()]
    tasks.append(reassigner())
    loop.run_until_complete(gather(loop, tasks))
    return {
        "flavour": flavour,
        "before": summarize(before).median,
        "after": summarize(after).median,
        "after_p95": summarize(after).p95,
    }


@scenario(
    "dynamic-storage-adaptation",
    description="Client latency before/after the two fast servers degrade: "
    "static majority vs static weighted vs the paper's dynamic-weighted "
    "storage, which re-points quorums mid-run.",
    tags=("paper", "storage", "case-study"),
)
def dynamic_storage_adaptation(
    slow_at: float = 150.0,
    slow_factor: float = 8.0,
    operations: int = 60,
    seed: int = 11,
) -> Dict[str, Any]:
    """The E6 case study: client latency before/after two servers degrade."""
    return {
        "rows": [
            _case_study_flavour(flavour, slow_at, slow_factor, operations, seed)
            for flavour in ("static-majority", "static-weighted", "dynamic-weighted")
        ]
    }


# ---------------------------------------------------------------------------
# Declarative storage workloads.
# ---------------------------------------------------------------------------

register_spec(
    ScenarioSpec(
        name="quickstart",
        description="A small dynamic-weighted cluster (n=5, f=1) running a "
        "seeded read/write mix with one mid-run weight transfer.",
        cluster=ClusterSpec(flavour="dynamic-weighted", n=5, f=1, client_count=2),
        workload=WorkloadSpec(operations_per_client=10, mix=MixSpec(read_ratio=0.5)),
        latency=LatencySpec(kind="uniform", low=0.5, high=1.5),
        transfers=(TransferEvent(at=5.0, source="s1", target="s2", delta=0.25),),
        seed=7,
    ),
    tags=("storage", "smoke"),
)

register_spec(
    ScenarioSpec(
        name="static-majority-baseline",
        description="Classical ABD over the plain majority quorum system "
        "(n=5): the MQS baseline every weighted variant is compared against.",
        cluster=ClusterSpec(flavour="static-majority", n=5, client_count=2),
        workload=WorkloadSpec(operations_per_client=20, mix=MixSpec(read_ratio=0.7)),
        latency=LatencySpec(kind="lognormal", median=1.0, sigma=0.4),
    ),
    tags=("storage", "baseline"),
)

register_spec(
    ScenarioSpec(
        name="static-weighted-baseline",
        description="Classical ABD over a static WMQS with WHEAT-style skewed "
        "weights (n=5, f=1): fast while the weights match reality.",
        cluster=ClusterSpec(
            flavour="static-weighted",
            n=5,
            f=1,
            client_count=2,
            initial_weights=(
                ("s1", 1.6), ("s2", 1.6), ("s3", 0.7), ("s4", 0.7), ("s5", 0.4),
            ),
        ),
        workload=WorkloadSpec(operations_per_client=20, mix=MixSpec(read_ratio=0.7)),
        latency=LatencySpec(kind="lognormal", median=1.0, sigma=0.4),
    ),
    tags=("storage", "baseline"),
)

register_spec(
    ScenarioSpec(
        name="crash-resilience",
        description="The dynamic-weighted store stays live while at most f "
        "servers crash mid-workload (n=5, f=2, two crashes at t=10).",
        cluster=ClusterSpec(flavour="dynamic-weighted", n=5, f=2, client_count=2),
        workload=WorkloadSpec(operations_per_client=15, mix=MixSpec(read_ratio=0.5)),
        latency=LatencySpec(kind="uniform", low=0.5, high=1.5),
        faults=FaultSpec(crashes=(("s4", 10.0), ("s5", 10.0))),
        max_time=10_000.0,
    ),
    tags=("storage", "failures"),
)


# ---------------------------------------------------------------------------
# Workload-driven scenarios: skewed keys, open-loop arrivals, hotspot shifts.
# ---------------------------------------------------------------------------

register_spec(
    ScenarioSpec(
        name="skewed-reassignment",
        description="Zipfian key popularity (s=1.2 over 32 keys) stressing the "
        "dynamic-weighted store while two mid-run transfers re-point quorums; "
        "the result carries the achieved skew next to the latencies.",
        cluster=ClusterSpec(flavour="dynamic-weighted", n=5, f=1, client_count=3),
        workload=WorkloadSpec(
            operations_per_client=12,
            keys=KeySpec(kind="zipfian", space=32, zipf_s=1.2),
            arrivals=ArrivalSpec(kind="closed", mean_think_time=1.0),
            mix=MixSpec(read_ratio=0.7),
        ),
        latency=LatencySpec(kind="uniform", low=0.5, high=1.5),
        transfers=(
            TransferEvent(at=6.0, source="s1", target="s2", delta=0.2),
            TransferEvent(at=9.0, source="s3", target="s2", delta=0.15),
        ),
        seed=13,
    ),
    tags=("storage", "workload", "skew"),
)

register_spec(
    ScenarioSpec(
        name="open-loop-saturation",
        description="Open-loop Poisson arrivals (rate 0.5/client over 4 "
        "clients) drive the store regardless of completion times, so queueing "
        "delay — not arrival spacing — absorbs the slack as load approaches "
        "capacity.",
        cluster=ClusterSpec(flavour="dynamic-weighted", n=5, f=1, client_count=4),
        workload=WorkloadSpec(
            operations_per_client=15,
            keys=KeySpec(kind="uniform", space=16),
            arrivals=ArrivalSpec(kind="poisson", rate=0.5),
            mix=MixSpec(read_ratio=0.5),
        ),
        latency=LatencySpec(kind="uniform", low=0.5, high=1.5),
        seed=5,
        max_time=10_000.0,
    ),
    tags=("storage", "workload", "open-loop"),
)

register_spec(
    ScenarioSpec(
        name="hotspot-shift",
        description="A hotspot workload (25% of keys take 90% of traffic) "
        "whose hot set rotates to the opposite half of the key space at t=12 "
        "via a workload phase — the declarative form of a mid-run skew flip.",
        cluster=ClusterSpec(flavour="dynamic-weighted", n=5, f=1, client_count=2),
        workload=WorkloadSpec(
            operations_per_client=16,
            keys=KeySpec(kind="hotspot", space=16, hot_fraction=0.25, hot_weight=0.9),
            phases=(PhaseSpec(at=12.0, overrides=(("keys.offset", 8),)),),
        ),
        latency=LatencySpec(kind="uniform", low=0.5, high=1.5),
        seed=21,
    ),
    tags=("storage", "workload", "skew"),
)


# ---------------------------------------------------------------------------
# Key-sharded storage: load imbalance and per-shard reassignment.
# ---------------------------------------------------------------------------


@scenario(
    "sharded-zipfian-imbalance",
    description="Key-sharded storage under zipfian vs uniform keys at equal "
    "op counts: skew concentrates load on few shards (hottest-shard share "
    "well above 1/shards) while uniform keys stay near the fair share.",
    tags=("storage", "workload", "sharding"),
)
def sharded_zipfian_imbalance(
    shards: int = 4,
    n: int = 3,
    f: int = 1,
    client_count: int = 3,
    operations: int = 40,
    space: int = 256,
    zipf_s: float = 1.2,
    seed: int = 17,
) -> Dict[str, Any]:
    """Run the same sharded deployment twice — zipfian keys, then uniform —
    and report each run's per-shard load vector and imbalance summary."""
    if shards < 2:
        raise ConfigurationError(
            f"the imbalance comparison needs at least 2 shards, got {shards}"
        )
    rows = []
    for kind in ("zipfian", "uniform"):
        spec = ScenarioSpec(
            name=f"sharded-{kind}",
            cluster=ClusterSpec(
                flavour="dynamic-weighted",
                n=n,
                f=f,
                client_count=client_count,
                shards=shards,
            ),
            workload=WorkloadSpec(
                operations_per_client=operations,
                keys=KeySpec(kind=kind, space=space, zipf_s=zipf_s),
                mix=MixSpec(read_ratio=0.6),
            ),
            latency=LatencySpec(kind="uniform", low=0.5, high=1.5),
            seed=seed,
        )
        result = run_spec(spec)
        imbalance = result["imbalance"]
        rows.append(
            {
                "keys": kind,
                "shard_loads": [entry["operations"] for entry in result["shards"]],
                "hottest_shard": imbalance["hottest_shard"],
                "hottest_share": imbalance["hottest_share"],
                "imbalance_ratio": imbalance["imbalance_ratio"],
                "load_variance": imbalance["load_variance"],
                "load_cv": imbalance["load_cv"],
                "messages": result["messages"],
                "top1_key_share": result["workload"]["keys"]["top1_share"],
            }
        )
    return {
        "shards": shards,
        "fair_share": 1.0 / shards,
        "operations_per_run": operations * client_count,
        "rows": rows,
    }


@scenario(
    "sharded-hotspot-reassignment",
    description="Per-shard reassignment state in action: when the hot set "
    "rotates onto another shard and that shard's fast servers degrade, only "
    "its monitoring-driven WeightControllers re-point quorums — the cold "
    "shards keep their initial weights.",
    tags=("storage", "monitoring", "sharding"),
)
def sharded_hotspot_reassignment(
    shards: int = 2,
    n: int = 5,
    f: int = 1,
    shift_at: float = 20.0,
    slow_factor: float = 6.0,
    operations: int = 24,
    arrival_rate: float = 0.5,
    probe_interval: float = 6.0,
    control_rounds: int = 8,
    seed: int = 3,
) -> Dict[str, Any]:
    """Per-shard monitoring + controllers rebalance only the slowed hot shard."""
    if operations < 1:
        raise ConfigurationError(f"need at least one operation, got {operations}")
    if control_rounds < 1:
        raise ConfigurationError(f"need at least one control round, got {control_rounds}")
    if shards < 2:
        raise ConfigurationError(
            f"per-shard reassignment needs at least 2 shards, got {shards}"
        )
    space = 16
    before_keys = HotspotKeys(space=space, hot_fraction=0.25, hot_weight=0.9)
    after_keys = before_keys.shifted(8)

    def hot_shard(distribution: HotspotKeys) -> int:
        votes = [shard_for_key(key, shards) for key in distribution.hot_keys()]
        return max(set(votes), key=votes.count)

    hot_before = hot_shard(before_keys)
    hot_after = hot_shard(after_keys)
    # The infrastructure event is correlated with the workload shift: the two
    # "fast" servers of the shard the hotspot lands on degrade at shift_at.
    slowed = [shard_process_name(pid, hot_after) for pid in ("s1", "s2")]
    # Mild jitter (+-10%): inverse-latency targets stay within the controller
    # tolerance until the genuine slowdown kicks in, so any weight movement in
    # the result is attributable to the infrastructure event, not noise.
    latency = SlowdownLatency(
        UniformLatency(0.9, 1.1, seed=seed),
        slow=slowed,
        factor=slow_factor,
        start_at=shift_at,
    )
    cluster = build_sharded_cluster(
        SystemConfig.uniform(n, f=f),
        shards=shards,
        latency=latency,
        client_count=2,
        flavour="dynamic-weighted",
    )

    # One independent monitoring loop per shard: its own prober, its own
    # latency monitor, and one WeightController per shard server.  Nothing is
    # shared across shards — exactly the per-shard reassignment state the
    # sharded store exists to exercise.  The tolerance is wide enough that
    # latency *jitter* never triggers a transfer — only a genuine slowdown
    # does — so cold shards provably keep their initial weights.
    controllers_by_shard: Dict[int, List[WeightController]] = {
        group.index: install_monitoring_control(
            cluster.loop,
            cluster.network,
            group.servers,
            group.config,
            prober_pid=f"mon#{group.index}",
            rounds=control_rounds,
            interval=probe_interval,
            tolerance=0.2,
            max_step=0.3,
        )
        for group in cluster.shards
    }

    # Open-loop Poisson arrivals: issue times are absolute virtual times, so
    # the phase boundary at shift_at falls where it says it does and the
    # arrival stream does not bend when the slowed shard's latencies grow.
    generator = WorkloadGenerator(
        keys=before_keys,
        arrivals=PoissonArrivals(rate=arrival_rate),
        mix=OperationMix(read_ratio=0.6),
        phases=(Phase(start=shift_at, keys=after_keys),),
    )
    workload = generator.generate(tuple(cluster.clients), operations, seed=seed)
    report = run_workload(cluster, workload, max_time=10_000.0)
    cluster.loop.run()  # drain trailing control rounds and broadcast echoes

    # Per-shard load before/after the shift, bucketed by the operations'
    # *generated issue times* (a client queuing behind the slowed shard may
    # start an op later than its arrival, but where load lands was decided
    # at generation — and every generated op completes within max_time).
    loads_before = [0] * shards
    loads_after = [0] * shards
    for op in workload.operations:
        issued_at = op.issue_at if op.issue_at is not None else 0.0
        bucket = loads_before if issued_at < shift_at else loads_after
        bucket[shard_for_key(op.key, shards)] += 1

    shard_weights = cluster.shard_weights()
    transfers_by_shard = {
        index: sum(
            1
            for controller in controllers
            for step in controller.reports
            if step.attempted
        )
        for index, controllers in controllers_by_shard.items()
    }
    slowed_weight = sum(
        shard_weights[hot_after][pid] for pid in ("s1", "s2")
    )
    return {
        "operations": report.operations,
        "duration": report.duration,
        "messages": report.messages_sent,
        "hot_shard_before": hot_before,
        "hot_shard_after": hot_after,
        "slowed_servers": slowed,
        "shard_loads_before_shift": loads_before,
        "shard_loads_after_shift": loads_after,
        "imbalance": report.imbalance.as_dict() if report.imbalance else None,
        "shard_weights": {
            str(index): weights for index, weights in sorted(shard_weights.items())
        },
        "transfers_attempted_by_shard": {
            str(index): count for index, count in sorted(transfers_by_shard.items())
        },
        "slowed_servers_weight": slowed_weight,
        "workload": workload_stats(workload),
    }


@scenario(
    "hotspot-shift-monitoring",
    description="Monitoring-driven reassignment under a workload shift: when "
    "the hot set flips and s1/s2 degrade, latency probes feed the "
    "inverse-latency policy and per-server controllers push weight to the "
    "healthy servers.",
    tags=("workload", "monitoring", "storage"),
)
def hotspot_shift_monitoring(
    shift_at: float = 30.0,
    slow_factor: float = 6.0,
    operations: int = 18,
    probe_interval: float = 6.0,
    control_rounds: int = 8,
    seed: int = 3,
) -> Dict[str, Any]:
    """Close the monitoring loop on a single-register hotspot shift."""
    if operations < 1:
        raise ConfigurationError(f"need at least one operation, got {operations}")
    if control_rounds < 1:
        raise ConfigurationError(f"need at least one control round, got {control_rounds}")
    config = SystemConfig.uniform(5, f=1)
    latency = SlowdownLatency(
        UniformLatency(0.5, 1.5, seed=seed),
        slow=["s1", "s2"],
        factor=slow_factor,
        start_at=shift_at,
    )
    cluster = build_dynamic_cluster(config, latency=latency, client_count=2)
    controllers = install_monitoring_control(
        cluster.loop,
        cluster.network,
        cluster.servers,
        config,
        prober_pid="mon",
        rounds=control_rounds,
        interval=probe_interval,
        tolerance=0.05,
        max_step=0.3,
    )

    # The workload mirrors the infrastructure event: the hot set rotates at
    # shift_at, the moment s1/s2 degrade.
    generator = WorkloadGenerator(
        keys=HotspotKeys(space=16, hot_fraction=0.25, hot_weight=0.9),
        arrivals=ClosedLoopArrivals(mean_think_time=2.0),
        mix=OperationMix(read_ratio=0.6),
        phases=(
            Phase(start=shift_at, keys=HotspotKeys(space=16, hot_fraction=0.25,
                                                   hot_weight=0.9, offset=8)),
        ),
    )
    workload = generator.generate(tuple(cluster.clients), operations, seed=seed)
    report = run_workload(cluster, workload, max_time=10_000.0)
    cluster.loop.run()  # drain trailing control rounds and broadcast echoes

    before: List[float] = []
    after: List[float] = []
    for client in cluster.clients.values():
        for record in client.history:
            (before if record.completed_at < shift_at else after).append(record.latency)
    weights = {
        pid: weight
        # s1's local view: the same vantage point run_spec reports, so the
        # spec-file port of this scenario reproduces the result exactly.
        for pid, weight in sorted(cluster.servers["s1"].local_weights().items())
    }
    transfers_attempted = sum(
        1 for controller in controllers
        for step in controller.reports if step.attempted
    )
    return {
        "operations": report.operations,
        "duration": report.duration,
        "messages": report.messages_sent,
        "weights": weights,
        "shifted_weight": sum(weights[pid] for pid in ("s3", "s4", "s5")),
        "transfers_attempted": transfers_attempted,
        "latency_before_shift": summarize(before).median if before else None,
        "latency_after_shift": summarize(after).median if after else None,
        "workload": workload_stats(workload),
    }


# ---------------------------------------------------------------------------
# E9 — Section VIII: the relationship with asset transfer.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AssetTransferSpec(SpecSection):
    """The Section VIII comparator as a custom Spec v2 section.

    Asset transfer does not fit the cluster-plus-workload mold, so instead of
    forcing it into :class:`ScenarioSpec` this section demonstrates the other
    way the uniform protocol composes: any frozen dataclass inheriting
    :class:`~repro.experiments.sections.SpecSection` gets serialization,
    dotted-path flattening and validation for free and only supplies its own
    ``build``.  Three sub-experiments share the section's parameters:

    * a ring of 1-owner transfers (consensus-free, reliable broadcast only);
    * two conflicting k-owner overdraws (sequencer-ordered, resolved
      identically everywhere);
    * two pairwise weight reassignments that both keep every "balance"
      non-negative, of which the second is still rejected — the
      P-Integrity *distribution* constraint asset transfer lacks.
    """

    n: int = 5
    initial_balance: float = 10.0
    ring_amount: float = 3.0
    shared_balance: float = 10.0
    overdraw: float = 7.0
    reassign_n: int = 7
    reassign_f: int = 2
    reassign_delta: float = 0.4

    def _validate(self) -> None:
        if self.n < 3:
            raise ConfigurationError(
                "asset-transfer rings three transfers around s1..s3 and "
                f"needs n >= 3, got {self.n}"
            )
        if self.initial_balance < 0 or self.shared_balance < 0:
            raise ConfigurationError("asset-transfer balances must be non-negative")
        for label, amount in (("ring_amount", self.ring_amount),
                              ("overdraw", self.overdraw),
                              ("reassign_delta", self.reassign_delta)):
            if amount <= 0:
                raise ConfigurationError(f"{label} must be positive, got {amount}")

    def _run_one_asset(self) -> Dict[str, Any]:
        loop = SimLoop()
        network = Network(loop, ConstantLatency(1.0))
        ids = [f"s{i}" for i in range(1, self.n + 1)]
        servers = {
            pid: OneAssetServer(
                pid, network, ids, 1, {p: self.initial_balance for p in ids}
            )
            for pid in ids
        }

        async def run() -> List[Any]:
            return await gather(loop, [
                servers["s1"].transfer("s2", self.ring_amount),
                servers["s2"].transfer("s3", self.ring_amount),
                servers["s3"].transfer("s1", self.ring_amount),
            ])

        outcomes = loop.run_until_complete(run())
        loop.run()
        total = self.initial_balance * self.n
        totals = {pid: server.book.total() for pid, server in servers.items()}
        return {
            "applied": sum(1 for outcome in outcomes if outcome.applied),
            "mean_latency": sum(o.latency for o in outcomes) / len(outcomes),
            "total_conserved": all(abs(t - total) < 1e-9 for t in totals.values()),
            "messages": network.messages_sent,
        }

    def _run_k_asset(self) -> Dict[str, Any]:
        loop = SimLoop()
        network = Network(loop, ConstantLatency(1.0))
        ids = [f"s{i}" for i in range(1, 5)]
        Sequencer("seq", network, ids)
        balances = {"shared": self.shared_balance, "sink": 0.0}
        owners = {"shared": ids[:2], "sink": ids}
        replicas = {
            pid: KAssetReplica(pid, network, "seq", balances, owners) for pid in ids
        }

        async def run() -> List[Any]:
            # Two owners race to overdraw the shared account; the sequencer
            # orders them, so exactly one applies when 2*overdraw exceeds it.
            return await gather(loop, [
                replicas["s1"].transfer("shared", "sink", self.overdraw),
                replicas["s2"].transfer("shared", "sink", self.overdraw),
            ])

        outcomes = loop.run_until_complete(run())
        loop.run()
        final = {pid: replica.balance_of("shared") for pid, replica in replicas.items()}
        return {
            "applied": sum(1 for outcome in outcomes if outcome.applied),
            "consistent": len(set(final.values())) == 1,
            "mean_latency": sum(o.latency for o in outcomes) / len(outcomes),
            "final_shared_balance": final["s1"],
        }

    def _run_pairwise(self) -> Dict[str, Any]:
        loop = SimLoop()
        config = algorithm_config(self.reassign_n, self.reassign_f)
        oracle = OraclePairwiseReassignment(loop, config)

        async def run() -> Tuple[Any, Any]:
            # Both transfers keep every "balance" non-negative, yet the second
            # is rejected: it would give the f heaviest servers half the
            # voting power.
            first = await oracle.transfer("s3", "s3", "s1", self.reassign_delta)
            second = await oracle.transfer("s4", "s4", "s1", self.reassign_delta)
            return first, second

        first, second = loop.run_until_complete(run())
        return {
            "first_effective": first[0].delta != 0,
            "second_effective": second[0].delta != 0,
            "balances_non_negative": all(
                weight >= 0 for weight in oracle.current_weights().values()
            ),
        }

    def build(self) -> Dict[str, Any]:
        """Run all three sub-experiments and return their result blocks."""
        return {
            "one_asset": self._run_one_asset(),
            "k_asset": self._run_k_asset(),
            "pairwise": self._run_pairwise(),
        }


@scenario(
    "asset-transfer",
    description="Section VIII (E9): the same transfer workload through "
    "consensus-free 1-owner asset transfer and sequencer-ordered k-owner "
    "accounts, vs pairwise weight reassignment's extra P-Integrity "
    "distribution constraint.",
    tags=("paper", "asset-transfer", "baseline"),
)
def asset_transfer(
    n: int = 5,
    initial_balance: float = 10.0,
    ring_amount: float = 3.0,
    shared_balance: float = 10.0,
    overdraw: float = 7.0,
    reassign_n: int = 7,
    reassign_f: int = 2,
    reassign_delta: float = 0.4,
) -> Dict[str, Any]:
    """Run the Section VIII comparator (built on the AssetTransferSpec section)."""
    return AssetTransferSpec(
        n=n,
        initial_balance=initial_balance,
        ring_amount=ring_amount,
        shared_balance=shared_balance,
        overdraw=overdraw,
        reassign_n=reassign_n,
        reassign_f=reassign_f,
        reassign_delta=reassign_delta,
    ).validate().build()
