"""Declarative experiment subsystem: scenarios, sweeps, runners, results.

* :mod:`repro.experiments.sections` — the uniform :class:`SpecSection`
  protocol every spec section implements (``to_dict`` / ``from_dict`` /
  ``flatten`` / ``validate`` / ``build``).
* :mod:`repro.experiments.spec` — :class:`ScenarioSpec` and friends: a
  declarative description of cluster, workload, latency, monitoring, faults,
  transfers and seed, plus the generic driver :func:`run_spec` and the
  spec-file loader :func:`load_spec_file`.
* :mod:`repro.experiments.registry` — the global scenario registry, the
  :func:`scenario` decorator and :func:`register_spec`.
* :mod:`repro.experiments.sweep` — parameter-grid expansion into
  :class:`RunSpec` lists (seed lists are just another axis).
* :mod:`repro.experiments.executor` — serial / multiprocessing execution;
  results are identical for any worker count because every run is
  deterministic in virtual time.
* :mod:`repro.experiments.resilience` — journaled resume, per-run
  wall-clock watchdogs, bounded worker retry with quarantine, and graceful
  SIGINT/SIGTERM handling for long executions.
* :mod:`repro.experiments.results` — JSON/CSV sinks and baseline comparison.
* :mod:`repro.experiments.catalogue` — the built-in scenarios (the paper's
  headline experiments plus declarative storage workloads).
* :mod:`repro.experiments.cli` — the ``python -m repro`` entry point.
"""

from repro.experiments.executor import (
    RunResult,
    execute_many,
    execute_run,
    execute_run_captured,
    execute_stream,
)
from repro.experiments.resilience import (
    INTERRUPT_EXIT_CODE,
    GracefulInterrupt,
    Quarantine,
    ResiliencePolicy,
    RunJournal,
    StreamTelemetry,
    execute_stream_resilient,
    interruptible,
    journalable,
    run_digest,
)
from repro.experiments.registry import (
    FunctionScenario,
    Scenario,
    SpecScenario,
    all_scenarios,
    get_scenario,
    register,
    register_spec,
    scenario,
    scenario_names,
    unregister,
)
from repro.experiments.results import (
    compare_payloads,
    dumps_json,
    load_payload,
    load_quarantine,
    payload_entry,
    to_payload,
    write_csv,
    write_json,
    write_jsonl_line,
)
from repro.experiments.sections import SpecSection, unflatten
from repro.experiments.spec import (
    ArrivalSpec,
    ClusterSpec,
    FailureSpec,
    FaultSpec,
    KeySpec,
    LatencySpec,
    MixSpec,
    MonitoringSpec,
    PartitionSpec,
    PhaseSpec,
    PolicySpec,
    ScenarioSpec,
    TransferEvent,
    WorkloadSpec,
    flatten_spec,
    load_spec_file,
    run_spec,
)
from repro.experiments.sweep import RunSpec, Sweep, expand_grid, expand_points

__all__ = [
    # section protocol
    "SpecSection",
    "unflatten",
    # spec
    "ScenarioSpec",
    "ClusterSpec",
    "WorkloadSpec",
    "KeySpec",
    "ArrivalSpec",
    "MixSpec",
    "PhaseSpec",
    "LatencySpec",
    "MonitoringSpec",
    "PolicySpec",
    "FaultSpec",
    "FailureSpec",
    "PartitionSpec",
    "TransferEvent",
    "run_spec",
    "flatten_spec",
    "load_spec_file",
    # registry
    "Scenario",
    "FunctionScenario",
    "SpecScenario",
    "scenario",
    "register",
    "register_spec",
    "unregister",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    # sweep + executor
    "RunSpec",
    "Sweep",
    "expand_grid",
    "expand_points",
    "RunResult",
    "execute_run",
    "execute_run_captured",
    "execute_many",
    "execute_stream",
    # resilience
    "INTERRUPT_EXIT_CODE",
    "GracefulInterrupt",
    "Quarantine",
    "ResiliencePolicy",
    "RunJournal",
    "StreamTelemetry",
    "execute_stream_resilient",
    "interruptible",
    "journalable",
    "run_digest",
    # results
    "payload_entry",
    "to_payload",
    "dumps_json",
    "write_json",
    "write_jsonl_line",
    "write_csv",
    "load_payload",
    "load_quarantine",
    "compare_payloads",
]
