"""Result sinks (JSON / JSONL / CSV) and baseline comparison.

The canonical interchange format is the *payload*: one object per run
(``run_id``, ``scenario``, ``params``, ``result``), stored either as a JSON
array or as JSONL (one object per line, the streaming sink's format —
appendable run-by-run without holding a sweep in memory).  Payloads contain
no wall-clock timestamps — only virtual-time quantities and seeds — so two
executions of the same sweep are byte-identical, which makes them usable as
checked-in baselines: run a sweep, save the JSON, and later ``python -m
repro compare`` a fresh run against it.  :func:`load_payload` sniffs the
format, and :func:`compare_payloads` matches runs by ``run_id``, so array
and JSONL payloads compare interchangeably regardless of completion order.

The CSV sink flattens nested result dicts into dotted/indexed columns
(``result.read_latency.median``, ``result.rows[2].speedup``) for
spreadsheet-style analysis.
"""

from __future__ import annotations

import csv
import json
import math
import os
from numbers import Number
from typing import Any, Dict, Iterable, List, Mapping, Sequence, TextIO

from repro.experiments.executor import RunResult

__all__ = [
    "payload_entry",
    "to_payload",
    "dumps_json",
    "write_json",
    "write_jsonl_line",
    "load_payload",
    "load_quarantine",
    "write_csv",
    "flatten_values",
    "compare_payloads",
]

Payload = List[Dict[str, Any]]


def payload_entry(result: RunResult) -> Dict[str, Any]:
    """The canonical payload object for one run."""
    return {
        "run_id": result.run_id,
        "scenario": result.scenario,
        "params": dict(result.params),
        "result": result.result,
    }


def to_payload(results: Iterable[RunResult]) -> Payload:
    """The canonical payload (one object per run) for a result collection."""
    return [payload_entry(result) for result in results]


def dumps_json(results: Iterable[RunResult]) -> str:
    """Serialise results as a stable (indented, key-sorted) JSON array."""
    return json.dumps(to_payload(results), indent=2, sort_keys=True)


def write_json(results: Iterable[RunResult], path: str) -> None:
    """Write the JSON-array payload to ``path`` (the ``--json`` sink)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_json(results))
        handle.write("\n")


def write_jsonl_line(result: RunResult, handle: TextIO) -> None:
    """Append one run to an open JSONL sink and flush (chunked streaming)."""
    handle.write(json.dumps(payload_entry(result), sort_keys=True))
    handle.write("\n")
    handle.flush()


def load_payload(path: str) -> Payload:
    """Load a payload, sniffing JSON-array vs JSONL from the first character."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped or stripped.startswith("["):
        return json.loads(text)
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def load_quarantine(path: str) -> Payload:
    """Load a quarantine sidecar written by a resilient sweep or campaign.

    Each record carries ``index``, ``run_id``, ``scenario``, ``attempts``,
    the final ``error``, an optional ``traceback`` and a ``spec`` block
    (``scenario`` plus the exact parameter overrides) — everything needed
    to re-run the poisoned configuration by hand.  A missing file is an
    empty quarantine (the sidecar is only created when something fails
    every attempt).
    """
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def flatten_values(value: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts/lists into dotted / ``[i]``-indexed scalar leaves."""
    flat: Dict[str, Any] = {}
    if isinstance(value, Mapping):
        for key in sorted(value):
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_values(value[key], child_prefix))
    elif isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        for index, item in enumerate(value):
            flat.update(flatten_values(item, f"{prefix}[{index}]"))
    else:
        flat[prefix] = value
    return flat


def write_csv(results: Iterable[RunResult], path: str) -> None:
    """One row per run; params and flattened scalar result leaves as columns."""
    rows: List[Dict[str, Any]] = []
    for result in results:
        row: Dict[str, Any] = {"run_id": result.run_id, "scenario": result.scenario}
        for key, value in result.params:
            row[f"param.{key}"] = value
        for key, value in flatten_values(result.result, "result").items():
            row[key] = value
        rows.append(row)
    columns: List[str] = ["run_id", "scenario"]
    seen = set(columns)
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        writer.writerows(rows)


def _values_differ(current: Any, baseline: Any, rel_tol: float, abs_tol: float) -> bool:
    if isinstance(current, bool) or isinstance(baseline, bool):
        return current is not baseline
    if isinstance(current, Number) and isinstance(baseline, Number):
        if math.isnan(float(current)) and math.isnan(float(baseline)):
            return False
        return not math.isclose(
            float(current), float(baseline), rel_tol=rel_tol, abs_tol=abs_tol
        )
    return current != baseline


def compare_payloads(
    current: Payload,
    baseline: Payload,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
) -> List[Dict[str, Any]]:
    """Diff two payloads run-by-run, field-by-field.

    Runs are matched on ``run_id``.  Returns one dict per difference:
    ``{"run_id", "kind", ...}`` where ``kind`` is ``missing-run`` /
    ``extra-run`` / ``field`` (with ``field``, ``current``, ``baseline``).
    An empty list means the payloads agree within tolerance.
    """
    current_by_id = {entry["run_id"]: entry for entry in current}
    baseline_by_id = {entry["run_id"]: entry for entry in baseline}
    diffs: List[Dict[str, Any]] = []
    for run_id in sorted(baseline_by_id.keys() - current_by_id.keys()):
        diffs.append({"run_id": run_id, "kind": "missing-run"})
    for run_id in sorted(current_by_id.keys() - baseline_by_id.keys()):
        diffs.append({"run_id": run_id, "kind": "extra-run"})
    for run_id in sorted(current_by_id.keys() & baseline_by_id.keys()):
        current_flat = flatten_values(current_by_id[run_id]["result"], "result")
        baseline_flat = flatten_values(baseline_by_id[run_id]["result"], "result")
        for field in sorted(current_flat.keys() | baseline_flat.keys()):
            marker = object()
            current_value = current_flat.get(field, marker)
            baseline_value = baseline_flat.get(field, marker)
            if current_value is marker or baseline_value is marker:
                diffs.append(
                    {
                        "run_id": run_id,
                        "kind": "field",
                        "field": field,
                        "current": None if current_value is marker else current_value,
                        "baseline": None if baseline_value is marker else baseline_value,
                    }
                )
            elif _values_differ(current_value, baseline_value, rel_tol, abs_tol):
                diffs.append(
                    {
                        "run_id": run_id,
                        "kind": "field",
                        "field": field,
                        "current": current_value,
                        "baseline": baseline_value,
                    }
                )
    return diffs
