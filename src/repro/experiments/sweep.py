"""Parameter sweeps: expand grids into concrete, picklable run specs.

A sweep is a cartesian product over named axes.  Axis names are scenario
parameters — keyword arguments for function scenarios, dotted spec paths
(``cluster.n``, ``seed``) for declarative ones.  Seed lists are just another
axis (``{"seed": [0, 1, 2]}``), which is how the paper-style "m runs per
configuration" replication is expressed.

Expansion is fully deterministic: axes are ordered by name, values keep
their given order, and every produced :class:`RunSpec` carries its
parameters as a sorted tuple of pairs — hashable, picklable, and stable
across processes, which the parallel executor and the JSON sinks rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["RunSpec", "expand_grid"]


@dataclass(frozen=True)
class RunSpec:
    """One concrete run: a scenario name plus exact parameter values."""

    scenario: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def run_id(self) -> str:
        """A stable human-readable identifier, unique within a sweep."""
        if not self.params:
            return self.scenario
        inner = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.scenario}[{inner}]"


def expand_grid(
    scenario: str,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    base: Optional[Mapping[str, Any]] = None,
) -> List[RunSpec]:
    """Expand ``grid`` axes (plus fixed ``base`` params) into runs.

    ``grid`` maps axis names to value lists; ``base`` holds parameters fixed
    across the whole sweep (a grid axis with the same name wins).  With no
    grid at all the result is the single run described by ``base``.
    """
    fixed = dict(base or {})
    axes: List[Tuple[str, List[Any]]] = []
    for name in sorted(grid or {}):
        values = (grid or {})[name]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise ConfigurationError(
                f"sweep axis {name!r} must be a list/tuple of values, got {values!r}"
            )
        if not values:
            raise ConfigurationError(f"sweep axis {name!r} has no values")
        axes.append((name, list(values)))
        fixed.pop(name, None)

    runs: List[RunSpec] = []
    for combo in itertools.product(*(values for _, values in axes)):
        params = dict(fixed)
        params.update({name: value for (name, _), value in zip(axes, combo)})
        runs.append(RunSpec(scenario=scenario, params=tuple(sorted(params.items()))))
    return runs
