"""Parameter sweeps: expand grids, point lists and samples into run specs.

A sweep is built from named axes.  Axis names are scenario parameters —
keyword arguments for function scenarios, dotted spec paths (``cluster.n``,
``workload.keys.zipf_s``, ``seed``) for declarative ones.  Seed lists are
just another axis (``{"seed": [0, 1, 2]}``), which is how the paper-style
"m runs per configuration" replication is expressed.

Three expansion modes:

* :func:`expand_grid` / :meth:`Sweep.runs` — the full cartesian product;
* :func:`expand_points` — an explicit list of parameter points (no product);
* :meth:`Sweep.sample` — ``n`` points drawn from the product with a seeded
  RNG, for high-dimensional spaces where the full grid is unaffordable.
  ``method="uniform"`` (the default) draws distinct points uniformly without
  replacement; ``method="lhs"`` draws a Latin-hypercube sample whose
  *marginals* are stratified — every axis's value list is covered as evenly
  as ``n`` allows, which uniform sampling only achieves in expectation.

Expansion is fully deterministic: axes are ordered by name, values keep
their given order, sampled points come out in grid order, and every produced
:class:`RunSpec` carries its parameters as a sorted tuple of pairs —
hashable, picklable, and stable across processes, which the parallel
executor and the JSON sinks rely on.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["RunSpec", "Sweep", "expand_grid", "expand_points"]


@dataclass(frozen=True)
class RunSpec:
    """One concrete run: a scenario name plus exact parameter values."""

    scenario: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def params_dict(self) -> Dict[str, Any]:
        """The parameters as a plain dict (the form scenarios execute with)."""
        return dict(self.params)

    @property
    def run_id(self) -> str:
        """A stable human-readable identifier, unique within a sweep."""
        if not self.params:
            return self.scenario
        inner = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.scenario}[{inner}]"


def _normalise_axes(
    grid: Optional[Mapping[str, Sequence[Any]]],
) -> List[Tuple[str, List[Any]]]:
    axes: List[Tuple[str, List[Any]]] = []
    for name in sorted(grid or {}):
        values = (grid or {})[name]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise ConfigurationError(
                f"sweep axis {name!r} must be a list/tuple of values, got {values!r}"
            )
        if not values:
            raise ConfigurationError(f"sweep axis {name!r} has no values")
        axes.append((name, list(values)))
    return axes


@dataclass(frozen=True)
class Sweep:
    """A scenario plus normalised axes and fixed base parameters.

    Construct with :meth:`Sweep.of`; then :meth:`runs` expands the full
    cartesian grid and :meth:`sample` draws ``n`` distinct points from it.
    """

    scenario: str
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    base: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(
        cls,
        scenario: str,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        base: Optional[Mapping[str, Any]] = None,
    ) -> "Sweep":
        """Normalise ``grid`` axes and fixed ``base`` params into a sweep.

        Axes are sorted by name; a grid axis and a base parameter with the
        same name resolve in favour of the axis (the sweep wins).
        """
        axes = _normalise_axes(grid)
        fixed = dict(base or {})
        for name, _ in axes:
            fixed.pop(name, None)  # a grid axis with the same name wins
        return cls(
            scenario=scenario,
            axes=tuple((name, tuple(values)) for name, values in axes),
            base=tuple(sorted(fixed.items())),
        )

    @property
    def size(self) -> int:
        """Number of points in the full cartesian grid (1 with no axes)."""
        return math.prod(len(values) for _, values in self.axes)

    def _point(self, index: int) -> Dict[str, Any]:
        """Decode grid point ``index`` (last axis varies fastest, as in runs())."""
        params = dict(self.base)
        for name, values in reversed(self.axes):
            index, offset = divmod(index, len(values))
            params[name] = values[offset]
        return params

    def _run(self, params: Mapping[str, Any]) -> RunSpec:
        return RunSpec(scenario=self.scenario, params=tuple(sorted(params.items())))

    def runs(self) -> List[RunSpec]:
        """The full cartesian grid, in deterministic axis-sorted order."""
        result: List[RunSpec] = []
        for combo in itertools.product(*(values for _, values in self.axes)):
            params = dict(self.base)
            params.update({name: value for (name, _), value in zip(self.axes, combo)})
            result.append(self._run(params))
        return result

    def sample(self, n: int, seed: int = 0, method: str = "uniform") -> List[RunSpec]:
        """``n`` grid points drawn with ``seed``; ``method`` picks the design.

        ``uniform`` draws distinct points without replacement; ``lhs`` draws
        a Latin-hypercube sample (see :meth:`sample_lhs`).  Either way the
        chosen points are returned in grid order (so serial and parallel
        executions line up run-for-run); ``n >= size`` degenerates to the
        full grid.  The grid itself is never materialised — points are
        decoded from sampled indices — so huge spaces sample cheaply.
        """
        if method == "lhs":
            return self.sample_lhs(n, seed=seed)
        if method != "uniform":
            raise ConfigurationError(
                f"unknown sample method {method!r}; expected uniform or lhs"
            )
        if n < 1:
            raise ConfigurationError(f"sample size must be at least 1, got {n}")
        total = self.size
        if n >= total:
            return self.runs()
        rng = random.Random(seed)
        indices = sorted(rng.sample(range(total), n))
        return [self._run(self._point(index)) for index in indices]

    def sample_lhs(self, n: int, seed: int = 0) -> List[RunSpec]:
        """A seeded Latin-hypercube sample of ``n`` points, in grid order.

        Each axis's value list is cut into ``n`` equal strata (value index
        ``(row * len(values)) // n``) and the strata are permuted per axis
        independently, so every axis's marginal is covered as evenly as
        ``n`` allows — an axis with ``m <= n`` values is guaranteed to have
        every value appear, which uniform sampling only achieves in
        expectation.  Rows that collide on *every* axis collapse, so the
        result can hold slightly fewer than ``n`` points; ``n >= size``
        degenerates to the full grid.
        """
        if n < 1:
            raise ConfigurationError(f"sample size must be at least 1, got {n}")
        if n >= self.size:
            return self.runs()
        rng = random.Random(seed)
        offset_columns: List[List[int]] = []
        for _, values in self.axes:  # axes are sorted by name; order is stable
            offsets = [(row * len(values)) // n for row in range(n)]
            rng.shuffle(offsets)
            offset_columns.append(offsets)
        indices = []
        for row in range(n):
            index = 0
            for (_, values), offsets in zip(self.axes, offset_columns):
                index = index * len(values) + offsets[row]
            indices.append(index)
        return [self._run(self._point(index)) for index in sorted(set(indices))]


def expand_grid(
    scenario: str,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    base: Optional[Mapping[str, Any]] = None,
) -> List[RunSpec]:
    """Expand ``grid`` axes (plus fixed ``base`` params) into runs.

    ``grid`` maps axis names to value lists; ``base`` holds parameters fixed
    across the whole sweep (a grid axis with the same name wins).  With no
    grid at all the result is the single run described by ``base``.
    """
    return Sweep.of(scenario, grid=grid, base=base).runs()


def expand_points(
    scenario: str,
    points: Sequence[Mapping[str, Any]],
    base: Optional[Mapping[str, Any]] = None,
) -> List[RunSpec]:
    """One run per explicit parameter point (no cartesian product).

    Each point is a mapping layered over ``base``; points keep their given
    order.  This is the escape hatch for non-rectangular sweeps (e.g. the
    paper's hand-picked configurations).
    """
    runs: List[RunSpec] = []
    for point in points:
        if not isinstance(point, Mapping):
            raise ConfigurationError(
                f"sweep point must be a mapping of parameters, got {point!r}"
            )
        params = dict(base or {})
        params.update(point)
        runs.append(RunSpec(scenario=scenario, params=tuple(sorted(params.items()))))
    if not runs:
        raise ConfigurationError("expand_points needs at least one point")
    return runs
