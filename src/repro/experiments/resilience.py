"""Resilient execution: journaled resume, watchdogs, retry, quarantine.

The executor guarantees serial == parallel results; this module makes long
executions survive the failures they study, without weakening that
guarantee.  Four cooperating pieces:

* :class:`RunJournal` — an append-only JSONL record of completed runs keyed
  by :func:`run_digest`, a stable digest of ``(scenario, params)``.  Sweeps
  and chaos campaigns append as results land; a resumed execution skips the
  journaled configurations and reassembles a final report byte-identical to
  an uninterrupted run (results are deterministic, so a journaled result
  *is* the result a re-run would produce).
* a **per-run wall-clock watchdog** (:attr:`ResiliencePolicy.run_timeout`)
  — a run that hangs past the deadline is killed (its worker process is
  SIGKILLed and respawned), recorded as a deterministic
  ``{"error": {"type": "WatchdogTimeout", ...}}`` result, and the stream
  keeps draining.
* **bounded retry with exponential backoff**
  (:attr:`ResiliencePolicy.max_attempts`) — a worker process that dies
  (SIGKILLed, OOM-killed, segfaulted) loses its in-flight run; the run is
  re-dispatched to a respawned worker after a backoff, at most
  ``max_attempts`` times.  Configurations that fail every attempt are
  *quarantined* to a JSONL sidecar (:class:`Quarantine`) and surface as
  deterministic ``{"error": {"type": "WorkerCrashed", ...}}`` results, so
  the campaign degrades gracefully instead of dying.
* :func:`interruptible` — SIGINT/SIGTERM handlers that raise
  :class:`GracefulInterrupt`, letting the CLI flush sinks and exit with
  :data:`INTERRUPT_EXIT_CODE` so CI can distinguish "interrupted,
  resumable" from "failed".

The off-path is inert: with no journal and a default policy,
:func:`execute_stream_resilient` delegates straight to
:func:`~repro.experiments.executor.execute_stream` (same warm pool, same
bytes).  With a policy that needs kill-capable workers (watchdog or retry),
execution moves to a private pipe-managed worker pool — results are still
bit-identical because every run is deterministic in virtual time; only the
execution vehicle changes.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import connection
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.errors import ConfigurationError, WorkerError
from repro.experiments.executor import (
    _EXECUTORS,
    _pool_context,
    RunResult,
    execute_stream,
)
from repro.experiments.sweep import RunSpec

__all__ = [
    "INTERRUPT_EXIT_CODE",
    "GracefulInterrupt",
    "Quarantine",
    "ResiliencePolicy",
    "RunJournal",
    "StreamTelemetry",
    "execute_stream_resilient",
    "interruptible",
    "journalable",
    "run_digest",
]

ProgressCallback = Callable[[int, int], None]

#: Process exit status for "interrupted but resumable" (journal flushed),
#: distinct from 0 (ok), 1 (diff/violations) and 2 (error).
INTERRUPT_EXIT_CODE = 3


def run_digest(run: RunSpec) -> str:
    """A stable content digest of ``(scenario, params)`` for journal keys.

    Values are keyed by ``repr`` so ``1``, ``1.0``, ``"1"`` and ``(1,)`` all
    digest differently; the digest is independent of parameter order,
    process, platform and ``PYTHONHASHSEED``.
    """
    material = json.dumps(
        [run.scenario,
         [[key, repr(value)]
          for key, value in sorted(run.params, key=lambda item: item[0])]],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The run journal
# ---------------------------------------------------------------------------


class RunJournal:
    """An append-only JSONL journal of completed runs, keyed by digest.

    Line 1 is a header record ``{"journal": {...}}`` identifying what the
    journal belongs to; every later line is an entry record carrying a
    ``"digest"`` key.  Records are flushed line-by-line as they are written,
    so a SIGKILLed process loses at most the line it was in the middle of —
    and the loader tolerates exactly that: an undecodable *final* line is
    discarded, an undecodable earlier line is an error.

    ``resume=True`` loads an existing journal (validating its header against
    ``header``) and appends to it; a missing file starts fresh, so blind
    ``--resume`` invocations are safe.  ``resume=False`` truncates.
    """

    def __init__(self, path: str, header: Dict[str, Any],
                 resume: bool = False) -> None:
        self.path = path
        self.header = _json_roundtrip(header)
        self.entries: Dict[str, Dict[str, Any]] = {}
        if resume and os.path.exists(path):
            self._load()
            self._handle = open(path, "a", encoding="utf-8")
        else:
            self._handle = open(path, "w", encoding="utf-8")
            self._write({"journal": self.header})

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        records: List[Dict[str, Any]] = []
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    continue  # the interrupted write; everything before is whole
                raise ConfigurationError(
                    f"journal {self.path}: undecodable record on line "
                    f"{number + 1} (only the final line may be partial)"
                )
        if not records or "journal" not in records[0]:
            raise ConfigurationError(
                f"journal {self.path}: missing header record on line 1"
            )
        found = records[0]["journal"]
        if found != self.header:
            raise ConfigurationError(
                f"journal {self.path} was written by a different "
                f"configuration: found {json.dumps(found, sort_keys=True)}, "
                f"expected {json.dumps(self.header, sort_keys=True)}"
            )
        for record in records[1:]:
            digest = record.get("digest")
            if digest is not None:
                self.entries[digest] = record  # re-runs: last write wins

    def _write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The journaled record for ``digest``, or ``None``."""
        return self.entries.get(digest)

    def record(self, digest: str, record: Dict[str, Any]) -> None:
        """Append one completed-run record (flushed immediately)."""
        entry = dict(record)
        entry["digest"] = digest
        entry = _json_roundtrip(entry)
        self.entries[digest] = entry
        self._write(entry)

    def record_summary(self, summary: Dict[str, Any]) -> None:
        """Append a non-entry summary record (ignored by the loader)."""
        self._write({"summary": _json_roundtrip(summary)})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _json_roundtrip(value: Any) -> Any:
    """Normalise to what a journal reader would see (tuples become lists)."""
    return json.loads(json.dumps(value, sort_keys=True))


# ---------------------------------------------------------------------------
# Policy, telemetry, quarantine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResiliencePolicy:
    """Watchdog and retry knobs for one execution stream.

    The default policy is inert (no timeout, single attempt):
    :func:`execute_stream_resilient` then delegates to the plain executor.
    ``run_timeout`` is *wall-clock* seconds per run; ``max_attempts`` counts
    total dispatches of one run across worker deaths.  Backoff before the
    ``k``-th retry is ``backoff_base * backoff_factor**(k-1)``, capped at
    ``backoff_max`` — wall-clock pacing only, results are unaffected.
    """

    run_timeout: Optional[float] = None
    max_attempts: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def validate(self) -> None:
        if self.run_timeout is not None and self.run_timeout <= 0:
            raise ConfigurationError(
                f"run_timeout must be positive, got {self.run_timeout!r}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )

    @property
    def needs_pool(self) -> bool:
        """Whether the policy needs kill-capable (pipe-managed) workers."""
        return self.run_timeout is not None or self.max_attempts > 1

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before re-dispatching after ``attempt`` failures."""
        delay = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        return min(delay, self.backoff_max)

    def as_dict(self) -> Dict[str, Any]:
        """The policy knobs for report metadata (deterministic)."""
        return {"run_timeout": self.run_timeout,
                "max_attempts": self.max_attempts}


@dataclass
class StreamTelemetry:
    """Counters a resilient stream accumulates, for progress lines and
    report metadata.

    ``resumed`` is deliberately excluded from :meth:`as_dict`: a resumed run
    and an uninterrupted run must produce byte-identical reports, and only
    the former has a nonzero resumed count.  It still shows in
    :meth:`suffix` (stderr is not part of the report).
    """

    resumed: int = 0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"retries": self.retries, "timeouts": self.timeouts,
                "quarantined": self.quarantined}

    def suffix(self) -> str:
        """A progress-line suffix like `` (resumed 3, retries 1)``; empty
        while every counter is zero, so undegraded output is unchanged."""
        parts = [f"{name} {value}" for name, value in (
            ("resumed", self.resumed), ("retries", self.retries),
            ("timeouts", self.timeouts), ("quarantined", self.quarantined),
        ) if value]
        return f" ({', '.join(parts)})" if parts else ""


class Quarantine:
    """JSONL sidecar for configurations that exhausted every attempt.

    The file is created lazily on the first quarantined config, so a clean
    run leaves nothing behind.  Each record carries everything needed to
    reproduce the run by hand: the config index, run id, scenario, the
    exact parameter overrides (``spec``), the attempt count and the final
    error (``traceback`` is ``null`` for SIGKILLed workers — there is no
    Python frame to collect).
    """

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self.count = 0
        self._handle = None

    def record(self, index: int, run: RunSpec, attempts: int,
               error: Dict[str, Any],
               traceback_text: Optional[str] = None) -> None:
        self.count += 1
        if self.path is None:
            return
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        entry = {
            "index": index,
            "run_id": run.run_id,
            "scenario": run.scenario,
            "attempts": attempts,
            "error": error,
            "traceback": traceback_text,
            "spec": {"scenario": run.scenario, "params": run.params_dict},
        }
        self._handle.write(json.dumps(entry, sort_keys=True, default=repr))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()


# ---------------------------------------------------------------------------
# Graceful interruption
# ---------------------------------------------------------------------------


class GracefulInterrupt(BaseException):
    """SIGINT/SIGTERM, re-raised so sinks flush before a distinct exit.

    A ``BaseException`` (like :class:`KeyboardInterrupt`) so that
    error-capturing paths never swallow it: an interrupt must always reach
    the CLI, which exits with :data:`INTERRUPT_EXIT_CODE`.
    """

    def __init__(self, signum: int) -> None:
        self.signum = signum
        super().__init__(self.signal_name)

    @property
    def signal_name(self) -> str:
        try:
            return signal.Signals(self.signum).name
        except ValueError:  # pragma: no cover - unknown platform signal
            return f"signal {self.signum}"


@contextmanager
def interruptible() -> Iterator[None]:
    """Convert SIGINT/SIGTERM into :class:`GracefulInterrupt` in this block.

    Handlers are installed only on the main thread (Python restricts signal
    handling to it); elsewhere the context is a no-op.  Previous handlers
    are restored on exit either way.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum: int, frame: Any) -> None:
        raise GracefulInterrupt(signum)

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, _raise)
    try:
        yield
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


# ---------------------------------------------------------------------------
# The kill-capable worker pool
# ---------------------------------------------------------------------------


def _worker_main(conn: Any, execute_indexed: Any) -> None:
    """Worker loop: receive ``(index, run)`` tasks, send back results.

    Runs until the parent closes the pipe or sends ``None``.  Exceptions a
    run raises are shipped back as pickled objects when possible (so the
    parent re-raises the original type) and as ``(name, text)`` otherwise.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            return
        index, run = task
        try:
            message: Tuple[Any, ...] = ("ok", execute_indexed((index, run)))
        except BaseException as exc:  # shipped to the parent, never lost
            message = ("raise", index, exc)
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            return
        except Exception:  # the exception object itself did not pickle
            index = task[0]
            exc = message[2]
            conn.send(("raise-text", index, type(exc).__name__, str(exc)))


class _PoolWorker:
    """One kill-capable worker process plus its duplex pipe and state."""

    def __init__(self, ctx: Any, execute_indexed: Any) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn, execute_indexed),
            daemon=True, name="repro-resilient-worker",
        )
        self.process.start()
        child_conn.close()
        self.task: Optional[Tuple[int, RunSpec]] = None
        self.deadline: Optional[float] = None

    def assign(self, task: Tuple[int, RunSpec],
               run_timeout: Optional[float]) -> None:
        self.conn.send(task)
        self.task = task
        self.deadline = (
            time.monotonic() + run_timeout if run_timeout is not None else None
        )

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def stop(self) -> None:
        """Polite shutdown for idle workers; kill() for busy/hung ones."""
        if self.task is not None:
            self.kill()
            return
        try:
            self.conn.send(None)
            self.conn.close()
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.kill()
            self.process.join()


def _error_result(run: RunSpec, error: Dict[str, Any]) -> RunResult:
    """A captured-error result shaped like :func:`execute_run_captured`'s."""
    return RunResult(
        scenario=run.scenario,
        params=run.params,
        result={"scenario": run.scenario, "error": error},
    )


def _watchdog_result(run: RunSpec, run_timeout: float) -> RunResult:
    # Deterministic fields only: the configured timeout, not the measured
    # wall time, so journaled/reported bytes are stable.
    return _error_result(run, {
        "type": "WatchdogTimeout",
        "message": (f"run exceeded the per-run watchdog timeout "
                    f"({run_timeout:g}s wall-clock) and was killed"),
        "run_timeout": run_timeout,
    })


def _quarantine_result(run: RunSpec, attempts: int) -> RunResult:
    return _error_result(run, {
        "type": "WorkerCrashed",
        "message": (f"worker process died executing this run "
                    f"{attempts} time(s); configuration quarantined"),
        "attempts": attempts,
        "quarantined": True,
    })


def _execute_resilient_pool(
    pending: List[Tuple[int, RunSpec]],
    workers: int,
    capture_errors: bool,
    stable_stack: bool,
    policy: ResiliencePolicy,
    telemetry: StreamTelemetry,
    quarantine: Quarantine,
) -> Iterator[Tuple[int, RunResult]]:
    """Run ``pending`` on kill-capable workers; yield in completion order.

    Every input index is yielded exactly once: as its result, as a
    ``WatchdogTimeout`` error (hung past ``policy.run_timeout``) or as a
    ``WorkerCrashed`` error (worker died ``policy.max_attempts`` times —
    also recorded in ``quarantine``).  Worker deaths re-dispatch the lost
    run after an exponential backoff; the pool respawns workers as needed
    and the stream keeps draining throughout.
    """
    _, execute_indexed = _EXECUTORS[(capture_errors, stable_stack)]
    ctx = _pool_context()
    queue: deque = deque(pending)
    waiting: List[Tuple[float, int, RunSpec]] = []  # (ready_at, index, run)
    attempts: Dict[int, int] = {}
    pool = [_PoolWorker(ctx, execute_indexed)
            for _ in range(max(1, min(workers, len(pending))))]

    def fail(worker: _PoolWorker) -> Iterator[Tuple[int, RunResult]]:
        """Handle a dead worker: respawn it, retry or quarantine its run."""
        index, run = worker.task  # type: ignore[misc]
        worker.kill()
        pool[pool.index(worker)] = _PoolWorker(ctx, execute_indexed)
        made = attempts.get(index, 0) + 1
        attempts[index] = made
        if made >= policy.max_attempts:
            telemetry.quarantined += 1
            result = _quarantine_result(run, made)
            quarantine.record(index, run, made,
                              dict(result.result["error"]))
            yield index, result
        else:
            telemetry.retries += 1
            heapq.heappush(
                waiting, (time.monotonic() + policy.backoff(made), index, run)
            )

    try:
        while queue or waiting or any(w.task is not None for w in pool):
            now = time.monotonic()
            while waiting and waiting[0][0] <= now:
                _, index, run = heapq.heappop(waiting)
                queue.append((index, run))
            for worker in pool:
                if worker.task is None and queue:
                    task = queue.popleft()
                    try:
                        worker.assign(task, policy.run_timeout)
                    except (BrokenPipeError, OSError):
                        # Found dead at assignment (died after its last
                        # result): respawn and requeue, not an attempt.
                        worker.kill()
                        pool[pool.index(worker)] = _PoolWorker(
                            ctx, execute_indexed
                        )
                        queue.appendleft(task)

            busy = {worker.conn: worker for worker in pool
                    if worker.task is not None}
            if not busy:
                if waiting:
                    time.sleep(
                        max(0.0, min(waiting[0][0] - time.monotonic(), 0.05))
                    )
                continue
            tick = 0.1
            deadlines = [w.deadline for w in busy.values()
                         if w.deadline is not None]
            if deadlines:
                tick = min(tick, max(0.0, min(deadlines) - time.monotonic()))
            if waiting:
                tick = min(tick, max(0.0, waiting[0][0] - time.monotonic()))
            for conn in connection.wait(list(busy), timeout=tick):
                worker = busy[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    yield from fail(worker)
                    continue
                worker.task = None
                worker.deadline = None
                if message[0] == "ok":
                    index, result = message[1]
                    yield index, result
                elif message[0] == "raise":
                    raise message[2]
                else:  # "raise-text": the original exception did not pickle
                    raise WorkerError(f"{message[2]}: {message[3]}")
            now = time.monotonic()
            for worker in list(pool):
                if (worker.task is not None and worker.deadline is not None
                        and now >= worker.deadline):
                    index, run = worker.task
                    worker.kill()
                    pool[pool.index(worker)] = _PoolWorker(
                        ctx, execute_indexed
                    )
                    telemetry.timeouts += 1
                    yield index, _watchdog_result(run, policy.run_timeout)
    finally:
        for worker in pool:
            worker.stop()


# ---------------------------------------------------------------------------
# The resilient stream
# ---------------------------------------------------------------------------


def execute_stream_resilient(
    runs: Iterable[RunSpec],
    workers: int = 1,
    progress: Optional[ProgressCallback] = None,
    capture_errors: bool = False,
    stable_stack: bool = False,
    policy: Optional[ResiliencePolicy] = None,
    journal: Optional[RunJournal] = None,
    quarantine: Optional[Quarantine] = None,
    telemetry: Optional[StreamTelemetry] = None,
) -> Iterator[Tuple[int, RunResult]]:
    """:func:`execute_stream` with journaled resume, watchdog and retry.

    With no journal and an inert policy this *is* ``execute_stream`` — the
    call delegates unconditionally, so the off-path shares the warm pool
    and its exact semantics.  Otherwise:

    * runs whose digest is already journaled yield their journaled result
      first (in input order), without executing — ``telemetry.resumed``
      counts them;
    * remaining runs execute through the plain executor, or through the
      kill-capable pool when the policy needs a watchdog or retries;
    * every fresh result is journaled as it lands (quarantined and
      timed-out runs are **not** journaled: a resume retries them).

    Every input index is yielded exactly once and ``progress(done, total)``
    fires after each, journaled or fresh — same contract as the plain
    stream, so sinks and reports reassemble identically.
    """
    policy = policy or ResiliencePolicy()
    policy.validate()
    if journal is None and not policy.needs_pool:
        yield from execute_stream(
            runs, workers=workers, progress=progress,
            capture_errors=capture_errors, stable_stack=stable_stack,
        )
        return
    run_list = list(runs)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    telemetry = telemetry if telemetry is not None else StreamTelemetry()
    quarantine = quarantine if quarantine is not None else Quarantine(None)
    total = len(run_list)
    done = 0

    def emit(index: int, run: RunSpec, result: RunResult,
             fresh: bool) -> Tuple[int, RunResult]:
        nonlocal done
        if fresh and journal is not None and journalable(result):
            journal.record(run_digest(run), {
                "index": index,
                "run_id": run.run_id,
                "scenario": run.scenario,
                "params": {key: repr(value) for key, value in run.params},
                "result": result.result,
            })
        done += 1
        if progress is not None:
            progress(done, total)
        return index, result

    pending: List[Tuple[int, RunSpec]] = []
    for index, run in enumerate(run_list):
        record = journal.get(run_digest(run)) if journal is not None else None
        if record is not None:
            telemetry.resumed += 1
            # Reconstruct from the *original* spec (not the journal's params
            # rendering) so run_id/params round-trip exactly.
            yield emit(index, run,
                       RunResult(run.scenario, run.params, record["result"]),
                       fresh=False)
        else:
            pending.append((index, run))
    if not pending:
        return

    if not policy.needs_pool:
        index_map = [index for index, _ in pending]
        for sub_index, result in execute_stream(
            [run for _, run in pending], workers=workers,
            capture_errors=capture_errors, stable_stack=stable_stack,
        ):
            index = index_map[sub_index]
            yield emit(index, run_list[index], result, fresh=True)
        return

    for index, result in _execute_resilient_pool(
        pending, workers, capture_errors, stable_stack,
        policy, telemetry, quarantine,
    ):
        yield emit(index, run_list[index], result, fresh=True)


def journalable(result: RunResult) -> bool:
    """Whether a result should mark its config completed in the journal.

    Watchdog timeouts and quarantined worker deaths are wall-clock
    accidents, not properties of the configuration — a resumed execution
    gets to retry them.  Everything else (including deterministic captured
    errors) is final.
    """
    error = result.result.get("error") if isinstance(result.result, dict) else None
    if not isinstance(error, dict):
        return True
    return error.get("type") != "WatchdogTimeout" and not error.get("quarantined")
