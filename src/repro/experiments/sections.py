"""Spec v2: the uniform, serializable section protocol.

Every section of a declarative scenario — cluster, workload, latency,
monitoring, faults, transfers, and the :class:`~repro.experiments.spec.
ScenarioSpec` root itself — is a frozen dataclass inheriting
:class:`SpecSection`, which gives all of them the same five-method protocol:

* :meth:`SpecSection.to_dict` — recursive, JSON-serialisable plain-dict form
  (nested sections become dicts, tuples become lists);
* :meth:`SpecSection.from_dict` — the exact inverse, rejecting unknown keys
  so a typo in a spec file fails loudly instead of silently running the
  defaults;
* :meth:`SpecSection.flatten` — the section's sweepable parameters as one
  flat dotted-path dict (``cluster.n``, ``workload.keys.zipf_s``,
  ``monitoring.policy.threshold``), shared by the sweep engine, the registry
  and the CLI instead of per-section flattening plumbing;
* :meth:`SpecSection.validate` — recursive semantic validation (kind names,
  ranges, cross-field consistency) without building anything;
* ``build(...)`` — section-specific: construct the runtime objects the
  section describes (a latency model, a cluster, a failure schedule, a
  monitoring harness).

Because the protocol is uniform, composition is free: a section nests other
sections to arbitrary depth and serialization / flattening / validation
recurse without any section-specific code.  :func:`unflatten` is the inverse
of the dotted-path flattener on plain dicts, so a flat override map can be
turned back into the nested ``from_dict`` form.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Any, ClassVar, Dict, Mapping, Tuple, Type, TypeVar

from repro.errors import ConfigurationError

__all__ = ["SpecSection", "unflatten"]

S = TypeVar("S", bound="SpecSection")

# typing.get_type_hints walks the MRO and evaluates string annotations; cache
# per class so from_dict stays cheap in sweeps that parse many spec files.
_HINTS_CACHE: Dict[type, Dict[str, Any]] = {}


def _field_hints(cls: type) -> Dict[str, Any]:
    hints = _HINTS_CACHE.get(cls)
    if hints is None:
        hints = _HINTS_CACHE[cls] = typing.get_type_hints(cls)
    return hints


def _deep_tuple(value: Any) -> Any:
    """Lists arriving from JSON become the tuples the frozen specs store."""
    if isinstance(value, (list, tuple)):
        return tuple(_deep_tuple(item) for item in value)
    return value


def _jsonable(value: Any) -> Any:
    if isinstance(value, SpecSection):
        return value.to_dict()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def _section_from(section: Type[S], value: Any, context: str) -> S:
    """Build a nested section from a dict (by name) or a sequence (positional)."""
    if isinstance(value, section):
        return value
    if isinstance(value, Mapping):
        return section.from_dict(value)
    if isinstance(value, (list, tuple)):
        try:
            return section(*(_deep_tuple(item) for item in value))
        except TypeError as error:
            raise ConfigurationError(
                f"{context}: cannot build {section.__name__} from {value!r}"
            ) from error
    raise ConfigurationError(
        f"{context}: expected a {section.__name__} mapping, got {value!r}"
    )


def _coerce(hint: Any, value: Any, context: str) -> Any:
    """Convert one JSON-shaped field value into its declared spec type."""
    origin = typing.get_origin(hint)
    if origin is typing.Union:
        if value is None:
            return None
        args = [arg for arg in typing.get_args(hint) if arg is not type(None)]
        hint = args[0]
        origin = typing.get_origin(hint)
    if isinstance(hint, type) and issubclass(hint, SpecSection):
        return _section_from(hint, value, context)
    if origin is tuple:
        if not isinstance(value, (list, tuple)):
            raise ConfigurationError(
                f"{context}: expected a list, got {value!r}"
            )
        args = typing.get_args(hint)
        element = args[0] if len(args) == 2 and args[1] is Ellipsis else None
        if (
            isinstance(element, type)
            and issubclass(element, SpecSection)
        ):
            return tuple(
                _section_from(element, item, context) for item in value
            )
        return _deep_tuple(value)
    return _deep_tuple(value) if isinstance(value, list) else value


class SpecSection:
    """Mixin giving every (frozen dataclass) spec section one uniform protocol.

    Subclasses may declare:

    * ``_non_sweepable`` — field names excluded from :meth:`flatten` (e.g.
      the root spec's ``name``/``description``);
    * ``_aliases`` — legacy key spellings accepted by :meth:`from_dict` and
      dotted-path overrides (the ``failures`` → ``faults`` deprecation shim);
    * ``_validate()`` — per-section semantic checks, called by
      :meth:`validate` after the nested sections validated.
    """

    _non_sweepable: ClassVar[Tuple[str, ...]] = ()
    _aliases: ClassVar[Dict[str, str]] = {}

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The section as a JSON-serialisable plain dict (recursive)."""
        return {
            field.name: _jsonable(getattr(self, field.name))
            for field in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls: Type[S], data: Mapping[str, Any]) -> S:
        """The inverse of :meth:`to_dict`; unknown keys are rejected.

        Nested sections may be given as dicts (by field name) or sequences
        (positional — the CLI/JSON shorthand for transfers and phases);
        lists become tuples throughout.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"{cls.__name__} expects a mapping, got {data!r}"
            )
        field_names = {field.name for field in dataclasses.fields(cls)}
        hints = _field_hints(cls)
        kwargs: Dict[str, Any] = {}
        for key in data:
            name = cls._aliases.get(key, key)
            if name not in field_names:
                raise ConfigurationError(
                    f"unknown key {key!r} for {cls.__name__} "
                    f"(known keys: {', '.join(sorted(field_names))})",
                    path=key,
                )
            if name in kwargs:
                # An alias and its canonical spelling (or a duplicate via
                # aliasing) must not silently overwrite each other.
                raise ConfigurationError(
                    f"duplicate key for {cls.__name__}.{name}: {key!r} "
                    "collides with an earlier spelling of the same section"
                )
            kwargs[name] = _coerce(hints[name], data[key], f"{cls.__name__}.{key}")
        try:
            return cls(**kwargs)
        except TypeError as error:
            raise ConfigurationError(
                f"cannot build {cls.__name__} from {dict(data)!r}: {error}"
            ) from error

    # -- sweepable parameters --------------------------------------------------
    def flatten(self, prefix: str = "") -> Dict[str, Any]:
        """The section's sweepable parameters as a flat dotted-path dict.

        Nested sections recurse to arbitrary depth; tuple-valued fields
        (transfers, phases, crashes) stay single leaves with their raw
        values, exactly addressable by one override.
        """
        flat: Dict[str, Any] = {}
        for field in dataclasses.fields(self):
            if field.name in self._non_sweepable:
                continue
            value = getattr(self, field.name)
            key = f"{prefix}{field.name}"
            if isinstance(value, SpecSection):
                flat.update(value.flatten(f"{key}."))
            else:
                flat[key] = value
        return flat

    # -- validation ------------------------------------------------------------
    def validate(self: S, path: str = "") -> S:
        """Check semantic constraints recursively; returns ``self`` for chaining.

        ``path`` is the dotted location of this section within the root spec
        (empty at the root).  A :class:`ConfigurationError` raised anywhere
        below gets the innermost section's path attached as its ``path``
        attribute — unless the raiser already supplied a more precise one —
        so callers can render dotted-path errors without parsing messages.
        """
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            child = f"{path}{field.name}"
            if isinstance(value, SpecSection):
                value.validate(path=f"{child}.")
            elif isinstance(value, tuple):
                for index, item in enumerate(value):
                    if isinstance(item, SpecSection):
                        item.validate(path=f"{child}[{index}].")
        try:
            self._validate()
        except ConfigurationError as error:
            if error.path is None:
                error.path = path.rstrip(".") or None
            raise
        return self

    def _validate(self) -> None:
        """Per-section checks; the default accepts everything."""

    # -- construction -----------------------------------------------------------
    def build(self, *args: Any, **kwargs: Any) -> Any:
        """Construct the runtime object(s) this section describes."""
        raise NotImplementedError(
            f"{type(self).__name__} does not build a runtime object"
        )


def unflatten(flat: Mapping[str, Any]) -> Dict[str, Any]:
    """Turn a dotted-path dict back into the nested ``from_dict`` shape.

    The inverse of :meth:`SpecSection.flatten` on plain dicts:
    ``{"cluster.n": 5, "seed": 1}`` becomes ``{"cluster": {"n": 5},
    "seed": 1}``.  A path that descends through a leaf of another path
    (``a`` and ``a.b`` together) is rejected.
    """
    nested: Dict[str, Any] = {}
    for key in sorted(flat):
        parts = key.split(".")
        node = nested
        for depth, part in enumerate(parts[:-1]):
            child = node.setdefault(part, {})
            if not isinstance(child, dict):
                raise ConfigurationError(
                    f"path {key!r} descends into the leaf "
                    f"{'.'.join(parts[: depth + 1])!r}"
                )
            node = child
        leaf = parts[-1]
        if isinstance(node.get(leaf), dict) and node[leaf]:
            raise ConfigurationError(
                f"leaf {key!r} collides with nested keys under it"
            )
        node[leaf] = flat[key]
    return nested
