"""The ``python -m repro`` command line interface.

Subcommands:

* ``list``     — show the registered scenarios (name, tags, parameters).
* ``run``      — execute one scenario — a registered name, or a JSON spec
  file via ``--spec path.json`` (see ``examples/specs/``) — optionally
  overriding parameters.
* ``sweep``    — expand a parameter grid (or ``--sample`` N points from it,
  uniform or Latin-hypercube via ``--sample-method lhs``, or explicit
  ``--point``s) and execute it, serially or across worker processes;
  results are identical either way.  ``--spec path.json`` sweeps a spec
  file instead of a registered scenario.  Progress is reported per run on
  stderr, and ``--jsonl`` streams results to a chunked sink as they
  complete instead of holding the whole sweep in memory.  The resilience
  flags (``--journal``/``--resume``/``--run-timeout``/``--retry``/
  ``--quarantine``, shared with ``chaos``) add journaled resume, a
  per-run watchdog and bounded worker retry — see
  :mod:`repro.experiments.resilience`.
* ``chaos``    — run a chaos campaign over a declarative scenario: LHS-
  sample its fault space (outages, partitions, gray failures), execute
  every sampled configuration with tracing enabled, judge each run with
  the oracle stack (trace invariants, result accounting, latency
  degradation vs baseline), and emit a deterministic ranked JSONL report;
  ``--out-dir`` writes the worst configurations as ready-to-run spec files.
* ``serve``    — run the experiment lab as a multi-user HTTP service
  (:mod:`repro.serve`): job submission, status, chunked JSONL results
  byte-identical to ``run``/``sweep --jsonl``, spec validation, metrics;
  jobs execute on the resilient executor with per-job journals, so
  restarting the server on the same ``--jobs-dir`` resumes them.
* ``compare``  — diff a result JSON/JSONL against a baseline (runs are
  matched by ``run_id``, so completion order does not matter).
* ``bench``    — run the registered microbenchmarks (events/sec, ops/sec,
  wall time), append ``BENCH_<name>.json`` trajectory files, ``--compare``
  against a prior dump, or ``--check`` deterministic counters against the
  committed expectations (the CI determinism smoke).
* ``trace``    — trace analytics over a recorded JSONL trace:
  ``summary`` (aggregates + digest + Chrome export), ``digest``
  (``--check`` gates against a committed sha256 file), ``check``
  (structural/semantic invariants), ``critical-path`` (causal-graph
  latency attribution), ``diff`` (first-divergence finder between two
  traces), ``series`` (windowed virtual-time counters).  ``trace FILE``
  without a subcommand is shorthand for ``trace summary FILE``.

Parameter values (``-p key=value`` and grid axis values) are parsed with
``ast.literal_eval`` and fall back to plain strings, so ``-p seed=3``,
``-p workload.mix.read_ratio=0.9`` and ``-p cluster.flavour=static-majority``
all do what they look like.
"""

from __future__ import annotations

import argparse
import ast
import json
import multiprocessing
import os
import re
import sys
from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.experiments.executor import RunResult, execute_many
from repro.experiments.resilience import (
    INTERRUPT_EXIT_CODE,
    GracefulInterrupt,
    Quarantine,
    ResiliencePolicy,
    RunJournal,
    StreamTelemetry,
    execute_stream_resilient,
    interruptible,
)
from repro.experiments.registry import (
    all_scenarios,
    catalogue_payload,
    get_scenario,
    register_spec,
    scenario_names,
)
from repro.experiments.spec import load_spec_file
from repro.experiments.results import (
    compare_payloads,
    dumps_json,
    load_payload,
    to_payload,
    write_csv,
    write_json,
    write_jsonl_line,
)
from repro.experiments.sweep import RunSpec, Sweep, expand_grid, expand_points

__all__ = ["main"]


def _parse_value(text: str) -> Any:
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(pairs: Sequence[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise ReproError(f"expected key=value, got {pair!r}")
        params[key] = _parse_value(value)
    return params


def _parse_grid(axes: Sequence[str]) -> Dict[str, List[Any]]:
    grid: Dict[str, List[Any]] = {}
    for axis in axes:
        key, separator, values = axis.partition("=")
        if not separator or not key:
            raise ReproError(f"expected axis=v1,v2,..., got {axis!r}")
        grid[key] = [_parse_value(value) for value in values.split(",") if value != ""]
    return grid


def _print_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    cells = [tuple(str(cell) for cell in row) for row in rows]
    names = tuple(str(cell) for cell in header)
    widths = [
        max(len(names[i]), *(len(row[i]) for row in cells)) if cells else len(names[i])
        for i in range(len(names))
    ]
    print("  ".join(name.ljust(widths[i]) for i, name in enumerate(names)))
    print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in cells:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def _emit(results: List[RunResult], args: argparse.Namespace) -> None:
    if getattr(args, "json", None):
        write_json(results, args.json)
    if getattr(args, "csv", None):
        write_csv(results, args.csv)
    if not getattr(args, "quiet", False):
        print(dumps_json(results))


def _cmd_list(args: argparse.Namespace) -> int:
    entries = all_scenarios()
    if args.tag:
        entries = [entry for entry in entries if args.tag in entry.tags]
    if args.as_json:
        # The same payload `GET /scenarios` serves, so tooling can consume
        # the CLI and the serving layer interchangeably.
        print(json.dumps(catalogue_payload(entries), indent=2, sort_keys=True))
        return 0
    _print_table(
        ["scenario", "kind", "tags", "description"],
        [
            (entry.name, entry.kind, ",".join(entry.tags), entry.description)
            for entry in entries
        ],
    )
    print(f"\n{len(entries)} scenario(s); `run <name>` executes one, "
          "`sweep <name> -g axis=v1,v2` sweeps a grid")
    return 0


def _resolve_scenario(args: argparse.Namespace) -> str:
    """The scenario to execute: a registered name, or a --spec file.

    A spec file is parsed strictly (unknown keys rejected), validated, and
    registered under its own name — replacing a same-named catalogue entry
    for this process — so the sweep machinery and fork-based workers treat
    it exactly like a built-in scenario.  Spawn-based workers re-import only
    the built-in catalogue and would not see the runtime registration, so
    parallel ``sweep --spec`` is rejected where fork is unavailable.
    """
    spec_path = getattr(args, "spec_path", None)
    if spec_path and args.scenario:
        raise ReproError("give a registered scenario name or --spec, not both")
    if spec_path:
        workers = getattr(args, "workers", 1)
        # The watchdog/retry pool also runs in worker processes, even with
        # --workers 1, so it needs fork for the same reason.
        needs_workers = (
            workers > 1
            or getattr(args, "run_timeout", None) is not None
            or getattr(args, "retry", 1) > 1
        )
        if needs_workers and "fork" not in multiprocessing.get_all_start_methods():
            raise ReproError(
                "sweep --spec needs fork-based workers (spawn-only platforms "
                "cannot see the runtime-registered spec); use --workers 1 "
                "without --run-timeout/--retry"
            )
        scenario_names()  # load the built-in catalogue first, so a spec file
        spec = load_spec_file(spec_path)  # shadowing a name wins (replace=True)
        register_spec(spec, tags=("spec-file",), replace=True)
        return spec.name
    if not args.scenario:
        raise ReproError("a scenario name (or --spec path.json) is required")
    get_scenario(args.scenario)  # fail fast with the list of known names
    return args.scenario


def _cmd_run(args: argparse.Namespace) -> int:
    params = _parse_params(args.param)
    scenario = _resolve_scenario(args)
    run = RunSpec(scenario=scenario, params=tuple(sorted(params.items())))
    if not args.trace and not args.metrics:
        results = execute_many([run], workers=1)
        _emit(results, args)
        return 0

    # Ambient observer around the in-process executor: works uniformly for
    # declarative *and* function scenarios (the components capture it while
    # the scenario builds its world).  Declarative scenarios can alternatively
    # enable observability through their spec (-p observability.enabled=True).
    from repro.obs import Observer, observing, trace_digest, write_trace

    observer = Observer(metrics=bool(args.metrics), trace=bool(args.trace))
    with observing(observer):
        results = execute_many([run], workers=1)
    payload = results[0].result
    if isinstance(payload, dict):
        if observer.metrics is not None:
            payload.setdefault("metrics", observer.metrics.as_dict())
        if observer.trace is not None:
            records = observer.trace.records
            payload.setdefault(
                "trace",
                {"records": len(records), "digest": trace_digest(records)},
            )
    if args.trace and observer.trace is not None:
        write_trace(observer.trace.records, args.trace)
        print(f"trace: {args.trace}", file=sys.stderr)
    _emit(results, args)
    return 0


def _sweep_runs(args: argparse.Namespace, scenario: str) -> List[RunSpec]:
    grid = _parse_grid(args.grid)
    if args.seeds:
        grid["seed"] = [_parse_value(value) for value in args.seeds.split(",") if value != ""]
    base = _parse_params(args.param)
    if args.point:
        if grid or args.sample is not None:
            raise ReproError("--point cannot be combined with -g/--seeds/--sample")
        points = [_parse_params(point.split()) for point in args.point]
        return expand_points(scenario, points, base=base)
    if args.sample is not None:
        sweep = Sweep.of(scenario, grid=grid, base=base)
        return sweep.sample(args.sample, seed=args.sample_seed,
                            method=args.sample_method)
    return expand_grid(scenario, grid=grid, base=base)


def _traced_runs(
    runs: List[RunSpec], trace_dir: str, scenario: str
) -> List[RunSpec]:
    """Rewrite each run to trace itself into ``trace_dir/<nnnn>-<run_id>.jsonl``.

    File names derive from the run's *pre-observability* identity and its
    (deterministic) position in the expanded sweep, so serial and parallel
    executions produce the identical file set.  The trace is written inside
    the worker process by :func:`~repro.experiments.spec.run_spec`, which is
    what makes per-run files compose with the multiprocessing executor.
    """
    entry = get_scenario(scenario)
    if entry.kind != "spec":
        raise ReproError(
            "--trace-dir requires a declarative (spec) scenario; "
            f"{scenario!r} is a {entry.kind} scenario — use "
            "`run <name> --trace PATH` for single function-scenario traces"
        )
    os.makedirs(trace_dir, exist_ok=True)
    traced = []
    for index, run in enumerate(runs):
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", run.run_id)
        params = run.params_dict
        params["observability.enabled"] = True
        params["observability.trace"] = True
        params["observability.trace_path"] = os.path.join(
            trace_dir, f"{index:04d}-{slug}.jsonl"
        )
        traced.append(
            RunSpec(scenario=run.scenario, params=tuple(sorted(params.items())))
        )
    return traced


def _resilience_options(
    args: argparse.Namespace,
) -> "tuple[ResiliencePolicy, Optional[str], bool, Optional[str]]":
    """Resolve the shared resilience flags into concrete settings.

    ``--resume PATH`` implies journaling to PATH; giving both ``--journal``
    and ``--resume`` is only valid when they agree.  The quarantine sidecar
    defaults to ``<journal>.quarantine.jsonl`` next to the journal (the
    file is only created if something is actually quarantined).
    """
    journal_path = args.resume or args.journal
    if args.resume and args.journal and args.resume != args.journal:
        raise ReproError(
            "--journal and --resume point at different files; give one path"
        )
    quarantine_path = args.quarantine
    if quarantine_path is None and journal_path is not None:
        quarantine_path = journal_path + ".quarantine.jsonl"
    policy = ResiliencePolicy(
        run_timeout=args.run_timeout, max_attempts=args.retry
    )
    policy.validate()
    return policy, journal_path, args.resume is not None, quarantine_path


def _resilience_summary(
    telemetry: StreamTelemetry, quarantine_path: Optional[str]
) -> str:
    counts = telemetry.as_dict()
    line = (f"resilience: resumed {telemetry.resumed}, "
            f"retries {counts['retries']}, timeouts {counts['timeouts']}, "
            f"quarantined {counts['quarantined']}")
    if counts["quarantined"] and quarantine_path:
        line += f" (see {quarantine_path})"
    return line


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args)
    runs = _sweep_runs(args, scenario)
    if args.trace_dir:
        runs = _traced_runs(runs, args.trace_dir, scenario)
    total = len(runs)
    policy, journal_path, resume, quarantine_path = _resilience_options(args)
    telemetry = StreamTelemetry()
    quarantine = Quarantine(quarantine_path)
    journal: Optional[RunJournal] = None
    if journal_path is not None:
        journal = RunJournal(
            journal_path,
            {"kind": "sweep", "version": 1, "scenario": scenario},
            resume=resume,
        )
    resilient = journal is not None or policy.needs_pool
    # Buffer results only for sinks that need the complete, input-ordered
    # list; a --jsonl-only sweep streams in constant memory.
    need_buffer = bool(args.json or args.csv) or not args.quiet
    buffer: Optional[List[Optional[RunResult]]] = [None] * total if need_buffer else None
    jsonl_handle = open(args.jsonl, "w", encoding="utf-8") if args.jsonl else None
    done = 0
    try:
        # SIGINT/SIGTERM flush the journal (it flushes per line) and exit
        # with the distinct "interrupted, resumable" status — but only when
        # a journal is active; plain sweeps keep KeyboardInterrupt.
        with interruptible() if journal is not None else nullcontext():
            for index, result in execute_stream_resilient(
                runs, workers=args.workers, policy=policy, journal=journal,
                quarantine=quarantine, telemetry=telemetry,
            ):
                done += 1
                if jsonl_handle is not None:
                    write_jsonl_line(result, jsonl_handle)
                if buffer is not None:
                    buffer[index] = result
                if not args.no_progress:
                    print(f"[{done}/{total}] {result.run_id}"
                          f"{telemetry.suffix()}", file=sys.stderr)
        if journal is not None:
            journal.record_summary({
                "completed": done, "total": total,
                "resumed": telemetry.resumed, **telemetry.as_dict(),
            })
    except GracefulInterrupt as interrupt:
        print(
            f"interrupted ({interrupt.signal_name}): {done}/{total} run(s) "
            f"journaled to {journal.path}; resume with "  # type: ignore[union-attr]
            f"--resume {journal.path}",  # type: ignore[union-attr]
            file=sys.stderr,
        )
        return INTERRUPT_EXIT_CODE
    finally:
        if jsonl_handle is not None:
            jsonl_handle.close()
        quarantine.close()
        if journal is not None:
            journal.close()
    if resilient:
        print(_resilience_summary(telemetry, quarantine_path), file=sys.stderr)
    if buffer is not None:
        _emit([result for result in buffer if result is not None], args)
    if getattr(args, "quiet", False):
        print(f"{done} run(s) completed")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    names = args.benchmark or bench.benchmark_names()
    if args.list_benchmarks:
        _print_table(
            ["benchmark", "description"],
            [(entry.name, entry.description) for entry in bench.all_benchmarks()],
        )
        return 0
    for name in names:
        bench.get_benchmark(name)  # fail fast with the list of known names
    results = bench.run_benchmarks(names, quick=args.quick, repeat=args.repeat)
    for result in results:
        print(result.as_row())
    if not args.no_trajectory:
        for result in results:
            path = bench.append_trajectory(result, args.out_dir)
            print(f"trajectory: {path}", file=sys.stderr)
    if args.json:
        bench.write_results_json(results, args.json)
    status = 0
    if args.compare:
        prior = bench.load_results_json(args.compare)
        rows = bench.compare_results(results, prior)
        if not rows:
            print(f"no overlapping benchmarks with {args.compare}")
        for row in rows:
            marker = "" if row["counters_match"] else "  [COUNTERS DIVERGE]"
            print(
                f"{row['benchmark']:<16s} {row['speedup']:6.2f}x  "
                f"(current {row['current_wall']:.4f}s vs prior "
                f"{row['prior_wall']:.4f}s){marker}"
            )
            if not row["counters_match"]:
                status = 1
    if args.check:
        problems = bench.check_expectations(results, args.check, quick=args.quick)
        if problems:
            for problem in problems:
                print(f"MISMATCH: {problem}", file=sys.stderr)
            status = 1
        else:
            print(f"deterministic counters match {args.check}")
    return status


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro.obs import (
        read_trace,
        summarize_trace,
        trace_digest,
        write_chrome_trace,
    )

    records = read_trace(args.trace_file)  # validates every record
    if args.export:
        write_chrome_trace(records, args.export)
        print(
            f"chrome trace: {args.export} (open at https://ui.perfetto.dev "
            "or chrome://tracing)",
            file=sys.stderr,
        )
    summary = summarize_trace(records)
    summary["digest"] = trace_digest(records)
    if not args.quiet:
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_trace_digest(args: argparse.Namespace) -> int:
    """Print the trace digest; with --check, gate it against a .sha256 file."""
    from repro.obs import read_trace, trace_digest

    digest = trace_digest(read_trace(args.trace_file))
    if not args.check:
        print(digest)
        return 0
    with open(args.check, "r", encoding="utf-8") as handle:
        expected = handle.read().strip()
    if digest == expected:
        print(f"digest ok: {args.trace_file} matches {args.check} "
              f"({digest[:12]}...)")
        return 0
    print(
        f"digest mismatch for {args.trace_file}:\n"
        f"  got      {digest}\n"
        f"  expected {expected} (from {args.check})\n"
        "Use `python -m repro trace diff` against a trace of the golden "
        "run to find the first diverging record.",
        file=sys.stderr,
    )
    return 1


def _cmd_trace_check(args: argparse.Namespace) -> int:
    from repro.obs import check_trace_invariants, read_trace

    records = read_trace(args.trace_file)
    report = check_trace_invariants(records, min_quorum=args.min_quorum)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    shown = report.errors if args.quiet else report.findings
    for finding in shown:
        print(f"{finding.severity}: [{finding.check}] "
              + (f"seq {finding.seq}: " if finding.seq is not None else "")
              + finding.message,
              file=sys.stderr if finding.severity == "error" else sys.stdout)
    verdict = "ok" if report.ok else "FAILED"
    print(f"trace check {verdict}: {report.counters['records']} record(s), "
          f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)")
    return 0 if report.ok else 1


def _cmd_trace_critical_path(args: argparse.Namespace) -> int:
    from repro.obs import critical_path_report, read_trace

    report = critical_path_report(read_trace(args.trace_file))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.quiet:
        return 0
    if not report["by_kind"]:
        print(f"no completed operation spans in {report['records']} record(s)")
        return 0
    categories = list(report["categories"])
    _print_table(
        ["kind", "count", "mean_duration"] + categories,
        [
            (
                kind,
                entry["count"],
                f"{entry['mean_duration']:.4f}",
                *(f"{entry['attribution'][c]:.4f}" for c in categories),
            )
            for kind, entry in report["by_kind"].items()
        ],
    )
    total = sum(report["categories"].values()) or 1.0
    shares = "  ".join(
        f"{category}={report['categories'][category] / total:.1%}"
        for category in categories
    )
    print(f"\n{len(report['operations'])} operation(s); "
          f"critical-path time split: {shares}")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.obs import diff_traces, format_divergence, read_trace

    divergence = diff_traces(
        read_trace(args.trace_a),
        read_trace(args.trace_b),
        context=args.context,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(divergence, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(format_divergence(divergence))
    return 0 if divergence is None else 1


def _cmd_trace_series(args: argparse.Namespace) -> int:
    from repro.obs import read_trace, trace_series

    series = trace_series(
        read_trace(args.trace_file),
        window=args.window,
        buckets=args.buckets,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(series, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.quiet:
        return 0
    if not series["series"]:
        print("empty trace: no series")
        return 0
    _print_table(
        ["start", "events", "ops_started", "ops_completed", "in_flight"],
        [
            (
                f"{row['start']:.3f}",
                row["events"],
                row["ops_started"],
                row["ops_completed"],
                row["in_flight"],
            )
            for row in series["series"]
        ],
    )
    print(f"\n{series['records']} record(s) over "
          f"[{series['start']:.3f}, {series['end']:.3f}] in windows of "
          f"{series['window']:.3f} virtual time units")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import run_campaign

    scenario = _resolve_scenario(args)
    times = tuple(
        _parse_value(value) for value in args.times.split(",") if value != ""
    )
    policy, journal_path, resume, quarantine_path = _resilience_options(args)
    telemetry = StreamTelemetry()
    progress = None
    if not args.no_progress:
        def progress(done: int, total: int) -> None:
            print(f"[{done}/{total}] chaos runs completed"
                  f"{telemetry.suffix()}", file=sys.stderr)
    try:
        # As in sweep: with a journal active, SIGINT/SIGTERM become a
        # flushed, resumable exit with a distinct status.
        with interruptible() if journal_path is not None else nullcontext():
            campaign = run_campaign(
                scenario,
                sample=args.sample,
                seed=args.seed,
                workers=args.workers,
                benign=args.benign,
                times=times,
                outage_length=args.outage_length,
                window_length=args.window_length,
                min_quorum=args.min_quorum,
                degradation_threshold=args.threshold,
                keep_traces=args.keep_traces,
                progress=progress,
                policy=policy,
                journal_path=journal_path,
                resume=resume,
                quarantine_path=quarantine_path,
                telemetry=telemetry,
            )
    except GracefulInterrupt as interrupt:
        print(
            f"interrupted ({interrupt.signal_name}): judged runs journaled "
            f"to {journal_path}; resume with --resume {journal_path}",
            file=sys.stderr,
        )
        return INTERRUPT_EXIT_CODE
    if journal_path is not None or policy.needs_pool:
        print(_resilience_summary(telemetry, quarantine_path),
              file=sys.stderr)
    if args.report:
        campaign.write(args.report)
        print(f"report: {args.report}", file=sys.stderr)
    elif not args.quiet:
        for line in campaign.jsonl_lines():
            print(line)
    if args.out_dir:
        for path in campaign.write_worst_specs(args.out_dir, top=args.top):
            print(f"spec: {path}", file=sys.stderr)
    meta = campaign.header["campaign"]
    print(
        f"campaign over {scenario!r}: {meta['runs']} run(s), "
        f"{meta['violations']} violation(s), {meta['degraded']} degraded "
        f"(>= {meta['degradation_threshold']}x p99), {meta['failed']} failed",
        file=sys.stderr,
    )
    for rank, severity, violations, degradation, run_id in campaign.summary_rows(
        top=min(args.top, len(campaign.entries))
    ):
        print(
            f"  #{rank} severity={severity} violations={violations} "
            f"degradation={degradation} {run_id}",
            file=sys.stderr,
        )
    if args.fail_on_violations and campaign.violations:
        return 1
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    diffs = compare_payloads(
        load_payload(args.current),
        load_payload(args.baseline),
        rel_tol=args.rel_tol,
    )
    if not diffs:
        print(f"results match: {args.current} == {args.baseline} "
              f"(rel_tol={args.rel_tol})")
        return 0
    for diff in diffs:
        if diff["kind"] == "field":
            print(f"{diff['run_id']}: {diff['field']}: "
                  f"current={diff['current']!r} baseline={diff['baseline']!r}")
        else:
            print(f"{diff['run_id']}: {diff['kind']}")
    print(f"{len(diffs)} difference(s) found")
    return 1


def _add_resilience_args(parser: argparse.ArgumentParser, noun: str) -> None:
    """The shared resilience flags (sweep and chaos take the same set)."""
    group = parser.add_argument_group("resilience")
    group.add_argument("--journal", metavar="PATH",
                       help=f"journal completed {noun} to an append-only "
                       "JSONL file as they land (overwrites PATH); an "
                       "interrupted invocation can then --resume it")
    group.add_argument("--resume", metavar="PATH",
                       help="resume from a journal written by --journal: "
                       "journaled configurations are skipped (results are "
                       "deterministic, so the final report is byte-identical "
                       "to an uninterrupted run) and new completions are "
                       "appended; a missing file starts fresh")
    group.add_argument("--run-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-run wall-clock watchdog: a run exceeding "
                       "this is killed and recorded as a WatchdogTimeout "
                       "error while the rest keep going")
    group.add_argument("--retry", type=int, default=1, metavar="N",
                       help="dispatch a run whose worker process died up to "
                       "N times total (exponential backoff between "
                       "attempts); default 1 = no retry")
    group.add_argument("--quarantine", metavar="PATH",
                       help="JSONL sidecar for configurations that failed "
                       "every --retry attempt (default: "
                       "<journal>.quarantine.jsonl when journaling; the "
                       "file is only created when something is quarantined)")


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serving layer is a leaf subsystem and the rest of
    # the CLI must not pay for (or depend on) it.
    from repro.serve.app import serve
    from repro.serve.service import ExperimentService

    service = ExperimentService(
        jobs_dir=args.jobs_dir,
        workers=args.workers,
        job_concurrency=args.job_concurrency,
        queue_limit=args.queue_limit,
        run_timeout=args.run_timeout,
        retry=args.retry,
    )
    return serve(args.host, args.port, service, quiet=args.quiet)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (exposed for the test-suite)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the repro experiment catalogue: registered scenarios, "
        "parameter sweeps, and baseline comparisons.  Every run is "
        "deterministic in virtual time, so results are reproducible "
        "bit-for-bit and parallel sweeps equal serial ones.",
        epilog="quickstart:\n"
        "  python -m repro list\n"
        "  python -m repro run quickstart -p cluster.n=7 -p seed=3\n"
        "  python -m repro run quickstart -p cluster.shards=4\n"
        "  python -m repro run --spec examples/specs/hotspot-shift-monitoring.json\n"
        "  python -m repro sweep quickstart -g cluster.shards=1,2,4 "
        "--seeds 0,1,2 --workers 4\n"
        "  python -m repro sweep --spec examples/specs/hotspot-shift-monitoring.json "
        "\\\n      -g monitoring.policy.threshold=0.05,0.1,0.2\n"
        "  python -m repro compare results.json benchmarks/baselines/quickstart.json\n"
        "\n"
        "declarative scenarios take dotted spec paths (cluster.n, "
        "workload.keys.zipf_s, ...);\nfunction scenarios take their keyword "
        "arguments — `list` shows each scenario's kind\nand parameters, the "
        "README documents every dotted path.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list",
        help="list registered scenarios",
        description="Show every registered scenario with its kind "
        "(declarative spec vs function), tags and description; --json adds "
        "the full parameter/default map per scenario.",
    )
    p_list.add_argument("--tag", help="only scenarios carrying this tag")
    p_list.add_argument("--json", dest="as_json", action="store_true",
                        help="emit the catalogue as JSON")
    p_list.set_defaults(fn=_cmd_list)

    p_run = sub.add_parser(
        "run",
        help="execute one scenario",
        description="Execute one scenario and print its JSON result. "
        "Parameters: -p cluster.n=7 (spec paths) or -p n=7 (function "
        "kwargs); values parse as Python literals and fall back to strings.",
    )
    p_run.add_argument("scenario", nargs="?",
                       help="registered scenario name (or use --spec)")
    p_run.add_argument("--spec", dest="spec_path", metavar="PATH",
                       help="run a JSON spec file instead of a registered "
                       "scenario (see examples/specs/)")
    p_run.add_argument("-p", "--param", action="append", default=[],
                       metavar="KEY=VALUE", help="override a scenario parameter")
    p_run.add_argument("--json", metavar="PATH", help="write results to a JSON file")
    p_run.add_argument("--csv", metavar="PATH", help="write results to a CSV file")
    p_run.add_argument("--trace", metavar="PATH",
                       help="record a deterministic JSONL trace of the run "
                       "(summarise/export it with `python -m repro trace`)")
    p_run.add_argument("--metrics", action="store_true",
                       help="attach the observability metrics snapshot to the "
                       "result JSON")
    p_run.add_argument("--quiet", action="store_true", help="suppress stdout JSON")
    p_run.set_defaults(fn=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep",
        help="expand and execute a parameter grid",
        description="Expand a parameter grid (-g axis=v1,v2 per axis, full "
        "cartesian product), or --sample N seeded-random points of it, or "
        "explicit --point lists, and execute every run — serially or across "
        "--workers processes (results are identical either way).",
    )
    p_sweep.add_argument("scenario", nargs="?",
                         help="registered scenario name (or use --spec)")
    p_sweep.add_argument("--spec", dest="spec_path", metavar="PATH",
                         help="sweep a JSON spec file instead of a registered "
                         "scenario (see examples/specs/)")
    p_sweep.add_argument("-g", "--grid", action="append", default=[],
                         metavar="AXIS=V1,V2,...", help="add a sweep axis")
    p_sweep.add_argument("--seeds", metavar="S1,S2,...",
                         help="shorthand for a seed axis (-g seed=S1,S2,...)")
    p_sweep.add_argument("-p", "--param", action="append", default=[],
                         metavar="KEY=VALUE", help="fix a parameter across the sweep")
    p_sweep.add_argument("--sample", type=int, metavar="N",
                         help="run N seeded-random grid points instead "
                         "of the full cartesian product")
    p_sweep.add_argument("--sample-seed", type=int, default=0, metavar="SEED",
                         help="seed for --sample (default 0)")
    p_sweep.add_argument("--sample-method", choices=("uniform", "lhs"),
                         default="uniform",
                         help="--sample design: uniform without replacement, "
                         "or lhs (Latin hypercube: every axis's values "
                         "covered as evenly as N allows)")
    p_sweep.add_argument("--point", action="append", default=[],
                         metavar='"K=V K2=V2"',
                         help="explicit parameter point, space-separated pairs "
                         "(repeatable; replaces the grid)")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (results are identical for any count)")
    p_sweep.add_argument("--json", metavar="PATH", help="write results to a JSON file")
    p_sweep.add_argument("--csv", metavar="PATH", help="write results to a CSV file")
    p_sweep.add_argument("--jsonl", metavar="PATH",
                         help="stream results to a JSONL file as runs complete "
                         "(constant memory with --quiet and no --json/--csv)")
    p_sweep.add_argument("--trace-dir", metavar="DIR",
                         help="write one deterministic JSONL trace per run "
                         "into DIR (declarative scenarios only; identical "
                         "files for any --workers count)")
    p_sweep.add_argument("--no-progress", action="store_true",
                         help="suppress per-run progress lines on stderr")
    p_sweep.add_argument("--quiet", action="store_true", help="suppress stdout JSON")
    _add_resilience_args(p_sweep, "runs")
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_chaos = sub.add_parser(
        "chaos",
        help="LHS fault-space search with trace-invariant oracles",
        description="Run a chaos campaign over a declarative scenario: "
        "Latin-hypercube sample its fault space (crash/recover outages, "
        "partition windows, gray slow-but-alive nodes), execute every "
        "sampled configuration with tracing enabled, judge each run with "
        "the oracle stack (trace invariants, result accounting, latency "
        "degradation against the scenario's own baseline), and print a "
        "ranked JSONL report.  The report is deterministic: same scenario, "
        "sample size and seed produce byte-identical output for any "
        "--workers count and any PYTHONHASHSEED.",
        epilog="quickstart:\n"
        "  python -m repro chaos --scenario quickstart --sample 16 --seed 0\n"
        "  python -m repro chaos --scenario quickstart --sample 32 "
        "--workers 4 \\\n      --report campaign.jsonl --out-dir specs/ --top 3\n"
        "  python -m repro chaos --spec examples/specs/fig1-walkthrough.json "
        "\\\n      --benign --times 30,40,50 --fail-on-violations\n"
        "  python -m repro run --spec specs/quickstart-chaos-1.json\n",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_chaos.add_argument("--scenario", dest="scenario",
                         help="registered declarative scenario to campaign "
                         "over (or use --spec)")
    p_chaos.add_argument("--spec", dest="spec_path", metavar="PATH",
                         help="campaign over a JSON spec file instead of a "
                         "registered scenario")
    p_chaos.add_argument("--sample", type=int, default=16, metavar="N",
                         help="Latin-hypercube sample size (default 16)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="sampling seed (default 0); the whole report "
                         "is deterministic in it")
    p_chaos.add_argument("--workers", type=int, default=1,
                         help="worker processes (report is byte-identical "
                         "for any count)")
    p_chaos.add_argument("--benign", action="store_true",
                         help="restrict the fault space to the benign "
                         "region (every fault recovers within budget); a "
                         "correct build must pass it with zero violations")
    p_chaos.add_argument("--times", default="4,8,12", metavar="T1,T2,...",
                         help="candidate injection instants in virtual time "
                         "(default 4,8,12); move them past the scenario's "
                         "own scheduled events")
    p_chaos.add_argument("--outage-length", type=float, default=8.0,
                         metavar="T", help="crash-to-recovery window length "
                         "(default 8)")
    p_chaos.add_argument("--window-length", type=float, default=8.0,
                         metavar="T", help="partition window length "
                         "(default 8)")
    p_chaos.add_argument("--min-quorum", type=int, default=1, metavar="N",
                         help="smallest quorum size the configuration "
                         "allows, for the trace-invariant oracle (default 1)")
    p_chaos.add_argument("--threshold", type=float, default=2.0, metavar="X",
                         help="p99 ratio counted as degraded (default 2.0)")
    p_chaos.add_argument("--report", metavar="PATH",
                         help="write the JSONL report here instead of stdout")
    p_chaos.add_argument("--out-dir", metavar="DIR",
                         help="emit the --top worst configurations as "
                         "ready-to-run spec files into DIR")
    p_chaos.add_argument("--top", type=int, default=3, metavar="K",
                         help="how many worst configurations to emit/show "
                         "(default 3)")
    p_chaos.add_argument("--keep-traces", metavar="DIR",
                         help="keep per-run traces in DIR (by sample index) "
                         "instead of a temporary directory")
    p_chaos.add_argument("--fail-on-violations", action="store_true",
                         help="exit 1 if any sampled run violates an oracle "
                         "(the CI smoke gate for --benign campaigns)")
    p_chaos.add_argument("--no-progress", action="store_true",
                         help="suppress per-run progress lines on stderr")
    p_chaos.add_argument("--quiet", action="store_true",
                         help="suppress the stdout JSONL report")
    _add_resilience_args(p_chaos, "judged runs")
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="run the experiment lab as an HTTP service",
        description="Serve the experiment lab over HTTP (stdlib only): "
        "submit runs and sweeps as jobs, stream their results as JSONL "
        "(byte-identical to `run`/`sweep --jsonl`), validate specs, and "
        "export metrics.  Jobs execute on the resilient executor with "
        "per-job journals; restarting the server on the same --jobs-dir "
        "resumes interrupted jobs.  `python -m repro.serve.client` is the "
        "matching command-line client.",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8123,
                         help="bind port (default 8123; 0 picks a free port)")
    p_serve.add_argument("--jobs-dir", default="serve-jobs", metavar="DIR",
                         help="job journals and results live here "
                         "(default serve-jobs/); reuse it to resume")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="default per-job executor workers")
    p_serve.add_argument("--job-concurrency", type=int, default=1,
                         help="jobs executing at once (default 1)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="queued-job bound; submissions beyond it get 503")
    p_serve.add_argument("--run-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="default per-run watchdog for jobs")
    p_serve.add_argument("--retry", type=int, default=1, metavar="N",
                         help="default per-run attempt budget for jobs")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress per-request access logging")
    p_serve.set_defaults(fn=_cmd_serve)

    p_compare = sub.add_parser(
        "compare",
        help="diff a result JSON against a baseline",
        description="Diff two result payloads (JSON array or JSONL) "
        "run-by-run, field-by-field; runs are matched by run_id, so "
        "completion order does not matter.  Exit status 1 means they differ.",
    )
    p_compare.add_argument("current", help="result JSON produced by run/sweep --json")
    p_compare.add_argument("baseline", help="baseline JSON to compare against")
    p_compare.add_argument("--rel-tol", type=float, default=1e-9,
                           help="relative tolerance for numeric fields")
    p_compare.set_defaults(fn=_cmd_compare)

    p_bench = sub.add_parser(
        "bench",
        help="run the registered microbenchmarks",
        description="Run the microbenchmark suite (kernel dispatch, ABD "
        "rounds, sharded data plane, sweep layer) and report events/sec, "
        "ops/sec and wall time.  Wall time is hardware noise; the event / "
        "op / message counts are deterministic and double as an end-to-end "
        "determinism check (--check).  Each run appends to per-benchmark "
        "BENCH_<name>.json trajectory files so the performance history "
        "stays next to the code.",
        epilog="quickstart:\n"
        "  python -m repro bench\n"
        "  python -m repro bench event-loop --repeat 5\n"
        "  python -m repro bench --json now.json   # ... later ...\n"
        "  python -m repro bench --compare now.json\n"
        "  python -m repro bench --quick --check benchmarks/bench_expectations.json\n",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_bench.add_argument("benchmark", nargs="*",
                         help="benchmarks to run (default: all registered)")
    p_bench.add_argument("--list", dest="list_benchmarks", action="store_true",
                         help="list registered benchmarks and exit")
    p_bench.add_argument("--quick", action="store_true",
                         help="CI scale: much smaller fixed workloads")
    p_bench.add_argument("--repeat", type=int, default=1, metavar="N",
                         help="run each benchmark N times, report best wall time")
    p_bench.add_argument("--out-dir", default=".", metavar="DIR",
                         help="directory for BENCH_<name>.json trajectories "
                         "(default: current directory)")
    p_bench.add_argument("--no-trajectory", action="store_true",
                         help="do not append trajectory files")
    p_bench.add_argument("--json", metavar="PATH",
                         help="write this invocation's results to a JSON file")
    p_bench.add_argument("--compare", metavar="PATH",
                         help="compare against a prior --json dump "
                         "(exit 1 if deterministic counters diverge)")
    p_bench.add_argument("--check", metavar="PATH",
                         help="assert deterministic counters against an "
                         "expectations file (exit 1 on mismatch)")
    p_bench.set_defaults(fn=_cmd_bench)

    p_trace = sub.add_parser(
        "trace",
        help="analyse a trace JSONL: summary, check, critical-path, diff, "
        "series, digest",
        description="Analyse a JSONL trace written by `run --trace` or "
        "`sweep --trace-dir`.  Every subcommand validates each record "
        "against the schema first; all of them return clean empty results "
        "on an empty trace.",
        epilog="quickstart:\n"
        "  python -m repro run quickstart --trace out.jsonl --quiet\n"
        "  python -m repro trace summary out.jsonl\n"
        "  python -m repro trace check out.jsonl\n"
        "  python -m repro trace critical-path out.jsonl\n"
        "  python -m repro trace diff out.jsonl other.jsonl\n"
        "  python -m repro trace series out.jsonl --buckets 10\n"
        "  python -m repro trace digest out.jsonl --check golden.sha256\n",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_summary = trace_sub.add_parser(
        "summary",
        help="aggregate summary + digest (optionally export to Chrome)",
        description="Print an aggregate summary (per-category/per-name "
        "counts, span totals, digest), optionally exporting the trace to "
        "the Chrome trace_event format for https://ui.perfetto.dev.  "
        "`python -m repro trace FILE` is shorthand for this subcommand.",
    )
    p_summary.add_argument("trace_file", help="JSONL trace to summarise")
    p_summary.add_argument("--export", metavar="PATH",
                           help="also write a Chrome/Perfetto trace_event JSON")
    p_summary.add_argument("--quiet", action="store_true",
                           help="suppress the stdout summary "
                           "(validate/export only)")
    p_summary.set_defaults(fn=_cmd_trace_summary)

    p_digest = trace_sub.add_parser(
        "digest",
        help="print the trace digest, or gate it against a .sha256 file",
        description="Print the SHA-256 trace digest (identical to the "
        "digest of the canonical file bytes).  With --check, compare "
        "against a committed digest file and exit 1 on mismatch — the "
        "one-command local reproduction of the CI trace gate.",
    )
    p_digest.add_argument("trace_file", help="JSONL trace to digest")
    p_digest.add_argument("--check", metavar="SHA256_FILE",
                          help="compare against this golden digest file "
                          "(e.g. benchmarks/baselines/"
                          "fig1-walkthrough.trace.sha256)")
    p_digest.set_defaults(fn=_cmd_trace_digest)

    p_check = trace_sub.add_parser(
        "check",
        help="run structural + semantic invariant checks",
        description="Check trace invariants: monotone seq/ts, balanced "
        "B/E spans, paired s/f flows, quorum phases nested in operation "
        "spans with ordered phases and sufficient sizes, and weight "
        "conservation across transfers.  Warnings (spans/flows still open "
        "at end of trace) do not fail the check; errors exit 1.",
    )
    p_check.add_argument("trace_file", help="JSONL trace to check")
    p_check.add_argument("--min-quorum", type=int, default=1, metavar="N",
                         help="smallest quorum size the configuration "
                         "allows (default 1)")
    p_check.add_argument("--json", metavar="PATH",
                         help="write the full report (findings + counters) "
                         "as JSON")
    p_check.add_argument("--quiet", action="store_true",
                         help="print errors and the verdict only "
                         "(suppress warnings)")
    p_check.set_defaults(fn=_cmd_trace_check)

    p_cpath = trace_sub.add_parser(
        "critical-path",
        help="per-operation latency attribution along the causal graph",
        description="Link flow records and span nesting into a causal "
        "graph, walk each completed operation's gating chain, and "
        "attribute its latency to queue / network / quorum / restart time "
        "(the categories sum to the operation's duration).  Prints a "
        "per-kind aggregate table; --json writes the full per-operation "
        "report.",
    )
    p_cpath.add_argument("trace_file", help="JSONL trace to attribute")
    p_cpath.add_argument("--json", metavar="PATH",
                         help="write the full report as JSON")
    p_cpath.add_argument("--quiet", action="store_true",
                         help="suppress the stdout table (use with --json)")
    p_cpath.set_defaults(fn=_cmd_trace_critical_path)

    p_diff = trace_sub.add_parser(
        "diff",
        help="find the first diverging record between two traces",
        description="Walk two traces in lockstep and report the earliest "
        "record where they differ: its seq, a field-level delta, and the "
        "shared-prefix context.  Exit 0 when identical, 1 on divergence.",
    )
    p_diff.add_argument("trace_a", help="first JSONL trace")
    p_diff.add_argument("trace_b", help="second JSONL trace")
    p_diff.add_argument("--context", type=int, default=3, metavar="N",
                        help="shared-prefix records to show before the "
                        "divergence (default 3)")
    p_diff.add_argument("--json", metavar="PATH",
                        help="write the divergence (or null) as JSON")
    p_diff.set_defaults(fn=_cmd_trace_diff)

    p_series = trace_sub.add_parser(
        "series",
        help="windowed virtual-time series (events, in-flight ops, shards)",
        description="Derive windowed counter series from the trace: "
        "records per window by category, operations started/completed, "
        "open operations (concurrency), and per-shard activity for "
        "sharded traces.",
    )
    p_series.add_argument("trace_file", help="JSONL trace to window")
    p_series.add_argument("--window", type=float, default=0.0, metavar="W",
                          help="window width in virtual-time units "
                          "(default: span/buckets)")
    p_series.add_argument("--buckets", type=int, default=20, metavar="N",
                          help="number of windows when --window is unset "
                          "(default 20)")
    p_series.add_argument("--json", metavar="PATH",
                          help="write the series as JSON")
    p_series.add_argument("--quiet", action="store_true",
                          help="suppress the stdout table (use with --json)")
    p_series.set_defaults(fn=_cmd_trace_series)
    return parser


#: ``trace`` subcommand names, used by the backwards-compatibility shim in
#: :func:`main` — ``python -m repro trace FILE`` predates the subcommands
#: and still works as shorthand for ``trace summary FILE``.
_TRACE_SUBCOMMANDS = frozenset(
    {"summary", "digest", "check", "critical-path", "diff", "series"}
)


def _normalise_argv(argv: Sequence[str]) -> List[str]:
    """Insert ``summary`` into legacy ``trace FILE`` invocations."""
    argv = list(argv)
    if (
        len(argv) >= 2
        and argv[0] == "trace"
        and argv[1] not in _TRACE_SUBCOMMANDS
        and not argv[1].startswith("-")
    ):
        argv.insert(1, "summary")
    return argv


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status.

    0 = ok, 1 = diff/violations, 2 = error, 3 = interrupted but resumable
    (:data:`~repro.experiments.resilience.INTERRUPT_EXIT_CODE`: a journal
    was flushed, rerun with ``--resume`` to continue).
    """
    parser = build_parser()
    args = parser.parse_args(_normalise_argv(sys.argv[1:] if argv is None else argv))
    try:
        return args.fn(args)
    except GracefulInterrupt as interrupt:
        # Commands with an active journal handle this themselves (with a
        # resume hint); this is the backstop for every other code path.
        print(f"interrupted: {interrupt.signal_name}", file=sys.stderr)
        return INTERRUPT_EXIT_CODE
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        path = getattr(error, "path", None)
        if path:
            print(f"  at: {path}", file=sys.stderr)
        return 2
