"""Serial and parallel execution of run specs.

Every run is deterministic in *virtual* time (the simulation kernel is a
seeded, single-threaded event queue), so fanning runs out across
``multiprocessing`` workers changes wall-clock time only: the results are
bit-identical to a serial execution regardless of scheduling.  That property
is what makes the parallel executor safe to use for paper-style sweeps —
and it is asserted by the test-suite.

Two consumption styles:

* :func:`execute_many` — returns the full result list in the order of its
  ``runs`` argument, for any worker count.
* :func:`execute_stream` — a generator yielding ``(index, result)`` pairs in
  *completion* order (via ``imap_unordered`` when parallel), calling an
  optional ``progress(done, total)`` after each run.  Long sweeps stream
  into chunked sinks without holding every result in memory, and the index
  lets order-sensitive consumers reassemble the input order.

Worker pools are *warm*: the first parallel call forks a pool, and chained
sweeps within the same process reuse it instead of re-forking — short
repeated sweeps no longer pay a fork + import per call.  The pool is
invalidated (and re-forked on next use) when the requested worker count or
the scenario registry changes, and torn down at interpreter exit (or
explicitly via :func:`shutdown_pool`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import sys
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.registry import get_scenario, registry_version
from repro.experiments.sweep import RunSpec

__all__ = [
    "RunResult",
    "execute_run",
    "execute_run_captured",
    "execute_many",
    "execute_stream",
    "run_with_stable_stack",
    "shutdown_pool",
]

ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class RunResult:
    """The outcome of one run: the spec that produced it plus its result dict."""

    scenario: str
    params: Tuple[Tuple[str, Any], ...]
    result: Dict[str, Any]

    @property
    def run_id(self) -> str:
        """The stable identifier of the run that produced this result."""
        return RunSpec(self.scenario, self.params).run_id


def execute_run(run: RunSpec) -> RunResult:
    """Resolve ``run.scenario`` in the registry and execute it."""
    entry = get_scenario(run.scenario)
    result = entry.execute(run.params_dict)
    return RunResult(scenario=run.scenario, params=run.params, result=result)


def execute_run_captured(run: RunSpec) -> RunResult:
    """Like :func:`execute_run`, but a failing run *is* a result.

    Any :class:`~repro.errors.ReproError` the run raises — a deadlocked
    kernel after crashing beyond ``f``, a timeout, a configuration the
    builder rejects — comes back as ``{"error": {"type", "message"}}``
    instead of propagating.  Chaos campaigns deliberately sample
    configurations that kill the run; with plain :func:`execute_run` the
    first such run would tear down the whole ``imap_unordered`` stream.
    The captured dict is deterministic (exception type and message only),
    so campaign reports stay byte-identical across serial and parallel
    execution.

    Non-:class:`~repro.errors.ReproError` exceptions are captured too —
    a ``RecursionError`` from an LHS-sampled config is a finding, not a
    reason to lose the campaign — but marked ``"unexpected": true`` so
    oracles and readers can tell a library-diagnosed failure from a bug
    the library never anticipated.  ``KeyboardInterrupt``/``SystemExit``
    (and other ``BaseException``\\ s) still propagate.
    """
    from repro.errors import ReproError

    try:
        return execute_run(run)
    except ReproError as error:
        return RunResult(
            scenario=run.scenario,
            params=run.params,
            result={
                "scenario": run.scenario,
                "error": {"type": type(error).__name__, "message": str(error)},
            },
        )
    except Exception as error:
        return RunResult(
            scenario=run.scenario,
            params=run.params,
            result={
                "scenario": run.scenario,
                "error": {
                    "type": type(error).__name__,
                    "message": str(error),
                    "unexpected": True,
                },
            },
        )


#: Python recursion limit inside stable-stack threads: the CPython default,
#: pinned so an embedder's own limit cannot move the abort point either.
_STABLE_STACK_LIMIT = 1000


def run_with_stable_stack(fn: Callable[..., Any], *args: Any) -> Any:
    """Call ``fn(*args)`` on a fresh thread with a pinned recursion limit.

    A run that recurses to the interpreter's limit (the documented
    weight-gain refresh churn does, under sustained transfer load) aborts at
    a depth that depends on how deep the *caller's* stack already is — so
    the same run produces a longer trace at the REPL top level than inside
    a worker process or a test harness.  Results are unaffected (the abort
    lands in the post-report settle phase), but byte-identical *traces*
    across serial/parallel execution need a stable starting depth.  A fresh
    thread starts from a constant base depth, and pinning the recursion
    limit removes the embedder's ``sys.setrecursionlimit`` as a variable.
    Exceptions propagate unchanged.
    """
    box: List[Any] = []
    error: List[BaseException] = []

    def target() -> None:
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(_STABLE_STACK_LIMIT)
        try:
            box.append(fn(*args))
        except BaseException as exc:  # re-raised on the calling thread
            error.append(exc)
        finally:
            sys.setrecursionlimit(limit)

    thread = threading.Thread(target=target, name="repro-stable-stack")
    thread.start()
    thread.join()
    if error:
        raise error[0]
    return box[0]


def _execute_indexed(indexed: Tuple[int, RunSpec]) -> Tuple[int, RunResult]:
    index, run = indexed
    return index, execute_run(run)


def _execute_indexed_captured(
    indexed: Tuple[int, RunSpec]
) -> Tuple[int, RunResult]:
    index, run = indexed
    return index, execute_run_captured(run)


def _execute_stable(run: RunSpec) -> RunResult:
    return run_with_stable_stack(execute_run, run)


def _execute_stable_captured(run: RunSpec) -> RunResult:
    return run_with_stable_stack(execute_run_captured, run)


def _execute_indexed_stable(
    indexed: Tuple[int, RunSpec]
) -> Tuple[int, RunResult]:
    index, run = indexed
    return index, _execute_stable(run)


def _execute_indexed_stable_captured(
    indexed: Tuple[int, RunSpec]
) -> Tuple[int, RunResult]:
    index, run = indexed
    return index, _execute_stable_captured(run)


#: (capture_errors, stable_stack) -> (per-run executor, indexed executor).
_EXECUTORS: Dict[
    Tuple[bool, bool],
    Tuple[Callable[[RunSpec], RunResult], Callable[..., Tuple[int, RunResult]]],
] = {
    (False, False): (execute_run, _execute_indexed),
    (True, False): (execute_run_captured, _execute_indexed_captured),
    (False, True): (_execute_stable, _execute_indexed_stable),
    (True, True): (_execute_stable_captured, _execute_indexed_stable_captured),
}


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork inherits the already-populated registry; spawn re-imports only the
    # built-in catalogue inside execute_run via the registry's lazy loader.
    # Caveat: on spawn-only platforms (e.g. Windows), scenarios registered at
    # runtime by the caller are unknown to the workers — register them at
    # import time of a module the workers also import, or use workers=1.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# The warm pool: one live Pool per process, keyed by (worker count, registry
# version at fork time).  Chained sweeps with the same shape reuse it; the
# active-stream refcount keeps a mid-stream pool from being torn down when a
# differently-shaped stream starts concurrently (that stream gets a private,
# stream-lifetime pool instead).
_warm_pool: Optional[multiprocessing.pool.Pool] = None
_warm_key: Optional[Tuple[int, int]] = None
_warm_active = 0
_atexit_registered = False


def shutdown_pool() -> None:
    """Tear down the warm worker pool (no-op when none is alive).

    Called automatically at interpreter exit; exposed for tests and for
    long-lived embedders that want to reclaim the workers earlier.  Any
    execute_stream generator still consuming the pool is abandoned.
    """
    global _warm_pool, _warm_key, _warm_active
    pool, _warm_pool, _warm_key, _warm_active = _warm_pool, None, None, 0
    if pool is not None:
        # terminate() rather than close(): an abandoned execute_stream
        # generator may have left tasks queued that nobody will consume.
        pool.terminate()
        pool.join()


def _checkout_pool(processes: int) -> Tuple[multiprocessing.pool.Pool, bool]:
    """Return ``(pool, private)`` for one stream's lifetime.

    The warm pool is reused when its key matches (several same-shape streams
    may share it — ``imap_unordered`` jobs are independent) and re-forked
    when it is stale *and idle*.  A stale pool with live consumers must not
    be torn down under them, so a differently-shaped concurrent stream gets
    a private pool that dies with the stream (``private=True``).
    """
    global _warm_pool, _warm_key, _warm_active, _atexit_registered
    key = (processes, registry_version())
    if _warm_pool is not None and _warm_key == key:
        _warm_active += 1
        return _warm_pool, False
    if _warm_pool is not None and _warm_active > 0:
        return _pool_context().Pool(processes=processes), True
    shutdown_pool()
    if not _atexit_registered:
        _atexit_registered = True
        atexit.register(shutdown_pool)
    _warm_pool = _pool_context().Pool(processes=processes)
    _warm_key = key
    _warm_active = 1
    return _warm_pool, False


def _release_pool(
    pool: multiprocessing.pool.Pool, private: bool, completed: bool
) -> None:
    global _warm_active
    if private:
        pool.terminate()
        pool.join()
        return
    if pool is _warm_pool:
        # (An explicit shutdown_pool() mid-stream already zeroed the count.)
        _warm_active = max(0, _warm_active - 1)
        if not completed and _warm_active == 0:
            # An abandoned stream leaves queued runs nobody will consume;
            # match the old per-call-pool semantics and cancel them rather
            # than burning CPU in the background.  (If another stream still
            # shares the pool we must keep it alive; its orphans drain.)
            shutdown_pool()


def execute_stream(
    runs: Iterable[RunSpec],
    workers: int = 1,
    progress: Optional[ProgressCallback] = None,
    capture_errors: bool = False,
    stable_stack: bool = False,
) -> Iterator[Tuple[int, RunResult]]:
    """Yield ``(input_index, result)`` pairs as runs complete.

    Serial execution (``workers=1``) yields in input order; parallel
    execution yields in completion order.  Either way every input index
    appears exactly once, and ``progress`` (if given) is called with
    ``(completed, total)`` after each run.  With ``capture_errors`` a run
    raising :class:`~repro.errors.ReproError` yields an ``{"error": ...}``
    result instead of killing the stream (see :func:`execute_run_captured`)
    — the mode chaos campaigns stream in, where lethal configurations are
    findings rather than failures.  ``stable_stack`` executes each run via
    :func:`run_with_stable_stack`, making recursion-limited trace tails
    identical across serial and parallel execution.
    """
    run_list = list(runs)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    execute, execute_indexed = _EXECUTORS[(capture_errors, stable_stack)]
    total = len(run_list)
    done = 0
    if workers == 1 or total <= 1:
        for index, run in enumerate(run_list):
            result = execute(run)
            done += 1
            if progress is not None:
                progress(done, total)
            yield index, result
        return
    pool, private = _checkout_pool(min(workers, total))
    try:
        for index, result in pool.imap_unordered(
            execute_indexed, list(enumerate(run_list))
        ):
            done += 1
            if progress is not None:
                progress(done, total)
            yield index, result
    finally:
        # Runs on exhaustion and on generator close/GC, so the refcount (or
        # the private pool) is released even for abandoned streams.
        _release_pool(pool, private, completed=done == total)


def execute_many(
    runs: Iterable[RunSpec],
    workers: int = 1,
    progress: Optional[ProgressCallback] = None,
    capture_errors: bool = False,
    stable_stack: bool = False,
) -> List[RunResult]:
    """Execute every run, optionally fanning out across worker processes.

    Results come back in the order of ``runs`` for any worker count.
    """
    run_list = list(runs)
    results: List[Optional[RunResult]] = [None] * len(run_list)
    for index, result in execute_stream(
        run_list, workers=workers, progress=progress,
        capture_errors=capture_errors, stable_stack=stable_stack,
    ):
        results[index] = result
    return [result for result in results if result is not None]
