"""Serial and parallel execution of run specs.

Every run is deterministic in *virtual* time (the simulation kernel is a
seeded, single-threaded event heap), so fanning runs out across
``multiprocessing`` workers changes wall-clock time only: the results are
bit-identical to a serial execution regardless of scheduling.  That property
is what makes the parallel executor safe to use for paper-style sweeps —
and it is asserted by the test-suite.

Two consumption styles:

* :func:`execute_many` — returns the full result list in the order of its
  ``runs`` argument, for any worker count.
* :func:`execute_stream` — a generator yielding ``(index, result)`` pairs in
  *completion* order (via ``imap_unordered`` when parallel), calling an
  optional ``progress(done, total)`` after each run.  Long sweeps stream
  into chunked sinks without holding every result in memory, and the index
  lets order-sensitive consumers reassemble the input order.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.registry import get_scenario
from repro.experiments.sweep import RunSpec

__all__ = ["RunResult", "execute_run", "execute_many", "execute_stream"]

ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class RunResult:
    """The outcome of one run: the spec that produced it plus its result dict."""

    scenario: str
    params: Tuple[Tuple[str, Any], ...]
    result: Dict[str, Any]

    @property
    def run_id(self) -> str:
        """The stable identifier of the run that produced this result."""
        return RunSpec(self.scenario, self.params).run_id


def execute_run(run: RunSpec) -> RunResult:
    """Resolve ``run.scenario`` in the registry and execute it."""
    entry = get_scenario(run.scenario)
    result = entry.execute(run.params_dict)
    return RunResult(scenario=run.scenario, params=run.params, result=result)


def _execute_indexed(indexed: Tuple[int, RunSpec]) -> Tuple[int, RunResult]:
    index, run = indexed
    return index, execute_run(run)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork inherits the already-populated registry; spawn re-imports only the
    # built-in catalogue inside execute_run via the registry's lazy loader.
    # Caveat: on spawn-only platforms (e.g. Windows), scenarios registered at
    # runtime by the caller are unknown to the workers — register them at
    # import time of a module the workers also import, or use workers=1.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def execute_stream(
    runs: Iterable[RunSpec],
    workers: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> Iterator[Tuple[int, RunResult]]:
    """Yield ``(input_index, result)`` pairs as runs complete.

    Serial execution (``workers=1``) yields in input order; parallel
    execution yields in completion order.  Either way every input index
    appears exactly once, and ``progress`` (if given) is called with
    ``(completed, total)`` after each run.
    """
    run_list = list(runs)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    total = len(run_list)
    done = 0
    if workers == 1 or total <= 1:
        for index, run in enumerate(run_list):
            result = execute_run(run)
            done += 1
            if progress is not None:
                progress(done, total)
            yield index, result
        return
    with _pool_context().Pool(processes=min(workers, total)) as pool:
        for index, result in pool.imap_unordered(
            _execute_indexed, list(enumerate(run_list))
        ):
            done += 1
            if progress is not None:
                progress(done, total)
            yield index, result


def execute_many(
    runs: Iterable[RunSpec],
    workers: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> List[RunResult]:
    """Execute every run, optionally fanning out across worker processes.

    Results come back in the order of ``runs`` for any worker count.
    """
    run_list = list(runs)
    results: List[Optional[RunResult]] = [None] * len(run_list)
    for index, result in execute_stream(run_list, workers=workers, progress=progress):
        results[index] = result
    return [result for result in results if result is not None]
