"""Serial and parallel execution of run specs.

Every run is deterministic in *virtual* time (the simulation kernel is a
seeded, single-threaded event heap), so fanning runs out across
``multiprocessing`` workers changes wall-clock time only: the results are
bit-identical to a serial execution regardless of scheduling.  That property
is what makes the parallel executor safe to use for paper-style sweeps —
and it is asserted by the test-suite.

``Pool.map`` preserves input order, so :func:`execute_many` always returns
results in the order of its ``runs`` argument, for any worker count.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError
from repro.experiments.registry import get_scenario
from repro.experiments.sweep import RunSpec

__all__ = ["RunResult", "execute_run", "execute_many"]


@dataclass(frozen=True)
class RunResult:
    """The outcome of one run: the spec that produced it plus its result dict."""

    scenario: str
    params: Tuple[Tuple[str, Any], ...]
    result: Dict[str, Any]

    @property
    def run_id(self) -> str:
        return RunSpec(self.scenario, self.params).run_id


def execute_run(run: RunSpec) -> RunResult:
    """Resolve ``run.scenario`` in the registry and execute it."""
    entry = get_scenario(run.scenario)
    result = entry.execute(run.params_dict)
    return RunResult(scenario=run.scenario, params=run.params, result=result)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork inherits the already-populated registry; spawn re-imports only the
    # built-in catalogue inside execute_run via the registry's lazy loader.
    # Caveat: on spawn-only platforms (e.g. Windows), scenarios registered at
    # runtime by the caller are unknown to the workers — register them at
    # import time of a module the workers also import, or use workers=1.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def execute_many(runs: Iterable[RunSpec], workers: int = 1) -> List[RunResult]:
    """Execute every run, optionally fanning out across worker processes."""
    run_list = list(runs)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if workers == 1 or len(run_list) <= 1:
        return [execute_run(run) for run in run_list]
    with _pool_context().Pool(processes=min(workers, len(run_list))) as pool:
        return pool.map(execute_run, run_list)
