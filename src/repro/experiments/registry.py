"""The global scenario registry.

Two kinds of entries live here:

* :class:`SpecScenario` — a declarative :class:`~repro.experiments.spec.
  ScenarioSpec` executed by the generic driver; its sweepable parameters are
  the dotted paths of the spec tree (``cluster.n``, ``workload.keys.zipf_s``,
  ``seed`` ...).
* :class:`FunctionScenario` — a plain function registered with the
  :func:`scenario` decorator; its sweepable parameters are the function's
  keyword arguments (every parameter must carry a default, so a scenario is
  always runnable with no arguments).

Every scenario executes to a JSON-serialisable dict, which is what the
executor, the result sinks and the CLI all operate on.  The built-in
catalogue (:mod:`repro.experiments.catalogue`) is imported lazily on first
lookup so that importing :mod:`repro` stays cheap and cycle-free.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.spec import ScenarioSpec, run_spec

__all__ = [
    "Scenario",
    "FunctionScenario",
    "SpecScenario",
    "scenario",
    "register",
    "register_spec",
    "unregister",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "catalogue_payload",
    "registry_version",
]

_REGISTRY: Dict[str, "Scenario"] = {}
_builtin_loaded = False
_version = 0


def registry_version() -> int:
    """A counter bumped on every registration change.

    The parallel executor's warm worker pool snapshots this when it forks:
    forked workers inherit the registry as of that moment, so a pool is only
    reused while the registry is unchanged (a runtime-registered scenario
    must trigger a re-fork to be visible in the workers).
    """
    return _version


def _ensure_builtin() -> None:
    """Import the built-in catalogue exactly once (idempotent)."""
    global _builtin_loaded
    if not _builtin_loaded:
        _builtin_loaded = True
        import repro.experiments.catalogue  # noqa: F401  (registers on import)


class Scenario:
    """A named, parameterised experiment that executes to a result dict."""

    kind = "abstract"

    def __init__(
        self,
        name: str,
        description: str,
        tags: Tuple[str, ...],
        defaults: Mapping[str, Any],
    ) -> None:
        if not name:
            raise ConfigurationError("scenario name must not be empty")
        self.name = name
        self.description = description
        self.tags = tuple(tags)
        self.defaults = dict(defaults)

    def execute(self, params: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Run the scenario with ``params`` layered over its defaults."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionScenario(Scenario):
    """A scenario backed by a plain function with fully-defaulted kwargs."""

    kind = "function"

    def __init__(
        self,
        fn: Callable[..., Mapping[str, Any]],
        name: str,
        description: str = "",
        tags: Tuple[str, ...] = (),
    ) -> None:
        defaults: Dict[str, Any] = {}
        for parameter in inspect.signature(fn).parameters.values():
            if parameter.default is inspect.Parameter.empty:
                raise ConfigurationError(
                    f"scenario {name!r}: parameter {parameter.name!r} needs a "
                    "default value (scenarios must be runnable with no arguments)"
                )
            defaults[parameter.name] = parameter.default
        if not description and fn.__doc__:
            description = fn.__doc__.strip().splitlines()[0]
        super().__init__(name, description, tags, defaults)
        self._fn = fn

    def execute(self, params: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Call the function with ``params`` merged over its keyword defaults."""
        merged = dict(self.defaults)
        unknown = set(params or {}) - set(self.defaults)
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r} has no parameters {sorted(unknown)}; "
                f"available: {sorted(self.defaults)}"
            )
        merged.update(params or {})
        return dict(self._fn(**merged))


class SpecScenario(Scenario):
    """A scenario backed by a declarative :class:`ScenarioSpec`."""

    kind = "spec"

    def __init__(self, spec: ScenarioSpec, tags: Tuple[str, ...] = ()) -> None:
        # The uniform section protocol supplies the sweepable parameter map.
        super().__init__(spec.name, spec.description, tags, spec.flatten())
        self.spec = spec

    def execute(self, params: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Apply ``params`` as dotted-path overrides and run the spec."""
        return run_spec(self.spec.with_overrides(params))


def register(entry: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the global registry."""
    global _version
    if not replace and entry.name in _REGISTRY:
        raise ConfigurationError(f"scenario {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry
    _version += 1
    return entry


def register_spec(
    spec: ScenarioSpec, tags: Tuple[str, ...] = (), replace: bool = False
) -> SpecScenario:
    """Register a declarative spec under its own name."""
    entry = SpecScenario(spec, tags=tags)
    register(entry, replace=replace)
    return entry


def unregister(name: str) -> None:
    """Remove a scenario (used by tests; unknown names are ignored)."""
    global _version
    if _REGISTRY.pop(name, None) is not None:
        _version += 1


def scenario(
    name: str,
    description: str = "",
    tags: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Callable[..., Mapping[str, Any]]], Callable[..., Mapping[str, Any]]]:
    """Decorator: register ``fn`` as a :class:`FunctionScenario`.

    The decorated function is returned unchanged, so it stays directly
    callable (the ported benchmarks call the functions as plain code).
    """

    def wrap(fn: Callable[..., Mapping[str, Any]]) -> Callable[..., Mapping[str, Any]]:
        register(FunctionScenario(fn, name, description, tags), replace=replace)
        return fn

    return wrap


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name, loading the built-in catalogue on demand."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(scenario_names()) or '(none)'}"
        ) from None


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario (catalogue included)."""
    _ensure_builtin()
    return sorted(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    """Every registered scenario, sorted by name (catalogue included)."""
    _ensure_builtin()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def catalogue_payload(
    entries: Optional[List[Scenario]] = None,
) -> List[Dict[str, Any]]:
    """The machine-readable scenario catalogue, one object per scenario.

    This is the single payload behind both ``python -m repro list --json``
    and the serving layer's ``GET /scenarios``: name, description, tags,
    kind, the parameter/default map (defaults rendered with ``repr`` so the
    payload stays JSON-serialisable for any value type) and ``sweepable`` —
    the sorted axis names a sweep may target (dotted spec paths for
    declarative scenarios, keyword arguments for function scenarios).
    """
    return [
        {
            "name": entry.name,
            "description": entry.description,
            "tags": list(entry.tags),
            "kind": entry.kind,
            "parameters": {
                key: repr(value)
                for key, value in sorted(entry.defaults.items())
            },
            "sweepable": sorted(entry.defaults),
        }
        for entry in (all_scenarios() if entries is None else entries)
    ]
