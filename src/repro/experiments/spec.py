"""Declarative scenario specifications (Spec v2) and the generic driver.

A :class:`ScenarioSpec` describes one simulated experiment without running
it.  Every part of the description is a *section* — a frozen dataclass
implementing the uniform :class:`~repro.experiments.sections.SpecSection`
protocol (``to_dict`` / ``from_dict`` / ``flatten`` / ``validate`` /
``build``) — and the spec itself is just the root section composing the
others:

* :class:`ClusterSpec` — flavour, size, fault threshold, sharding, weights;
* :class:`WorkloadSpec` — key popularity × arrivals × mix × phases (or a
  recorded trace), every leaf sweepable (``workload.keys.zipf_s``);
* :class:`LatencySpec` — the latency model, plus the slowdown wrapper;
* :class:`MonitoringSpec` — the probe → policy → controller feedback loop
  (interval, window, policy kind + threshold, controller gain, per-shard vs
  global scope), built by :func:`repro.sim.runner.install_monitoring` into
  the existing :class:`~repro.monitoring.monitor.LatencyMonitor` / policy /
  :class:`~repro.monitoring.controller.WeightController` objects;
* :class:`FaultSpec` — crash/recover schedules and partition/heal windows,
  built into a :class:`~repro.sim.failures.FailureSchedule`;
* :class:`TransferEvent` — scheduled weight transfers (the protocol knob
  the paper is about).

Because the protocol is uniform, a spec round-trips through JSON
(:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`, or
:func:`load_spec_file` for files — see ``examples/specs/``), flattens into
one dotted-path parameter dict for the sweep engine (``cluster.n``,
``monitoring.policy.threshold``, ``faults.crashes``, ``seed``), and
rebuilds with :meth:`ScenarioSpec.with_overrides`.

:func:`run_spec` is the generic driver: build the cluster, install
monitoring, generate the workload, arm faults and transfers, run, and
return a plain JSON-serialisable result dict.  Scenarios that do not fit
the cluster-plus-workload mold (analytic comparisons, protocol
walkthroughs) register plain functions instead — see
:mod:`repro.experiments.registry`.
"""

from __future__ import annotations

import dataclasses
import functools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError
from repro.experiments.sections import SpecSection, unflatten
from repro.net.latency import (
    ConstantLatency,
    GrayFailureLatency,
    LatencyModel,
    LogNormalLatency,
    SlowdownLatency,
    UniformLatency,
)
from repro.sim.cluster import (
    Cluster,
    ShardedCluster,
    build_dynamic_cluster,
    build_sharded_cluster,
    build_static_cluster,
)
from repro.sim.failures import FailureSchedule, windows_overlap
from repro.sim.metrics import LatencySummary
from repro.sim.runner import MonitoringHarness, install_monitoring, run_workload
from repro.sim.workload import Workload
from repro.monitoring.policy import (
    proportional_inverse_latency_weights,
    wheat_style_weights,
)
from repro.obs import Observer, observing, trace_digest, write_trace
from repro.storage.sharded import expand_process_names, shard_process_name
from repro.types import ProcessId, VirtualTime, Weight, server_set
from repro.workloads.arrivals import (
    ArrivalProcess,
    ClosedLoopArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.keys import HotspotKeys, KeyDistribution, UniformKeys, ZipfianKeys
from repro.workloads.mix import OperationMix
from repro.workloads.phases import Phase
from repro.workloads.stats import workload_stats
from repro.workloads.trace import read_trace

__all__ = [
    "SpecSection",
    "unflatten",
    "LatencySpec",
    "ClusterSpec",
    "KeySpec",
    "ArrivalSpec",
    "MixSpec",
    "PhaseSpec",
    "WorkloadSpec",
    "PolicySpec",
    "MonitoringSpec",
    "ObservabilitySpec",
    "PartitionSpec",
    "FaultSpec",
    "FailureSpec",
    "TransferEvent",
    "ScenarioSpec",
    "run_spec",
    "flatten_spec",
    "load_spec_file",
]

CLUSTER_FLAVOURS = ("dynamic-weighted", "static-majority", "static-weighted")
LATENCY_KINDS = ("constant", "uniform", "lognormal")
KEY_KINDS = ("uniform", "zipfian", "hotspot")
ARRIVAL_KINDS = ("closed", "poisson", "onoff")
POLICY_KINDS = ("inverse-latency", "wheat")
MONITORING_SCOPES = ("per-shard", "global")


@dataclass(frozen=True)
class LatencySpec(SpecSection):
    """Which :class:`~repro.net.latency.LatencyModel` to build, and how.

    ``kind`` selects the model (``constant`` / ``uniform`` / ``lognormal``);
    the remaining fields parameterise it.  A non-empty ``slow`` tuple wraps
    the model in :class:`~repro.net.latency.SlowdownLatency`, degrading the
    listed processes by ``slow_factor`` from ``slow_start`` on.  On a
    sharded cluster a canonical name in ``slow`` (``s1``) degrades that
    server's instance in every shard; a qualified name (``s1#2``) degrades
    one shard's instance only.

    A non-empty ``degraded`` tuple additionally wraps the model in
    :class:`~repro.net.latency.GrayFailureLatency`: the listed processes
    suffer a *gray failure* — slow but alive — paying ``degraded_factor``
    times the base delay plus a flat ``degraded_stall`` per message during
    ``[degraded_start, degraded_end)``.  Every gray knob is a sweepable
    dotted path (``latency.degraded``, ``latency.degraded_factor``, ...),
    which is how chaos campaigns (:mod:`repro.chaos`) sample the gray
    region of the fault space.  Name resolution follows the same
    canonical/qualified rule as ``slow``.
    """

    kind: str = "constant"
    value: VirtualTime = 1.0
    low: VirtualTime = 0.5
    high: VirtualTime = 1.5
    median: VirtualTime = 1.0
    sigma: float = 0.3
    slow: Tuple[ProcessId, ...] = ()
    slow_factor: float = 8.0
    slow_start: VirtualTime = 0.0
    slow_end: Optional[VirtualTime] = None
    # Gray-failure knobs, appended after the slowdown block so positional
    # construction of older specs keeps meaning what it meant.
    degraded: Tuple[ProcessId, ...] = ()
    degraded_factor: float = 4.0
    degraded_stall: VirtualTime = 0.0
    degraded_start: VirtualTime = 0.0
    degraded_end: Optional[VirtualTime] = None

    def _validate(self) -> None:
        if self.kind not in LATENCY_KINDS:
            raise ConfigurationError(
                f"unknown latency kind {self.kind!r}; "
                "expected constant, uniform or lognormal"
            )
        if self.degraded_factor < 1.0:
            raise ConfigurationError(
                "latency.degraded_factor must be >= 1 (gray nodes are slow, "
                f"not fast), got {self.degraded_factor}"
            )
        if self.degraded_stall < 0:
            raise ConfigurationError(
                "latency.degraded_stall must be non-negative, "
                f"got {self.degraded_stall}"
            )
        if self.degraded_start < 0:
            raise ConfigurationError(
                "latency.degraded_start must be non-negative, "
                f"got {self.degraded_start}"
            )
        if (self.degraded_end is not None
                and self.degraded_end <= self.degraded_start):
            raise ConfigurationError(
                f"latency.degraded_end={self.degraded_end} must be after "
                f"degraded_start={self.degraded_start}"
            )

    def build(self, seed: int = 0, shards: int = 1) -> LatencyModel:
        """Construct the configured latency model (seeded for jittery kinds).

        ``shards`` resolves the ``slow`` names into the sharded namespace
        (canonical names expand to every shard's instance) so slowdown
        scenarios keep degrading the right processes when swept over
        ``cluster.shards``.
        """
        if self.kind == "constant":
            model: LatencyModel = ConstantLatency(self.value)
        elif self.kind == "uniform":
            model = UniformLatency(self.low, self.high, seed=seed)
        elif self.kind == "lognormal":
            model = LogNormalLatency(self.median, self.sigma, seed=seed)
        else:
            raise ConfigurationError(
                f"unknown latency kind {self.kind!r}; "
                "expected constant, uniform or lognormal"
            )
        if self.slow:
            model = SlowdownLatency(
                model,
                slow=expand_process_names(tuple(self.slow), shards),
                factor=self.slow_factor,
                start_at=self.slow_start,
                end_at=self.slow_end,
            )
        if self.degraded:
            model = GrayFailureLatency(
                model,
                degraded=expand_process_names(tuple(self.degraded), shards),
                factor=self.degraded_factor,
                stall=self.degraded_stall,
                start_at=self.degraded_start,
                end_at=self.degraded_end,
            )
        return model


@dataclass(frozen=True)
class ClusterSpec(SpecSection):
    """Cluster flavour, size, fault threshold, sharding and initial weights.

    ``n``, ``f`` and ``initial_weights`` describe one replica group; with
    ``shards > 1`` that group is the *per-shard template* and the deployment
    runs ``shards`` independent copies of it behind a key-hash router (so a
    sweep over ``cluster.shards`` scales the key space out without touching
    any other axis).  ``shards`` is sweepable like every other field.
    """

    flavour: str = "dynamic-weighted"
    n: int = 5
    f: Optional[int] = None
    client_count: int = 2
    initial_weights: Tuple[Tuple[ProcessId, float], ...] = ()
    shards: int = 1

    def _validate(self) -> None:
        self.system_config()  # raises the canonical errors without building

    def system_config(self) -> SystemConfig:
        """Build the (per-shard) :class:`SystemConfig` this spec describes."""
        if self.flavour not in CLUSTER_FLAVOURS:
            raise ConfigurationError(
                f"unknown cluster flavour {self.flavour!r}; "
                f"expected one of {CLUSTER_FLAVOURS}"
            )
        if self.shards < 1:
            raise ConfigurationError(
                f"cluster.shards must be at least 1, got {self.shards}"
            )
        if not self.initial_weights:
            return SystemConfig.uniform(self.n, f=self.f)
        weights = {pid: weight for pid, weight in self.initial_weights}
        if len(weights) != self.n:
            raise ConfigurationError(
                f"cluster.n={self.n} does not match the {len(weights)} explicit "
                "initial_weights; override both together"
            )
        if self.f is None:
            raise ConfigurationError("explicit initial_weights require an explicit f")
        return SystemConfig(
            servers=server_set(len(weights)),
            f=self.f,
            initial_weights=weights,
        )

    def build(
        self, config: SystemConfig, latency: LatencyModel
    ) -> Union[Cluster, ShardedCluster]:
        """Wire up the deployment: one register, or ``shards`` of them.

        ``shards == 1`` takes the classic single-register path, so existing
        scenarios and their checked-in baselines are bit-identical to the
        pre-sharding behaviour.
        """
        if self.shards > 1:
            return build_sharded_cluster(
                config,
                shards=self.shards,
                latency=latency,
                client_count=self.client_count,
                flavour=self.flavour,
            )
        if self.flavour == "dynamic-weighted":
            return build_dynamic_cluster(
                config, latency=latency, client_count=self.client_count
            )
        return build_static_cluster(
            config,
            latency=latency,
            client_count=self.client_count,
            weighted=(self.flavour == "static-weighted"),
        )


@dataclass(frozen=True)
class KeySpec(SpecSection):
    """Which key-popularity distribution to build, and how.

    ``kind`` selects ``uniform`` / ``zipfian`` / ``hotspot``; the remaining
    fields parameterise the chosen distribution and are ignored by the
    others (so sweeps can flip ``kind`` without invalidating sibling axes).
    """

    kind: str = "uniform"
    space: int = 16
    zipf_s: float = 1.1
    hot_fraction: float = 0.125
    hot_weight: float = 0.9
    offset: int = 0

    def _validate(self) -> None:
        if self.kind not in KEY_KINDS:
            raise ConfigurationError(
                f"unknown key distribution kind {self.kind!r}; "
                "expected uniform, zipfian or hotspot"
            )
        if self.space < 1:
            raise ConfigurationError(
                f"workload.keys.space must be at least 1, got {self.space}"
            )

    def build(self) -> KeyDistribution:
        """Construct the configured key-popularity distribution."""
        if self.kind == "uniform":
            return UniformKeys(self.space)
        if self.kind == "zipfian":
            return ZipfianKeys(self.space, s=self.zipf_s)
        if self.kind == "hotspot":
            return HotspotKeys(
                self.space,
                hot_fraction=self.hot_fraction,
                hot_weight=self.hot_weight,
                offset=self.offset,
            )
        raise ConfigurationError(
            f"unknown key distribution kind {self.kind!r}; "
            "expected uniform, zipfian or hotspot"
        )


@dataclass(frozen=True)
class ArrivalSpec(SpecSection):
    """Which arrival process to build, and how.

    ``kind`` selects ``closed`` (think-time loop) / ``poisson`` (open-loop)
    / ``onoff`` (bursty open-loop); the remaining fields parameterise the
    chosen process and are ignored by the others.
    """

    kind: str = "closed"
    mean_think_time: VirtualTime = 1.0
    rate: float = 1.0
    burst_rate: float = 4.0
    burst_length: VirtualTime = 5.0
    idle_time: VirtualTime = 10.0

    def _validate(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival kind {self.kind!r}; expected closed, poisson or onoff"
            )

    def build(self) -> ArrivalProcess:
        """Construct the configured arrival process."""
        if self.kind == "closed":
            return ClosedLoopArrivals(self.mean_think_time)
        if self.kind == "poisson":
            return PoissonArrivals(self.rate)
        if self.kind == "onoff":
            return OnOffArrivals(
                burst_rate=self.burst_rate,
                burst_length=self.burst_length,
                idle_time=self.idle_time,
            )
        raise ConfigurationError(
            f"unknown arrival kind {self.kind!r}; expected closed, poisson or onoff"
        )


@dataclass(frozen=True)
class MixSpec(SpecSection):
    """Read/write ratio and multi-key fan-out of one logical operation."""

    read_ratio: float = 0.5
    keys_per_op: int = 1

    def _validate(self) -> None:
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ConfigurationError(
                f"workload.mix.read_ratio must be within [0, 1], got {self.read_ratio}"
            )
        if self.keys_per_op < 1:
            raise ConfigurationError(
                f"workload.mix.keys_per_op must be at least 1, got {self.keys_per_op}"
            )

    def build(self) -> OperationMix:
        """Construct the configured operation mix."""
        return OperationMix(read_ratio=self.read_ratio, keys_per_op=self.keys_per_op)


_PHASE_AXES = ("keys", "arrivals", "mix")


@dataclass(frozen=True)
class PhaseSpec(SpecSection):
    """A mid-run workload flip: at ``at``, apply ``overrides`` to the base axes.

    ``overrides`` are dotted paths *within the workload section* and apply to
    the base workload (not cumulatively to earlier phases), e.g.
    ``(("keys.offset", 8), ("mix.read_ratio", 0.9))``.  Only the three axis
    subtrees (``keys`` / ``arrivals`` / ``mix``) may be overridden.
    """

    at: VirtualTime
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def _validate(self) -> None:
        if self.at < 0:
            raise ConfigurationError(
                f"phase start times must be non-negative, got {self.at}"
            )
        for entry in self.overrides:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                raise ConfigurationError(
                    f"invalid phase override {entry!r}: expected (path, value)"
                )
            parts = str(entry[0]).split(".")
            if parts[0] not in _PHASE_AXES or len(parts) < 2:
                raise ConfigurationError(
                    f"phase override {entry[0]!r} must target a field inside one of "
                    f"the workload axes {_PHASE_AXES} (e.g. 'keys.offset')"
                )


@dataclass(frozen=True)
class WorkloadSpec(SpecSection):
    """The pluggable workload section: axes, phases, or a trace to replay."""

    operations_per_client: int = 10
    keys: KeySpec = KeySpec()
    arrivals: ArrivalSpec = ArrivalSpec()
    mix: MixSpec = MixSpec()
    phases: Tuple[PhaseSpec, ...] = ()
    trace: Optional[str] = None

    def _validate(self) -> None:
        if self.operations_per_client < 1:
            raise ConfigurationError(
                "workload.operations_per_client must be at least 1, "
                f"got {self.operations_per_client}"
            )

    def _phase(self, spec: "PhaseSpec") -> Phase:
        overridden = self
        for key, value in spec.overrides:
            parts = key.split(".")
            if parts[0] not in _PHASE_AXES or len(parts) < 2:
                raise ConfigurationError(
                    f"phase override {key!r} must target a field inside one of "
                    f"the workload axes {_PHASE_AXES} (e.g. 'keys.offset')"
                )
            overridden = _replace_path(overridden, key, parts, value)
        return Phase(
            start=spec.at,
            keys=overridden.keys.build(),
            arrivals=overridden.arrivals.build(),
            mix=overridden.mix.build(),
        )

    def build(self, clients: Tuple[ProcessId, ...], seed: int) -> Workload:
        """Generate the workload for ``clients`` (or replay the ``trace``)."""
        if self.trace is not None:
            return read_trace(self.trace)
        generator = WorkloadGenerator(
            keys=self.keys.build(),
            arrivals=self.arrivals.build(),
            mix=self.mix.build(),
            phases=tuple(self._phase(phase) for phase in _coerce_phases(self.phases)),
        )
        return generator.generate(
            clients, operations_per_client=self.operations_per_client, seed=seed
        )


@dataclass(frozen=True)
class PolicySpec(SpecSection):
    """Which weight-assignment policy closes the monitoring loop, and how.

    ``kind`` selects :func:`~repro.monitoring.policy.
    proportional_inverse_latency_weights` (``inverse-latency``) or
    :func:`~repro.monitoring.policy.wheat_style_weights` (``wheat``);
    ``threshold`` is the controller dead-band (deficits below it are never
    chased), ``margin`` the RP-Integrity clipping margin, and
    ``extra_servers`` the WHEAT deployment surplus (ignored by the inverse-
    latency policy).
    """

    kind: str = "inverse-latency"
    threshold: Weight = 0.05
    margin: float = 0.05
    extra_servers: int = 1

    def _validate(self) -> None:
        if self.kind not in POLICY_KINDS:
            raise ConfigurationError(
                f"unknown policy kind {self.kind!r}; "
                "expected inverse-latency or wheat"
            )
        if self.threshold <= 0:
            raise ConfigurationError(
                f"monitoring.policy.threshold must be positive, got {self.threshold}"
            )
        if self.margin < 0:
            raise ConfigurationError(
                f"monitoring.policy.margin must be non-negative, got {self.margin}"
            )

    def build(self):
        """The policy as a ``(latency_summary, config) -> targets`` callable."""
        if self.kind == "inverse-latency":
            return functools.partial(
                proportional_inverse_latency_weights, margin=self.margin
            )
        if self.kind == "wheat":
            return functools.partial(
                wheat_style_weights,
                extra_servers=self.extra_servers,
                margin=self.margin,
            )
        raise ConfigurationError(
            f"unknown policy kind {self.kind!r}; expected inverse-latency or wheat"
        )


@dataclass(frozen=True)
class MonitoringSpec(SpecSection):
    """The declarative probe → policy → controller feedback loop.

    When ``enabled``, :func:`run_spec` installs — before the workload starts
    — a prober that pings every server each ``interval``, a
    :class:`~repro.monitoring.monitor.LatencyMonitor` (sliding ``window``,
    EWMA ``ewma_alpha``) folding the replies, the :class:`PolicySpec` policy
    mapping the summary to target weights, and one
    :class:`~repro.monitoring.controller.WeightController` per server taking
    a step of at most ``gain`` towards them; the loop runs ``rounds`` times.

    On a sharded cluster ``scope`` picks the topology: ``per-shard`` wires a
    fully independent loop into every shard (own prober ``mon#k``, own
    monitor, own controllers — nothing shared), while ``global`` runs one
    machine-level monitor that probes every shard's instances, aggregates
    latencies per canonical machine, and drives all shards' controllers with
    the same target map.  Monitoring requires the ``dynamic-weighted``
    flavour (controllers speak the paper's ``transfer``).
    """

    enabled: bool = False
    interval: VirtualTime = 5.0
    rounds: int = 8
    window: int = 32
    ewma_alpha: float = 0.3
    policy: PolicySpec = PolicySpec()
    gain: Weight = 0.3
    scope: str = "per-shard"
    prober: ProcessId = "mon"

    def _validate(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(
                f"monitoring.interval must be positive, got {self.interval}"
            )
        if self.rounds < 1:
            raise ConfigurationError(
                f"monitoring.rounds must be at least 1, got {self.rounds}"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"monitoring.window must be at least 1, got {self.window}"
            )
        if not 0 < self.ewma_alpha <= 1:
            raise ConfigurationError(
                f"monitoring.ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.gain <= 0:
            raise ConfigurationError(
                f"monitoring.gain must be positive, got {self.gain}"
            )
        if self.scope not in MONITORING_SCOPES:
            raise ConfigurationError(
                f"unknown monitoring scope {self.scope!r}; "
                f"expected one of {MONITORING_SCOPES}"
            )
        if not self.prober:
            raise ConfigurationError("monitoring.prober must not be empty")

    def build(self, cluster: Union[Cluster, ShardedCluster]) -> MonitoringHarness:
        """Install the loop on ``cluster`` (see :func:`~repro.sim.runner.
        install_monitoring`) and return the harness holding the controllers."""
        return install_monitoring(
            cluster,
            interval=self.interval,
            rounds=self.rounds,
            window=self.window,
            ewma_alpha=self.ewma_alpha,
            tolerance=self.policy.threshold,
            max_step=self.gain,
            scope=self.scope,
            prober=self.prober,
            policy=self.policy.build(),
        )


@dataclass(frozen=True)
class ObservabilitySpec(SpecSection):
    """The declarative switch for the :mod:`repro.obs` layer.

    Off by default — and when off, :func:`run_spec` installs no observer, the
    components capture ``None``, and the result dict is byte-identical to
    pre-observability baselines.  When ``enabled``:

    * ``metrics`` adds a ``metrics`` block (the sorted
      :meth:`~repro.obs.metrics.MetricsRegistry.as_dict` snapshot) to the
      result;
    * ``trace`` adds a ``trace`` block (record count + deterministic digest)
      and, if ``trace_path`` is set, writes the canonical JSONL there —
      inside the worker process, so per-run files compose with the
      multiprocessing sweep executor;
    * ``trace_messages`` gates the per-message flow records independently
      (the chattiest trace category).

    Every field is sweepable (``observability.enabled``,
    ``observability.trace_path``), which is how ``python -m repro sweep
    --trace-dir`` turns tracing on per run.
    """

    enabled: bool = False
    metrics: bool = True
    trace: bool = True
    trace_messages: bool = True
    trace_path: Optional[str] = None

    def _validate(self) -> None:
        if self.enabled and not (self.metrics or self.trace):
            raise ConfigurationError(
                "observability.enabled without metrics or trace records nothing; "
                "disable it instead"
            )
        if self.trace_path is not None and not self.trace_path:
            raise ConfigurationError("observability.trace_path must not be empty")
        if self.trace_path is not None and not (self.enabled and self.trace):
            raise ConfigurationError(
                "observability.trace_path requires observability.enabled and "
                "observability.trace"
            )

    def build(self) -> Optional[Observer]:
        """The observer :func:`run_spec` installs, or ``None`` when disabled."""
        if not self.enabled:
            return None
        return Observer(
            metrics=self.metrics,
            trace=self.trace,
            trace_messages=self.trace_messages,
        )


@dataclass(frozen=True)
class PartitionSpec(SpecSection):
    """A partition window: split into ``groups`` at ``at``, heal at ``heal_at``.

    Processes (servers *and* clients) not listed in any group form an
    implicit extra group; on a sharded cluster canonical names expand to
    every shard's instance.  ``heal_at=None`` never heals.
    """

    at: VirtualTime
    groups: Tuple[Tuple[ProcessId, ...], ...] = ()
    heal_at: Optional[VirtualTime] = None

    def _validate(self) -> None:
        if self.at < 0:
            raise ConfigurationError(
                f"partition times must be non-negative, got {self.at}"
            )
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ConfigurationError(
                f"partition heal_at={self.heal_at} must be after at={self.at}"
            )
        if not self.groups or any(not group for group in self.groups):
            raise ConfigurationError(
                "a partition window needs at least one non-empty group"
            )

    def overlaps(self, other: "PartitionSpec") -> bool:
        """Whether two windows are live at the same time (heal() is global)."""
        return windows_overlap(self.at, self.heal_at, other.at, other.heal_at)


@dataclass(frozen=True)
class FaultSpec(SpecSection):
    """The fault-injection section: crash/recover schedules, partition windows.

    ``crashes`` and ``recoveries`` are ``(process, virtual_time)`` pairs;
    ``outages`` are self-contained ``(process, at, until)`` triples — a
    crash with its matching recovery (``until=None`` never recovers) in one
    value, which is what lets a chaos campaign sample a fault window as a
    single sweep axis; ``partitions`` are :class:`PartitionSpec` windows.
    On a sharded cluster a canonical process name (``s4``) targets that
    server's instance in every shard (the machine hosting them); a
    qualified name (``s4#2``) targets one shard's instance only — the same
    *per-group targeting* rule latency slowdowns use, so fault scenarios
    sweep over ``cluster.shards`` unchanged.  (``failures`` is accepted as
    a legacy alias for this section in spec files and dotted override
    paths.)

    Validation is strict and names the offending dotted path: malformed
    entries, negative times, a recovery scheduled at or before its crash
    (replayed in :meth:`~repro.sim.failures.FailureSchedule.arm` order:
    recoveries resolve before crashes at equal times), and overlapping
    partition windows all raise :class:`~repro.errors.ConfigurationError`
    from :meth:`validate`; :meth:`check_processes` additionally rejects
    faults targeting processes the built cluster does not have — both run
    before the simulation starts, so a bad schedule can never fail (or
    silently no-op) mid-run.
    """

    crashes: Tuple[Tuple[ProcessId, VirtualTime], ...] = ()
    recoveries: Tuple[Tuple[ProcessId, VirtualTime], ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    # Appended after partitions so positional construction of older specs
    # keeps meaning what it meant.
    outages: Tuple[Tuple[ProcessId, VirtualTime, Optional[VirtualTime]], ...] = ()

    def _validate(self) -> None:
        for label, entries in (("crashes", self.crashes),
                               ("recoveries", self.recoveries)):
            for index, entry in enumerate(entries):
                if not (isinstance(entry, tuple) and len(entry) == 2):
                    raise ConfigurationError(
                        f"invalid faults.{label}[{index}] entry {entry!r}: "
                        "expected (process, at)",
                        path=f"faults.{label}[{index}]",
                    )
                if entry[1] < 0:
                    raise ConfigurationError(
                        f"faults.{label}[{index}] times must be non-negative, "
                        f"got {entry[1]}",
                        path=f"faults.{label}[{index}]",
                    )
        for index, entry in enumerate(_coerce_outages(self.outages)):
            process, at, until = entry
            if at < 0:
                raise ConfigurationError(
                    f"faults.outages[{index}] times must be non-negative, "
                    f"got {at}",
                    path=f"faults.outages[{index}]",
                )
            if until is not None and until <= at:
                raise ConfigurationError(
                    f"faults.outages[{index}] recovers at until={until}, at or "
                    f"before its crash at={at}",
                    path=f"faults.outages[{index}]",
                )
        self._check_recovery_order()
        windows = list(_coerce_partitions(self.partitions))
        for index, window in enumerate(windows):
            window._validate()
            for other_index, other in enumerate(windows[index + 1:], index + 1):
                if window.overlaps(other):
                    raise ConfigurationError(
                        f"partition windows faults.partitions[{index}] and "
                        f"faults.partitions[{other_index}] overlap: "
                        f"[{window.at}, {window.heal_at}) and "
                        f"[{other.at}, {other.heal_at})",
                        path=f"faults.partitions[{other_index}]",
                    )

    def _check_recovery_order(self) -> None:
        """Reject recoveries that resolve while their process is not down.

        The timeline (explicit crashes/recoveries plus expanded outages) is
        replayed exactly the way :meth:`~repro.sim.failures.FailureSchedule.
        arm` schedules it — recoveries before crashes at equal times — so a
        recovery applied while its process is up is a schedule that would
        silently no-op mid-run; it raises here instead, naming the entry.
        Names are compared as given (canonical vs qualified names live in
        different namespaces until build time).
        """
        timeline = []
        for index, (process, at) in enumerate(self.crashes):
            timeline.append((at, 1, process, f"faults.crashes[{index}]"))
        for index, (process, at) in enumerate(self.recoveries):
            timeline.append((at, 0, process, f"faults.recoveries[{index}]"))
        for index, (process, at, until) in enumerate(
            _coerce_outages(self.outages)
        ):
            timeline.append((at, 1, process, f"faults.outages[{index}]"))
            if until is not None:
                timeline.append((until, 0, process, f"faults.outages[{index}]"))
        down = set()
        for at, is_crash, process, path in sorted(
            timeline, key=lambda entry: (entry[0], entry[1], entry[2])
        ):
            if is_crash:
                down.add(process)  # double crash is idempotent, not an error
            elif process in down:
                down.discard(process)
            else:
                raise ConfigurationError(
                    f"{path} recovers {process!r} at t={at}, but it is not "
                    "down then (recoveries resolve before crashes at equal "
                    "times; schedule the crash strictly earlier)",
                    path=path,
                )

    def check_processes(
        self, known: Tuple[ProcessId, ...], shards: int = 1
    ) -> None:
        """Reject fault targets the cluster does not have, naming the path.

        ``known`` is the built network's process id set (servers, clients,
        probers); targets expand through the same canonical/qualified rule
        :meth:`build` uses, so this check accepts exactly the schedules that
        would resolve at run time — a typo'd node fails here, up front,
        instead of raising :class:`~repro.errors.UnknownProcessError` at its
        scheduled virtual time.
        """
        known_set = set(known)

        def check(path: str, process: ProcessId) -> None:
            for pid in expand_process_names((process,), shards):
                if pid not in known_set:
                    raise ConfigurationError(
                        f"{path} targets unknown process {pid!r} "
                        f"(known: {', '.join(sorted(known_set))})",
                        path=path,
                    )

        for index, (process, _) in enumerate(self.crashes):
            check(f"faults.crashes[{index}]", process)
        for index, (process, _) in enumerate(self.recoveries):
            check(f"faults.recoveries[{index}]", process)
        for index, (process, _, _) in enumerate(_coerce_outages(self.outages)):
            check(f"faults.outages[{index}]", process)
        for index, window in enumerate(_coerce_partitions(self.partitions)):
            for group_index, group in enumerate(window.groups):
                for process in group:
                    check(
                        f"faults.partitions[{index}].groups[{group_index}]",
                        process,
                    )

    def build(self, shards: int = 1) -> Optional[FailureSchedule]:
        """Construct the fault schedule, or ``None`` when no faults are set."""
        if not (self.crashes or self.recoveries or self.partitions
                or self.outages):
            return None
        schedule = FailureSchedule()
        for process, at in self.crashes:
            for pid in expand_process_names((process,), shards):
                schedule.crash(pid, at)
        for process, at in self.recoveries:
            for pid in expand_process_names((process,), shards):
                schedule.recover(pid, at)
        for process, at, until in _coerce_outages(self.outages):
            for pid in expand_process_names((process,), shards):
                schedule.outage(pid, at, until=until)
        for window in _coerce_partitions(self.partitions):
            resolved = _partition_window(window, shards)
            schedule.partition_window(
                resolved.groups, at=resolved.at, heal_at=resolved.heal_at
            )
        return schedule


def _partition_window(window: PartitionSpec, shards: int):
    from repro.sim.failures import PartitionWindow

    return PartitionWindow(
        groups=tuple(
            expand_process_names(tuple(group), shards) for group in window.groups
        ),
        at=window.at,
        heal_at=window.heal_at,
    )


# Deprecation shim: the pre-v2 name of the fault section.  ``FailureSpec(
# crashes=...)`` keeps constructing, and ``failures.*`` override paths /
# spec-file keys alias onto ``faults.*`` (see ScenarioSpec._aliases).
FailureSpec = FaultSpec


@dataclass(frozen=True)
class TransferEvent(SpecSection):
    """A scheduled weight transfer: at ``at``, ``source`` sends ``delta`` to ``target``.

    ``shard`` selects which replica group executes the transfer in a sharded
    deployment (weights are per-shard state); it is ignored — and must stay
    0 — when the cluster runs a single register.
    """

    at: VirtualTime
    source: ProcessId
    target: ProcessId
    delta: float
    shard: int = 0

    def _validate(self) -> None:
        if self.shard < 0:
            raise ConfigurationError(
                f"transfer shard indices are 0-based, got {self.shard}"
            )


@dataclass(frozen=True)
class ScenarioSpec(SpecSection):
    """A fully declarative experiment description (the root spec section)."""

    name: str
    description: str = ""
    cluster: ClusterSpec = ClusterSpec()
    workload: WorkloadSpec = WorkloadSpec()
    latency: LatencySpec = LatencySpec()
    monitoring: MonitoringSpec = MonitoringSpec()
    faults: FaultSpec = FaultSpec()
    transfers: Tuple[TransferEvent, ...] = ()
    seed: int = 0
    max_time: Optional[VirtualTime] = None
    # Appended after max_time so positional construction of older specs
    # keeps meaning what it meant.
    observability: ObservabilitySpec = ObservabilitySpec()

    _non_sweepable = ("name", "description")
    _aliases = {"failures": "faults"}

    def _validate(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must not be empty")

    def with_overrides(self, params: Optional[Mapping[str, Any]] = None) -> "ScenarioSpec":
        """Rebuild the spec with dotted-path overrides applied.

        ``{"cluster.n": 9, "seed": 3}`` replaces nested fields; unknown paths
        raise :class:`~repro.errors.ConfigurationError`.  Overrides are
        applied in sorted key order, so the result is deterministic.
        """
        spec = self
        for key in sorted(params or {}):
            spec = _replace_path(spec, key, key.split("."), (params or {})[key])
        return spec


def _replace_path(obj: Any, full_key: str, parts: List[str], value: Any) -> Any:
    if not dataclasses.is_dataclass(obj):
        raise ConfigurationError(
            f"parameter path {full_key!r} descends into a non-spec value",
            path=full_key,
        )
    field_names = {field.name for field in dataclasses.fields(obj)}
    head = parts[0]
    if isinstance(obj, SpecSection):
        head = type(obj)._aliases.get(head, head)
    if head not in field_names:
        raise ConfigurationError(
            f"unknown parameter {full_key!r}: {type(obj).__name__} has no field {head!r} "
            f"(fields: {', '.join(sorted(field_names))})",
            path=full_key,
        )
    if len(parts) == 1:
        if isinstance(value, list):  # CLI/JSON hand tuples in as lists
            value = tuple(tuple(item) if isinstance(item, list) else item for item in value)
        return dataclasses.replace(obj, **{head: value})
    child = _replace_path(getattr(obj, head), full_key, parts[1:], value)
    return dataclasses.replace(obj, **{head: child})


def flatten_spec(spec: ScenarioSpec) -> Dict[str, Any]:
    """The sweepable parameters of a spec as a flat dotted-path dict.

    A thin wrapper over the uniform :meth:`SpecSection.flatten` protocol
    (kept for pre-v2 callers): nested spec sections recurse to arbitrary
    depth, so the composable workload axes come out as
    ``workload.keys.zipf_s``, the monitoring loop as
    ``monitoring.policy.threshold`` and so on.  Tuple-valued fields
    (transfers, phases, crashes) stay single leaves.
    """
    return spec.flatten()


def load_spec_file(path: str) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a JSON spec file and validate it.

    The file holds exactly the :meth:`ScenarioSpec.to_dict` shape (see
    ``examples/specs/``); unknown keys are rejected, lists become tuples,
    nested sections may use the positional shorthand (``"transfers":
    [[5.0, "s1", "s2", 0.25]]``).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ConfigurationError(f"cannot read spec file {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"spec file {path!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"spec file {path!r} must contain a JSON object, "
            f"got {type(data).__name__}"
        )
    return ScenarioSpec.from_dict(data).validate()


def _summary_dict(summary: Optional[LatencySummary]) -> Optional[Dict[str, float]]:
    return None if summary is None else summary.as_dict()


def _coerce_transfers(transfers: Tuple[Any, ...]) -> Tuple[TransferEvent, ...]:
    # Overrides arriving from the CLI/JSON are plain sequences, not events.
    coerced = []
    for entry in transfers:
        if isinstance(entry, TransferEvent):
            coerced.append(entry)
        else:
            try:
                coerced.append(TransferEvent(*entry))
            except TypeError as error:
                raise ConfigurationError(
                    f"invalid transfer {entry!r}: expected "
                    "(at, source, target, delta[, shard])"
                ) from error
    return tuple(coerced)


def _coerce_phases(phases: Tuple[Any, ...]) -> Tuple[PhaseSpec, ...]:
    # Overrides arriving from the CLI/JSON are plain sequences, not PhaseSpecs.
    coerced = []
    for entry in phases:
        if isinstance(entry, PhaseSpec):
            coerced.append(entry)
            continue
        try:
            at, overrides = entry
            coerced.append(
                PhaseSpec(at=at, overrides=tuple((key, value) for key, value in overrides))
            )
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"invalid phase {entry!r}: expected (at, ((path, value), ...))"
            ) from error
    return tuple(coerced)


def _coerce_outages(
    outages: Tuple[Any, ...],
) -> Tuple[Tuple[ProcessId, VirtualTime, Optional[VirtualTime]], ...]:
    # Overrides arriving from the CLI/JSON are plain sequences; an omitted
    # third element means "never recovers".
    coerced = []
    for entry in outages:
        try:
            if isinstance(entry, str) or not 2 <= len(entry) <= 3:
                raise ValueError(entry)
            process, at = entry[0], entry[1]
            until = entry[2] if len(entry) > 2 else None
            coerced.append((process, at, until))
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"invalid outage {entry!r}: expected (process, at[, until])"
            ) from error
    return tuple(coerced)


def _coerce_partitions(partitions: Tuple[Any, ...]) -> Tuple[PartitionSpec, ...]:
    # Overrides arriving from the CLI/JSON are plain sequences, not specs.
    coerced = []
    for entry in partitions:
        if isinstance(entry, PartitionSpec):
            coerced.append(entry)
            continue
        try:
            at, groups = entry[0], entry[1]
            heal_at = entry[2] if len(entry) > 2 else None
            coerced.append(
                PartitionSpec(
                    at=at,
                    groups=tuple(tuple(group) for group in groups),
                    heal_at=heal_at,
                )
            )
        except (TypeError, ValueError, IndexError) as error:
            raise ConfigurationError(
                f"invalid partition {entry!r}: expected "
                "(at, ((pid, ...), ...)[, heal_at])"
            ) from error
    return tuple(coerced)


def run_spec(spec: ScenarioSpec) -> Dict[str, Any]:
    """Execute a declarative scenario and return a JSON-serialisable result.

    The result always carries the latency summaries, message counts, transfer
    outcomes and achieved workload statistics; monitoring-enabled runs add a
    ``monitoring`` block (control rounds, transfers attempted); sharded runs
    (``cluster.shards > 1``) additionally report ``shards`` (per-shard
    load/latency breakdown), ``imbalance`` (hottest-shard share, max/mean
    ratio, load variance) and — for the dynamic-weighted flavour —
    ``shard_weights`` (each shard's independently evolving weight map).
    Observability-enabled runs (``observability.enabled``) add ``metrics``
    and/or ``trace`` blocks; with it disabled (the default) the result is
    byte-identical to pre-observability baselines.
    """
    spec.validate()
    observer = spec.observability.build()
    if observer is None:
        return _run_spec_inner(spec)
    # The observer must be ambient *before* the cluster is built: SimLoop,
    # Network and ShardedStore capture it at construction time.
    with observing(observer):
        result = _run_spec_inner(spec)
    if observer.metrics is not None:
        result["metrics"] = observer.metrics.as_dict()
    if observer.trace is not None:
        records = observer.trace.records
        result["trace"] = {
            "records": len(records),
            "digest": trace_digest(records),
        }
        if spec.observability.trace_path:
            write_trace(records, spec.observability.trace_path)
    return result


def _run_spec_inner(spec: ScenarioSpec) -> Dict[str, Any]:
    transfers = _coerce_transfers(spec.transfers)
    if transfers and spec.cluster.flavour != "dynamic-weighted":
        raise ConfigurationError(
            "scheduled transfers require the dynamic-weighted flavour, "
            f"got {spec.cluster.flavour!r}"
        )
    if spec.monitoring.enabled and spec.cluster.flavour != "dynamic-weighted":
        raise ConfigurationError(
            "monitoring-driven reassignment requires the dynamic-weighted "
            f"flavour, got {spec.cluster.flavour!r}"
        )
    sharded = spec.cluster.shards > 1
    for event in transfers:
        if not 0 <= event.shard < spec.cluster.shards:
            raise ConfigurationError(
                f"transfer at t={event.at} targets shard {event.shard}, but the "
                f"cluster has {spec.cluster.shards} shard(s)"
            )
    config = spec.cluster.system_config()
    cluster = spec.cluster.build(
        config, spec.latency.build(seed=spec.seed, shards=spec.cluster.shards)
    )
    # Monitoring installs before the workload generates or any transfer task
    # spawns, matching the imperative scenarios' wiring order event-for-event.
    harness: Optional[MonitoringHarness] = None
    if spec.monitoring.enabled:
        harness = spec.monitoring.build(cluster)
    # Fault targets are checked against the fully built membership (servers,
    # clients, probers) so a typo'd node fails before the run, not at its
    # scheduled virtual time.
    spec.faults.check_processes(
        tuple(cluster.network.process_ids()), shards=spec.cluster.shards
    )
    workload = spec.workload.build(tuple(cluster.clients), seed=spec.seed)

    transfer_outcomes: List[Dict[str, Any]] = []

    async def fire(event: TransferEvent) -> None:
        if event.at > 0:
            await cluster.loop.sleep(event.at)
        if sharded:
            server = cluster.server(event.shard, event.source)
        else:
            server = cluster.servers[event.source]
        # Spec-level transfers name canonical servers (s1); inside a sharded
        # deployment the reassignment protocol addresses shard-qualified peers.
        target = (
            shard_process_name(event.target, event.shard) if sharded else event.target
        )
        outcome = await server.transfer(target, event.delta)
        entry = {
            "at": event.at,
            "source": event.source,
            "target": event.target,
            "delta": event.delta,
            "effective": outcome.effective,
            "latency": outcome.latency,
        }
        if sharded:
            entry["shard"] = event.shard
        transfer_outcomes.append(entry)

    for event in transfers:
        cluster.loop.create_task(fire(event), name=f"transfer@{event.at}")

    report = run_workload(
        cluster,
        workload,
        failures=spec.faults.build(shards=spec.cluster.shards),
        max_time=spec.max_time,
    )
    cluster.loop.run()  # let trailing transfers / broadcast echoes settle

    result: Dict[str, Any] = {
        "scenario": spec.name,
        "flavour": report.flavour,
        "seed": spec.seed,
        "duration": report.duration,
        "operations": report.operations,
        "restarts": report.restarts,
        "messages": report.messages_sent,
        "read_latency": _summary_dict(report.read_latency),
        "write_latency": _summary_dict(report.write_latency),
        "transfers": transfer_outcomes,
        "workload": workload_stats(workload),
    }
    if harness is not None:
        result["monitoring"] = harness.as_dict(sharded=sharded)
    if sharded:
        result["shards"] = [summary.as_dict() for summary in report.shards or ()]
        if report.imbalance is not None:
            result["imbalance"] = report.imbalance.as_dict()
        if spec.cluster.flavour == "dynamic-weighted":
            result["shard_weights"] = {
                str(index): weights
                for index, weights in sorted(cluster.shard_weights().items())
            }
    elif spec.cluster.flavour == "dynamic-weighted":
        surviving = [
            pid for pid in config.servers if not cluster.network.is_crashed(pid)
        ]
        if surviving:
            result["weights"] = {
                pid: weight
                for pid, weight in sorted(
                    cluster.servers[surviving[0]].local_weights().items()
                )
            }
    return result
