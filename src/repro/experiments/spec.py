"""Declarative scenario specifications and the generic workload driver.

A :class:`ScenarioSpec` describes one simulated experiment without running
it: the cluster flavour and size, the latency model, the workload, the
failure schedule, scheduled weight transfers (the protocol knob the paper is
about) and the seed.  Every field lives in a small frozen dataclass, so a
spec is hashable, picklable, and can be *swept*: :meth:`ScenarioSpec.
with_overrides` rebuilds the tree with dotted-path parameter overrides
(``{"cluster.n": 9, "workload.mix.read_ratio": 0.9, "seed": 3}``), which is
the substrate the sweep engine and the CLI build on.

The workload section is itself composable: :class:`WorkloadSpec` nests a
:class:`KeySpec` (uniform / zipfian / hotspot popularity), an
:class:`ArrivalSpec` (closed-loop think time, open-loop Poisson, bursty
on/off), a :class:`MixSpec` (read ratio, multi-key fan-out) and a tuple of
:class:`PhaseSpec` mid-run axis flips — every leaf addressable by sweep
paths such as ``workload.keys.zipf_s`` or ``workload.arrivals.rate``.  A
``trace`` path replays a recorded JSONL workload instead of generating one.

:func:`run_spec` is the generic driver: build the cluster, generate the
workload, arm failures and transfers, run, and return a plain
JSON-serialisable result dict.  Scenarios that do not fit the
cluster-plus-workload mold (analytic comparisons, protocol walkthroughs)
register plain functions instead — see :mod:`repro.experiments.registry`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    SlowdownLatency,
    UniformLatency,
)
from repro.sim.cluster import (
    Cluster,
    ShardedCluster,
    build_dynamic_cluster,
    build_sharded_cluster,
    build_static_cluster,
)
from repro.sim.failures import FailureSchedule
from repro.sim.metrics import LatencySummary
from repro.sim.runner import run_workload
from repro.sim.workload import Workload
from repro.storage.sharded import expand_process_names, shard_process_name
from repro.types import ProcessId, VirtualTime, server_set
from repro.workloads.arrivals import (
    ArrivalProcess,
    ClosedLoopArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.keys import HotspotKeys, KeyDistribution, UniformKeys, ZipfianKeys
from repro.workloads.mix import OperationMix
from repro.workloads.phases import Phase
from repro.workloads.stats import workload_stats
from repro.workloads.trace import read_trace

__all__ = [
    "LatencySpec",
    "ClusterSpec",
    "KeySpec",
    "ArrivalSpec",
    "MixSpec",
    "PhaseSpec",
    "WorkloadSpec",
    "FailureSpec",
    "TransferEvent",
    "ScenarioSpec",
    "run_spec",
    "flatten_spec",
]

CLUSTER_FLAVOURS = ("dynamic-weighted", "static-majority", "static-weighted")


@dataclass(frozen=True)
class LatencySpec:
    """Which :class:`~repro.net.latency.LatencyModel` to build, and how.

    ``kind`` selects the model (``constant`` / ``uniform`` / ``lognormal``);
    the remaining fields parameterise it.  A non-empty ``slow`` tuple wraps
    the model in :class:`~repro.net.latency.SlowdownLatency`, degrading the
    listed processes by ``slow_factor`` from ``slow_start`` on.  On a
    sharded cluster a canonical name in ``slow`` (``s1``) degrades that
    server's instance in every shard; a qualified name (``s1#2``) degrades
    one shard's instance only.
    """

    kind: str = "constant"
    value: VirtualTime = 1.0
    low: VirtualTime = 0.5
    high: VirtualTime = 1.5
    median: VirtualTime = 1.0
    sigma: float = 0.3
    slow: Tuple[ProcessId, ...] = ()
    slow_factor: float = 8.0
    slow_start: VirtualTime = 0.0
    slow_end: Optional[VirtualTime] = None

    def build(self, seed: int = 0, shards: int = 1) -> LatencyModel:
        """Construct the configured latency model (seeded for jittery kinds).

        ``shards`` resolves the ``slow`` names into the sharded namespace
        (canonical names expand to every shard's instance) so slowdown
        scenarios keep degrading the right processes when swept over
        ``cluster.shards``.
        """
        if self.kind == "constant":
            model: LatencyModel = ConstantLatency(self.value)
        elif self.kind == "uniform":
            model = UniformLatency(self.low, self.high, seed=seed)
        elif self.kind == "lognormal":
            model = LogNormalLatency(self.median, self.sigma, seed=seed)
        else:
            raise ConfigurationError(
                f"unknown latency kind {self.kind!r}; "
                "expected constant, uniform or lognormal"
            )
        if self.slow:
            model = SlowdownLatency(
                model,
                slow=expand_process_names(tuple(self.slow), shards),
                factor=self.slow_factor,
                start_at=self.slow_start,
                end_at=self.slow_end,
            )
        return model


@dataclass(frozen=True)
class ClusterSpec:
    """Cluster flavour, size, fault threshold, sharding and initial weights.

    ``n``, ``f`` and ``initial_weights`` describe one replica group; with
    ``shards > 1`` that group is the *per-shard template* and the deployment
    runs ``shards`` independent copies of it behind a key-hash router (so a
    sweep over ``cluster.shards`` scales the key space out without touching
    any other axis).  ``shards`` is sweepable like every other field.
    """

    flavour: str = "dynamic-weighted"
    n: int = 5
    f: Optional[int] = None
    client_count: int = 2
    initial_weights: Tuple[Tuple[ProcessId, float], ...] = ()
    shards: int = 1

    def system_config(self) -> SystemConfig:
        """Build the (per-shard) :class:`SystemConfig` this spec describes."""
        if self.flavour not in CLUSTER_FLAVOURS:
            raise ConfigurationError(
                f"unknown cluster flavour {self.flavour!r}; "
                f"expected one of {CLUSTER_FLAVOURS}"
            )
        if self.shards < 1:
            raise ConfigurationError(
                f"cluster.shards must be at least 1, got {self.shards}"
            )
        if not self.initial_weights:
            return SystemConfig.uniform(self.n, f=self.f)
        weights = {pid: weight for pid, weight in self.initial_weights}
        if len(weights) != self.n:
            raise ConfigurationError(
                f"cluster.n={self.n} does not match the {len(weights)} explicit "
                "initial_weights; override both together"
            )
        if self.f is None:
            raise ConfigurationError("explicit initial_weights require an explicit f")
        return SystemConfig(
            servers=server_set(len(weights)),
            f=self.f,
            initial_weights=weights,
        )

    def build(
        self, config: SystemConfig, latency: LatencyModel
    ) -> Union[Cluster, ShardedCluster]:
        """Wire up the deployment: one register, or ``shards`` of them.

        ``shards == 1`` takes the classic single-register path, so existing
        scenarios and their checked-in baselines are bit-identical to the
        pre-sharding behaviour.
        """
        if self.shards > 1:
            return build_sharded_cluster(
                config,
                shards=self.shards,
                latency=latency,
                client_count=self.client_count,
                flavour=self.flavour,
            )
        if self.flavour == "dynamic-weighted":
            return build_dynamic_cluster(
                config, latency=latency, client_count=self.client_count
            )
        return build_static_cluster(
            config,
            latency=latency,
            client_count=self.client_count,
            weighted=(self.flavour == "static-weighted"),
        )


@dataclass(frozen=True)
class KeySpec:
    """Which key-popularity distribution to build, and how.

    ``kind`` selects ``uniform`` / ``zipfian`` / ``hotspot``; the remaining
    fields parameterise the chosen distribution and are ignored by the
    others (so sweeps can flip ``kind`` without invalidating sibling axes).
    """

    kind: str = "uniform"
    space: int = 16
    zipf_s: float = 1.1
    hot_fraction: float = 0.125
    hot_weight: float = 0.9
    offset: int = 0

    def build(self) -> KeyDistribution:
        """Construct the configured key-popularity distribution."""
        if self.kind == "uniform":
            return UniformKeys(self.space)
        if self.kind == "zipfian":
            return ZipfianKeys(self.space, s=self.zipf_s)
        if self.kind == "hotspot":
            return HotspotKeys(
                self.space,
                hot_fraction=self.hot_fraction,
                hot_weight=self.hot_weight,
                offset=self.offset,
            )
        raise ConfigurationError(
            f"unknown key distribution kind {self.kind!r}; "
            "expected uniform, zipfian or hotspot"
        )


@dataclass(frozen=True)
class ArrivalSpec:
    """Which arrival process to build, and how.

    ``kind`` selects ``closed`` (think-time loop) / ``poisson`` (open-loop)
    / ``onoff`` (bursty open-loop); the remaining fields parameterise the
    chosen process and are ignored by the others.
    """

    kind: str = "closed"
    mean_think_time: VirtualTime = 1.0
    rate: float = 1.0
    burst_rate: float = 4.0
    burst_length: VirtualTime = 5.0
    idle_time: VirtualTime = 10.0

    def build(self) -> ArrivalProcess:
        """Construct the configured arrival process."""
        if self.kind == "closed":
            return ClosedLoopArrivals(self.mean_think_time)
        if self.kind == "poisson":
            return PoissonArrivals(self.rate)
        if self.kind == "onoff":
            return OnOffArrivals(
                burst_rate=self.burst_rate,
                burst_length=self.burst_length,
                idle_time=self.idle_time,
            )
        raise ConfigurationError(
            f"unknown arrival kind {self.kind!r}; expected closed, poisson or onoff"
        )


@dataclass(frozen=True)
class MixSpec:
    """Read/write ratio and multi-key fan-out of one logical operation."""

    read_ratio: float = 0.5
    keys_per_op: int = 1

    def build(self) -> OperationMix:
        """Construct the configured operation mix."""
        return OperationMix(read_ratio=self.read_ratio, keys_per_op=self.keys_per_op)


_PHASE_AXES = ("keys", "arrivals", "mix")


@dataclass(frozen=True)
class PhaseSpec:
    """A mid-run workload flip: at ``at``, apply ``overrides`` to the base axes.

    ``overrides`` are dotted paths *within the workload section* and apply to
    the base workload (not cumulatively to earlier phases), e.g.
    ``(("keys.offset", 8), ("mix.read_ratio", 0.9))``.  Only the three axis
    subtrees (``keys`` / ``arrivals`` / ``mix``) may be overridden.
    """

    at: VirtualTime
    overrides: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class WorkloadSpec:
    """The pluggable workload section: axes, phases, or a trace to replay."""

    operations_per_client: int = 10
    keys: KeySpec = KeySpec()
    arrivals: ArrivalSpec = ArrivalSpec()
    mix: MixSpec = MixSpec()
    phases: Tuple[PhaseSpec, ...] = ()
    trace: Optional[str] = None

    def _phase(self, spec: "PhaseSpec") -> Phase:
        overridden = self
        for key, value in spec.overrides:
            parts = key.split(".")
            if parts[0] not in _PHASE_AXES or len(parts) < 2:
                raise ConfigurationError(
                    f"phase override {key!r} must target a field inside one of "
                    f"the workload axes {_PHASE_AXES} (e.g. 'keys.offset')"
                )
            overridden = _replace_path(overridden, key, parts, value)
        return Phase(
            start=spec.at,
            keys=overridden.keys.build(),
            arrivals=overridden.arrivals.build(),
            mix=overridden.mix.build(),
        )

    def build(self, clients: Tuple[ProcessId, ...], seed: int) -> Workload:
        """Generate the workload for ``clients`` (or replay the ``trace``)."""
        if self.trace is not None:
            return read_trace(self.trace)
        generator = WorkloadGenerator(
            keys=self.keys.build(),
            arrivals=self.arrivals.build(),
            mix=self.mix.build(),
            phases=tuple(self._phase(phase) for phase in _coerce_phases(self.phases)),
        )
        return generator.generate(
            clients, operations_per_client=self.operations_per_client, seed=seed
        )


@dataclass(frozen=True)
class FailureSpec:
    """Crash-stop events as ``(process, virtual_time)`` pairs.

    On a sharded cluster a canonical process name (``s4``) crashes that
    server's instance in every shard (the machine hosting them); a qualified
    name (``s4#2``) crashes one shard's instance only.
    """

    crashes: Tuple[Tuple[ProcessId, VirtualTime], ...] = ()

    def build(self, shards: int = 1) -> Optional[FailureSchedule]:
        """Construct the crash schedule, or ``None`` when no crashes are set."""
        if not self.crashes:
            return None
        schedule = FailureSchedule()
        for process, at in self.crashes:
            for pid in expand_process_names((process,), shards):
                schedule.crash(pid, at)
        return schedule


@dataclass(frozen=True)
class TransferEvent:
    """A scheduled weight transfer: at ``at``, ``source`` sends ``delta`` to ``target``.

    ``shard`` selects which replica group executes the transfer in a sharded
    deployment (weights are per-shard state); it is ignored — and must stay
    0 — when the cluster runs a single register.
    """

    at: VirtualTime
    source: ProcessId
    target: ProcessId
    delta: float
    shard: int = 0


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully declarative experiment description."""

    name: str
    description: str = ""
    cluster: ClusterSpec = ClusterSpec()
    workload: WorkloadSpec = WorkloadSpec()
    latency: LatencySpec = LatencySpec()
    failures: FailureSpec = FailureSpec()
    transfers: Tuple[TransferEvent, ...] = ()
    seed: int = 0
    max_time: Optional[VirtualTime] = None

    def with_overrides(self, params: Optional[Mapping[str, Any]] = None) -> "ScenarioSpec":
        """Rebuild the spec with dotted-path overrides applied.

        ``{"cluster.n": 9, "seed": 3}`` replaces nested fields; unknown paths
        raise :class:`~repro.errors.ConfigurationError`.  Overrides are
        applied in sorted key order, so the result is deterministic.
        """
        spec = self
        for key in sorted(params or {}):
            spec = _replace_path(spec, key, key.split("."), (params or {})[key])
        return spec


def _replace_path(obj: Any, full_key: str, parts: List[str], value: Any) -> Any:
    if not dataclasses.is_dataclass(obj):
        raise ConfigurationError(f"parameter path {full_key!r} descends into a non-spec value")
    field_names = {field.name for field in dataclasses.fields(obj)}
    head = parts[0]
    if head not in field_names:
        raise ConfigurationError(
            f"unknown parameter {full_key!r}: {type(obj).__name__} has no field {head!r} "
            f"(fields: {', '.join(sorted(field_names))})"
        )
    if len(parts) == 1:
        if isinstance(value, list):  # CLI/JSON hand tuples in as lists
            value = tuple(tuple(item) if isinstance(item, list) else item for item in value)
        return dataclasses.replace(obj, **{head: value})
    child = _replace_path(getattr(obj, head), full_key, parts[1:], value)
    return dataclasses.replace(obj, **{head: child})


def _flatten_into(flat: Dict[str, Any], obj: Any, prefix: str) -> None:
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        key = f"{prefix}{field.name}"
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            _flatten_into(flat, value, f"{key}.")
        else:
            flat[key] = value


def flatten_spec(spec: ScenarioSpec) -> Dict[str, Any]:
    """The sweepable parameters of a spec as a flat dotted-path dict.

    Nested spec sections recurse to arbitrary depth, so the composable
    workload axes come out as ``workload.keys.zipf_s``,
    ``workload.arrivals.rate`` and so on.  Tuple-valued fields (transfers,
    phases, crashes) stay single leaves.
    """
    flat: Dict[str, Any] = {}
    for field in dataclasses.fields(spec):
        if field.name in ("name", "description"):
            continue
        value = getattr(spec, field.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            _flatten_into(flat, value, f"{field.name}.")
        else:
            flat[field.name] = value
    return flat


def _summary_dict(summary: Optional[LatencySummary]) -> Optional[Dict[str, float]]:
    return None if summary is None else summary.as_dict()


def _coerce_transfers(transfers: Tuple[Any, ...]) -> Tuple[TransferEvent, ...]:
    # Overrides arriving from the CLI/JSON are plain sequences, not events.
    coerced = []
    for entry in transfers:
        if isinstance(entry, TransferEvent):
            coerced.append(entry)
        else:
            try:
                coerced.append(TransferEvent(*entry))
            except TypeError as error:
                raise ConfigurationError(
                    f"invalid transfer {entry!r}: expected "
                    "(at, source, target, delta[, shard])"
                ) from error
    return tuple(coerced)


def _coerce_phases(phases: Tuple[Any, ...]) -> Tuple[PhaseSpec, ...]:
    # Overrides arriving from the CLI/JSON are plain sequences, not PhaseSpecs.
    coerced = []
    for entry in phases:
        if isinstance(entry, PhaseSpec):
            coerced.append(entry)
            continue
        try:
            at, overrides = entry
            coerced.append(
                PhaseSpec(at=at, overrides=tuple((key, value) for key, value in overrides))
            )
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"invalid phase {entry!r}: expected (at, ((path, value), ...))"
            ) from error
    return tuple(coerced)


def run_spec(spec: ScenarioSpec) -> Dict[str, Any]:
    """Execute a declarative scenario and return a JSON-serialisable result.

    The result always carries the latency summaries, message counts, transfer
    outcomes and achieved workload statistics; sharded runs
    (``cluster.shards > 1``) additionally report ``shards`` (per-shard
    load/latency breakdown), ``imbalance`` (hottest-shard share, max/mean
    ratio, load variance) and — for the dynamic-weighted flavour —
    ``shard_weights`` (each shard's independently evolving weight map).
    """
    transfers = _coerce_transfers(spec.transfers)
    if transfers and spec.cluster.flavour != "dynamic-weighted":
        raise ConfigurationError(
            "scheduled transfers require the dynamic-weighted flavour, "
            f"got {spec.cluster.flavour!r}"
        )
    sharded = spec.cluster.shards > 1
    for event in transfers:
        if not 0 <= event.shard < spec.cluster.shards:
            raise ConfigurationError(
                f"transfer at t={event.at} targets shard {event.shard}, but the "
                f"cluster has {spec.cluster.shards} shard(s)"
            )
    config = spec.cluster.system_config()
    cluster = spec.cluster.build(
        config, spec.latency.build(seed=spec.seed, shards=spec.cluster.shards)
    )
    workload = spec.workload.build(tuple(cluster.clients), seed=spec.seed)

    transfer_outcomes: List[Dict[str, Any]] = []

    async def fire(event: TransferEvent) -> None:
        if event.at > 0:
            await cluster.loop.sleep(event.at)
        if sharded:
            server = cluster.server(event.shard, event.source)
        else:
            server = cluster.servers[event.source]
        # Spec-level transfers name canonical servers (s1); inside a sharded
        # deployment the reassignment protocol addresses shard-qualified peers.
        target = (
            shard_process_name(event.target, event.shard) if sharded else event.target
        )
        outcome = await server.transfer(target, event.delta)
        entry = {
            "at": event.at,
            "source": event.source,
            "target": event.target,
            "delta": event.delta,
            "effective": outcome.effective,
            "latency": outcome.latency,
        }
        if sharded:
            entry["shard"] = event.shard
        transfer_outcomes.append(entry)

    for event in transfers:
        cluster.loop.create_task(fire(event), name=f"transfer@{event.at}")

    report = run_workload(
        cluster,
        workload,
        failures=spec.failures.build(shards=spec.cluster.shards),
        max_time=spec.max_time,
    )
    cluster.loop.run()  # let trailing transfers / broadcast echoes settle

    result: Dict[str, Any] = {
        "scenario": spec.name,
        "flavour": report.flavour,
        "seed": spec.seed,
        "duration": report.duration,
        "operations": report.operations,
        "restarts": report.restarts,
        "messages": report.messages_sent,
        "read_latency": _summary_dict(report.read_latency),
        "write_latency": _summary_dict(report.write_latency),
        "transfers": transfer_outcomes,
        "workload": workload_stats(workload),
    }
    if sharded:
        result["shards"] = [summary.as_dict() for summary in report.shards or ()]
        if report.imbalance is not None:
            result["imbalance"] = report.imbalance.as_dict()
        if spec.cluster.flavour == "dynamic-weighted":
            result["shard_weights"] = {
                str(index): weights
                for index, weights in sorted(cluster.shard_weights().items())
            }
    elif spec.cluster.flavour == "dynamic-weighted":
        surviving = [
            pid for pid in config.servers if not cluster.network.is_crashed(pid)
        ]
        if surviving:
            result["weights"] = {
                pid: weight
                for pid, weight in sorted(
                    cluster.servers[surviving[0]].local_weights().items()
                )
            }
    return result
