"""repro — a reproduction of "How Hard is Asynchronous Weight Reassignment?" (ICDCS 2023).

The package implements the paper's restricted pairwise weight reassignment
protocol and the dynamic-weighted atomic storage built on it, together with
every substrate they need (a deterministic asynchronous simulation, quorum
systems, reliable broadcast, consensus and total-order baselines, asset
transfer, monitoring) and the baselines the paper compares against.

Quick start::

    from repro import SystemConfig, build_dynamic_cluster

    config = SystemConfig.uniform(5, f=1)
    cluster = build_dynamic_cluster(config)
    client = cluster.any_client()

    async def demo():
        await client.write("hello")
        await cluster.servers["s1"].transfer("s2", 0.25)   # reassign voting power
        return await client.read()

    print(cluster.loop.run_until_complete(demo()))

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every experiment.
"""

from repro.core.change import Change, ChangeSet, initial_changes
from repro.core.protocol import ReassignmentServer, TransferOutcome, read_changes
from repro.core.reductions import (
    OraclePairwiseReassignment,
    OracleWeightReassignment,
    algorithm1_propose,
    algorithm2_propose,
    paper_initial_weights,
)
from repro.core.spec import (
    SystemConfig,
    check_integrity,
    check_p_integrity,
    check_rp_integrity,
)
from repro.core.storage import (
    DynamicWeightedStorageClient,
    DynamicWeightedStorageServer,
)
from repro.net.latency import (
    ConstantLatency,
    LogNormalLatency,
    PerLinkLatency,
    SlowdownLatency,
    UniformLatency,
    WanMatrixLatency,
)
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimLoop, gather
from repro.quorum import (
    GridQuorumSystem,
    MajorityQuorumSystem,
    TreeQuorumSystem,
    WeightedMajorityQuorumSystem,
    wmqs_is_available,
)
from repro.sim.cluster import build_dynamic_cluster, build_static_cluster
from repro.sim.runner import run_workload
from repro.sim.workload import uniform_workload
from repro.workloads import WorkloadGenerator, workload_stats

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Change",
    "ChangeSet",
    "initial_changes",
    "SystemConfig",
    "check_integrity",
    "check_p_integrity",
    "check_rp_integrity",
    "ReassignmentServer",
    "TransferOutcome",
    "read_changes",
    "DynamicWeightedStorageServer",
    "DynamicWeightedStorageClient",
    "OracleWeightReassignment",
    "OraclePairwiseReassignment",
    "algorithm1_propose",
    "algorithm2_propose",
    "paper_initial_weights",
    # simulation substrate
    "SimLoop",
    "gather",
    "Network",
    "Process",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PerLinkLatency",
    "WanMatrixLatency",
    "SlowdownLatency",
    # quorum systems
    "MajorityQuorumSystem",
    "WeightedMajorityQuorumSystem",
    "GridQuorumSystem",
    "TreeQuorumSystem",
    "wmqs_is_available",
    # harness
    "build_dynamic_cluster",
    "build_static_cluster",
    "uniform_workload",
    "WorkloadGenerator",
    "workload_stats",
    "run_workload",
]
