"""Expected quorum-assembly latency for a client.

Model: a client sends a request to every server simultaneously; server ``s``
replies after round-trip latency ``rtt[s]``; the operation completes as soon
as the set of servers that have replied forms a quorum.  The completion time
is therefore the smallest latency ``L`` such that the servers with
``rtt <= L`` form a quorum — for majority-style systems, the ``k``-th
smallest round-trip time where ``k`` is the quorum cardinality needed among
the fastest servers.

This is exactly the quantity weighted quorums improve on heterogeneous WANs
(the paper's motivation and the WHEAT observation [20]): if the weight sits on
the fast servers, the client stops waiting earlier.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.types import ProcessId, VirtualTime

__all__ = ["fastest_quorum", "expected_quorum_latency", "quorum_latency_table"]


def fastest_quorum(
    quorum_system: QuorumSystem, rtt: Mapping[ProcessId, VirtualTime]
) -> Tuple[ProcessId, ...]:
    """The quorum a client assembles first: servers in ascending-RTT order."""
    missing = set(quorum_system.servers) - set(rtt)
    if missing:
        raise ConfigurationError(f"missing RTT entries for {sorted(missing)}")
    ranked = sorted(quorum_system.servers, key=lambda server: (rtt[server], server))
    assembled = []
    for server in ranked:
        assembled.append(server)
        if quorum_system.is_quorum(assembled):
            return tuple(assembled)
    raise ConfigurationError("no quorum can be assembled from the given servers")


def expected_quorum_latency(
    quorum_system: QuorumSystem, rtt: Mapping[ProcessId, VirtualTime]
) -> VirtualTime:
    """Completion latency of a one-phase quorum access under the model above."""
    quorum = fastest_quorum(quorum_system, rtt)
    return max(rtt[server] for server in quorum)


def quorum_latency_table(
    systems: Mapping[str, QuorumSystem],
    rtt_by_client: Mapping[ProcessId, Mapping[ProcessId, VirtualTime]],
) -> Dict[str, Dict[ProcessId, VirtualTime]]:
    """Latency of each quorum system from each client's vantage point."""
    table: Dict[str, Dict[ProcessId, VirtualTime]] = {}
    for name, system in systems.items():
        table[name] = {
            client: expected_quorum_latency(system, rtt)
            for client, rtt in rtt_by_client.items()
        }
    return table
