"""Analytical tools: expected quorum latency and weight planning.

These helpers compute, without running the simulator, the quantities the
paper's motivation relies on: how fast a client can assemble a (weighted)
quorum given per-server latencies, and how small quorums can become for a
given weight assignment.  Experiment E5 uses them to reproduce the
"WMQS beats MQS on heterogeneous WANs" claim.
"""

from repro.analysis.quorum_latency import (
    expected_quorum_latency,
    quorum_latency_table,
    fastest_quorum,
)
from repro.analysis.weights import (
    inverse_latency_weights,
    quorum_size_after_reassignment,
)

__all__ = [
    "expected_quorum_latency",
    "quorum_latency_table",
    "fastest_quorum",
    "inverse_latency_weights",
    "quorum_size_after_reassignment",
]
