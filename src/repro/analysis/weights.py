"""Weight planning helpers used by the analysis benchmarks."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.quorum.availability import (
    minimum_quorum_cardinality,
    wmqs_is_available,
)
from repro.types import ProcessId, VirtualTime, Weight

__all__ = ["inverse_latency_weights", "quorum_size_after_reassignment"]


def inverse_latency_weights(
    rtt: Mapping[ProcessId, VirtualTime],
    total_weight: Weight,
    f: int,
    floor_fraction: float = 0.5,
) -> Dict[ProcessId, Weight]:
    """Weights proportional to ``1/rtt``, floored so Property 1 keeps holding.

    ``floor_fraction`` expresses the per-server floor as a fraction of the
    uniform weight ``total_weight / n``; the floor guarantees no server's
    weight collapses to (near) zero, which would make the assignment fragile
    to ``f`` failures among the heavy servers.
    """
    if not rtt:
        raise ConfigurationError("need at least one server latency")
    n = len(rtt)
    floor = floor_fraction * total_weight / n
    inverse = {server: 1.0 / max(latency, 1e-6) for server, latency in rtt.items()}
    scale = total_weight / sum(inverse.values())
    weights = {server: value * scale for server, value in inverse.items()}
    # Apply the floor, removing the excess proportionally from the rest.
    clipped = {server: max(weight, floor) for server, weight in weights.items()}
    excess = sum(clipped.values()) - total_weight
    if excess > 0:
        headroom = {server: clipped[server] - floor for server in clipped}
        total_headroom = sum(headroom.values()) or 1.0
        clipped = {
            server: clipped[server] - excess * headroom[server] / total_headroom
            for server in clipped
        }
    if not wmqs_is_available(clipped, f):
        raise ConfigurationError(
            "inverse-latency weights violate Property 1 for the requested f; "
            "increase floor_fraction"
        )
    return clipped


def quorum_size_after_reassignment(
    weights: Mapping[ProcessId, Weight],
) -> int:
    """Cardinality of the smallest quorum under ``weights`` (convenience alias)."""
    return minimum_quorum_cardinality(weights)
