"""Executable problem specifications (Definitions 3, 4 and 5).

This module turns the paper's safety properties into checkable predicates:

* :func:`check_integrity` — Integrity of Definition 3 / P-Integrity of
  Definition 4: for every ``F ⊂ S`` with ``|F| = f``, ``W_F < W_S / 2``
  (equivalently, Property 1 holds for the current weights).
* :func:`check_rp_integrity` — RP-Integrity of Definition 5: every server's
  weight stays strictly above ``W_{S,0} / (2 (n - f))``.
* :func:`check_validity_one` / :func:`check_rp_validity_one` — the shape of
  the changes an operation is allowed to create.

They are pure functions over weight maps and change sets, so both the
protocols (for their local checks) and the test-suite / hypothesis verifiers
(for whole-trace validation) share the same definitions.

:class:`SystemConfig` bundles the static parameters of a deployment: the
server set ``S``, the fault threshold ``f`` and the initial weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.change import ChangeSet, initial_changes
from repro.errors import ConfigurationError, IntegrityViolation
from repro.numerics import strictly_greater
from repro.quorum.availability import wmqs_is_available
from repro.types import ProcessId, Weight

__all__ = [
    "SystemConfig",
    "weights_from_changes",
    "check_integrity",
    "check_p_integrity",
    "check_rp_integrity",
    "check_validity_one",
    "check_rp_validity_one",
    "rp_minimum_weight",
]


def weights_from_changes(
    changes: ChangeSet, servers: Sequence[ProcessId]
) -> Dict[ProcessId, Weight]:
    """Derive the current weight map ``W_{s,t}`` from a change set."""
    return changes.weights(servers)


def check_integrity(weights: Mapping[ProcessId, Weight], f: int) -> bool:
    """Integrity (Def. 3) / P-Integrity (Def. 4).

    For every subset ``F`` of ``f`` servers, ``W_F < W_S / 2``.  Checking all
    subsets is equivalent to checking the ``f`` heaviest servers, i.e. to
    Property 1.
    """
    return wmqs_is_available(weights, f)


# P-Integrity is textually identical to Integrity; the difference between the
# two problems lies in how weights may change, not in the predicate itself.
check_p_integrity = check_integrity


def rp_minimum_weight(total_initial_weight: Weight, n: int, f: int) -> Weight:
    """The RP-Integrity lower bound ``W_{S,0} / (2 (n - f))``."""
    if n <= f:
        raise ConfigurationError(f"need n > f, got n={n}, f={f}")
    return total_initial_weight / (2 * (n - f))


def check_rp_integrity(
    weights: Mapping[ProcessId, Weight],
    total_initial_weight: Weight,
    f: int,
) -> bool:
    """RP-Integrity (Def. 5): every weight stays above ``W_{S,0}/(2(n-f))``."""
    n = len(weights)
    minimum = rp_minimum_weight(total_initial_weight, n, f)
    return all(strictly_greater(weight, minimum) for weight in weights.values())


def check_validity_one(
    requested_delta: Weight, created_delta: Weight, integrity_would_hold: bool
) -> bool:
    """Validity-I (Def. 3): the created change mirrors the request, or is null.

    If completing the reassignment with the requested delta keeps Integrity,
    the created change must carry exactly that delta; otherwise it must be a
    zero-weight (null) change.
    """
    if requested_delta == 0:
        # reassign(*, 0) is not a legal invocation.
        return False
    if integrity_would_hold:
        return created_delta == requested_delta
    return created_delta == 0


def check_rp_validity_one(
    source: ProcessId,
    author: ProcessId,
    requested_delta: Weight,
    created_source_delta: Weight,
    created_target_delta: Weight,
    rp_integrity_would_hold: bool,
) -> bool:
    """RP-Validity-I (Def. 5): pairwise shape + C1 (only the source transfers)."""
    if author != source:
        # C1: only s_i may invoke transfer(s_i, *, *).
        return False
    if requested_delta == 0:
        return False
    if rp_integrity_would_hold:
        return (
            created_source_delta == -requested_delta
            and created_target_delta == requested_delta
        )
    return created_source_delta == 0 and created_target_delta == 0


@dataclass(frozen=True)
class SystemConfig:
    """Static parameters of a deployment (Section II).

    Attributes:
        servers: the server set ``S`` (order fixes the canonical indexing).
        f: the static crash-fault threshold.
        initial_weights: ``W_{s,0}`` for every server; defaults to 1.0 each.
    """

    servers: Tuple[ProcessId, ...]
    f: int
    initial_weights: Dict[ProcessId, Weight] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.servers)) != len(self.servers):
            raise ConfigurationError("duplicate server ids")
        if not self.servers:
            raise ConfigurationError("server set must not be empty")
        if self.f < 0:
            raise ConfigurationError(f"fault threshold must be >= 0, got {self.f}")
        if self.f >= len(self.servers):
            raise ConfigurationError(
                f"fault threshold f={self.f} must be < n={len(self.servers)}"
            )
        weights = dict(self.initial_weights)
        if not weights:
            weights = {server: 1.0 for server in self.servers}
        if set(weights) != set(self.servers):
            raise ConfigurationError(
                "initial_weights must cover exactly the server set"
            )
        object.__setattr__(self, "initial_weights", weights)
        if not wmqs_is_available(weights, self.f):
            raise IntegrityViolation(
                "initial weights violate Property 1 (Integrity at t=0): "
                f"weights={weights}, f={self.f}"
            )

    # -- derived quantities ----------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.servers)

    @property
    def total_initial_weight(self) -> Weight:
        return sum(self.initial_weights.values())

    @property
    def rp_min_weight(self) -> Weight:
        """The RP-Integrity bound ``W_{S,0} / (2 (n - f))``."""
        return rp_minimum_weight(self.total_initial_weight, self.n, self.f)

    def initial_change_set(self) -> ChangeSet:
        """The conventional initial changes ``<s, 1, s, W_{s,0}>``."""
        return initial_changes(self.initial_weights)

    def validate_rp_initial_weights(self) -> None:
        """Ensure the initial weights already satisfy RP-Integrity."""
        if not check_rp_integrity(self.initial_weights, self.total_initial_weight, self.f):
            raise IntegrityViolation(
                "initial weights violate RP-Integrity: some server starts at or "
                f"below the bound {self.rp_min_weight}"
            )

    # -- convenience constructors ------------------------------------------------
    @classmethod
    def uniform(
        cls, n: int, f: Optional[int] = None, weight: Weight = 1.0
    ) -> "SystemConfig":
        """``n`` servers named ``s1..sn`` with equal weights and maximal ``f``.

        When ``f`` is omitted the maximal threshold tolerated by uniform
        weights, ``ceil(n/2) - 1``, is used.
        """
        from repro.types import server_set

        servers = server_set(n)
        if f is None:
            f = (n - 1) // 2
        return cls(
            servers=servers,
            f=f,
            initial_weights={server: weight for server in servers},
        )
