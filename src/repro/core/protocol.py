"""Restricted pairwise weight reassignment (Algorithms 3 and 4).

This module is the heart of the reproduction: the consensus-free protocol
that lets servers transfer voting power between each other in an asynchronous
failure-prone system while preserving RP-Integrity (Definition 5).

Two pieces, mirroring the paper:

* :func:`read_changes` — Algorithm 3.  Any process collects the change sets
  stored by more than ``f`` servers, takes their union ``C``, writes ``C``
  back to at least ``n - f`` servers, and only then returns it.  The
  write-back is what makes RP-Validity-II hold: once a change is returned by
  some ``read_changes``, every later ``read_changes`` intersects the ``n - f``
  servers storing it in its ``f + 1``-server read phase.

* :class:`ReassignmentServer` — Algorithm 4.  Each server keeps a grow-only
  change set ``C``, a local counter, and offers the ``transfer`` operation.
  A transfer is *effective* only if the server's current weight stays above
  the RP-Integrity bound ``W_{S,0} / (2(n-f))`` after giving away ``delta``
  (condition C2); only the server itself may give its weight away (condition
  C1, enforced structurally because ``transfer`` is a method of the source
  server).  Effective transfers are reliably broadcast and acknowledged by
  ``n - f - 1`` other servers before completing.

A note on local counters: the paper reserves counter 1 for the conventional
initial change ``<s, 1, s, w>`` completed at time 0 and states that processes
increment their counter after every invocation; accordingly the first explicit
``transfer`` of a server uses counter 2 (this is also what Algorithms 1 and 2
assume when they look for changes with counter 2).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.change import Change, ChangeSet
from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError, SimulationError
from repro.net.broadcast import ReliableBroadcast
from repro.numerics import strictly_greater
from repro.net.message import Message
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimFuture
from repro.types import ProcessId, VirtualTime, Weight

__all__ = ["TransferOutcome", "ReassignmentServer", "read_changes"]

# Message kinds (kept short, matching the paper's names).
RC = "RC"  # read-changes request
RC_ACK = "RC_ACK"
WC = "WC"  # write-changes (the union write-back of Algorithm 3)
WC_ACK = "WC_ACK"
T_RB = "T_RB"  # reliable-broadcast envelope carrying a transfer
T_ACK = "T_ACK"


@dataclass(frozen=True)
class TransferOutcome:
    """The ``<Complete, c>`` message returned by a ``transfer`` invocation.

    ``effective`` transfers carry the negative source change (and its positive
    counterpart); null transfers carry a zero-weight change, as RP-Validity-I
    prescribes.
    """

    effective: bool
    change: Change
    counterpart: Optional[Change]
    started_at: VirtualTime
    completed_at: VirtualTime

    @property
    def latency(self) -> VirtualTime:
        return self.completed_at - self.started_at


class ReassignmentServer(Process):
    """A server running Algorithm 4 (and the server side of Algorithm 3)."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        config: SystemConfig,
    ) -> None:
        if pid not in config.servers:
            raise ConfigurationError(f"{pid!r} is not part of the configured server set")
        super().__init__(pid, network)
        self.config = config
        #: Local counter; counter 1 is reserved for the initial change.
        self.lc = 2
        #: The grow-only set of changes this server has stored (Algorithm 4, line 2).
        self.changes: ChangeSet = config.initial_change_set()
        self._tack_sent: Set[Tuple[ProcessId, int]] = set()
        self._tack_received: Dict[int, Set[ProcessId]] = defaultdict(set)
        self._tack_waiters: Dict[int, SimFuture] = {}
        self._transfer_in_progress = False
        #: Completed transfer outcomes, in invocation order (for benchmarks).
        self.transfer_log: List[TransferOutcome] = []

        self.rb = ReliableBroadcast(
            self, config.servers, self._on_rb_deliver, kind=T_RB
        )
        self.register_handler(RC, self._on_rc)
        self.register_handler(WC, self._on_wc)
        self.register_handler(T_ACK, self._on_tack)

    # ------------------------------------------------------------------ state
    def get_changes(self, server: ProcessId) -> ChangeSet:
        """Changes stored locally for ``server`` (Algorithm 4, ``get_changes``)."""
        return self.changes.for_server(server)

    def weight(self) -> Weight:
        """This server's current weight according to its local change set."""
        return self.changes.weight_of(self.pid)

    def weight_of(self, server: ProcessId) -> Weight:
        """The locally known weight of any server."""
        return self.changes.weight_of(server)

    def local_weights(self) -> Dict[ProcessId, Weight]:
        """The locally known full weight map."""
        return self.changes.weights(self.config.servers)

    # ------------------------------------------------------- weight-gain hook
    async def on_weight_gained(self, change: Change) -> None:
        """Hook invoked before storing a change that increases this server's weight.

        Algorithm 4 (lines 8-9) requires a server that gains weight to refresh
        its register with a storage-level read before acknowledging the
        transfer; the plain reassignment server has no register, so the
        default is a no-op.  :class:`repro.core.storage.DynamicWeightedStorageServer`
        overrides it.
        """

    # ------------------------------------------------------------ write_changes
    async def write_changes(self, new_changes: Iterable[Change]) -> None:
        """Store changes received from peers, acknowledging their authors.

        Mirrors Algorithm 4, ``write_changes``: for every not-yet-known change
        created for this server, refresh the local register first (the hook),
        then store the change and send a single ``T_ACK`` per (author,
        counter) pair.
        """
        for change in sorted(set(new_changes) - self.changes.as_frozenset()):
            if change.server == self.pid and change.author != self.pid:
                await self.on_weight_gained(change)
            self.changes = self.changes.add(change)
            key = (change.author, change.counter)
            if change.author != self.pid and key not in self._tack_sent:
                self._tack_sent.add(key)
                self.send(change.author, T_ACK, {"counter": change.counter})

    # ----------------------------------------------------------------- handlers
    def _on_rc(self, message: Message) -> None:
        target = message.payload["server"]
        self.reply(message, RC_ACK, {"changes": self.get_changes(target).sorted()})

    async def _on_wc(self, message: Message) -> None:
        await self.write_changes(message.payload["changes"])
        self.reply(message, WC_ACK, {})

    async def _on_rb_deliver(self, origin: ProcessId, payload: Dict) -> None:
        await self.write_changes(payload["changes"])

    def _on_tack(self, message: Message) -> None:
        counter = message.payload["counter"]
        self._tack_received[counter].add(message.sender)
        waiter = self._tack_waiters.get(counter)
        if waiter is not None and not waiter.done():
            needed = self.config.n - self.config.f - 1
            if len(self._tack_received[counter]) >= needed:
                waiter.set_result(None)

    # ----------------------------------------------------------------- transfer
    def can_transfer(self, delta: Weight) -> bool:
        """Condition C2: would this server stay above the RP-Integrity bound?"""
        return strictly_greater(self.weight(), delta + self.config.rp_min_weight)

    async def transfer(self, target: ProcessId, delta: Weight) -> TransferOutcome:
        """Transfer ``delta`` of this server's weight to ``target`` (Algorithm 4).

        Returns a :class:`TransferOutcome`; the transfer is *null* (zero-weight
        changes, nothing broadcast) when condition C2 does not hold.
        Raises :class:`ConfigurationError` for malformed invocations
        (non-positive delta, unknown or self target) and
        :class:`SimulationError` if invoked while a previous transfer of this
        server is still in progress (processes are sequential, Section II).
        """
        self._ensure_alive()
        if target not in self.config.servers:
            raise ConfigurationError(f"unknown target server {target!r}")
        if target == self.pid:
            raise ConfigurationError("cannot transfer weight to oneself")
        if delta <= 0:
            raise ConfigurationError(
                f"transfer delta must be positive, got {delta} "
                "(only the source may give weight away: condition C1)"
            )
        if self._transfer_in_progress:
            raise SimulationError(
                f"{self.pid} invoked transfer while a previous transfer is pending"
            )

        self._transfer_in_progress = True
        started_at = self.loop.now
        counter = self.lc
        obs = self.network.obs
        if obs is not None:
            obs.transfer_started(self.pid, target, delta, started_at)
        try:
            if self.can_transfer(delta):
                source_change = Change(self.pid, counter, self.pid, -delta)
                target_change = Change(self.pid, counter, target, delta)
                # Store locally first (the server trivially "acknowledges" its
                # own transfer), then reliably broadcast to everyone else.
                self.changes = self.changes.add(source_change, target_change)
                waiter = SimFuture(name=f"{self.pid}.transfer[{counter}]")
                self._tack_waiters[counter] = waiter
                needed = self.config.n - self.config.f - 1
                if len(self._tack_received[counter]) >= needed:
                    waiter.set_result(None)
                self.rb.broadcast({"changes": (source_change, target_change)})
                if needed > 0:
                    await waiter
                outcome = TransferOutcome(
                    effective=True,
                    change=source_change,
                    counterpart=target_change,
                    started_at=started_at,
                    completed_at=self.loop.now,
                )
            else:
                outcome = TransferOutcome(
                    effective=False,
                    change=Change(self.pid, counter, self.pid, 0.0),
                    counterpart=Change(self.pid, counter, target, 0.0),
                    started_at=started_at,
                    completed_at=self.loop.now,
                )
        finally:
            self.lc += 1
            self._transfer_in_progress = False
        self.transfer_log.append(outcome)
        if obs is not None:
            obs.transfer_completed(
                self.pid,
                target,
                delta,
                outcome.effective,
                outcome.latency,
                outcome.completed_at,
            )
        return outcome


async def read_changes(
    process: Process, server: ProcessId, config: SystemConfig
) -> ChangeSet:
    """Algorithm 3: learn the changes created for ``server``.

    Any process (client or server) may call this.  It gathers ``RC_ACK``
    replies from more than ``f`` servers, unions them, writes the union back
    until ``n - f`` servers acknowledge, and returns the union.
    """
    if server not in config.servers:
        raise ConfigurationError(f"unknown server {server!r}")
    obs = process.network.obs
    if obs is not None:
        obs.read_changes_round(process.pid)

    read_collector = process.request_all(config.servers, RC, {"server": server})
    replies = await read_collector.wait_for_count(config.f + 1)
    union: Set[Change] = set()
    for reply in replies:
        union.update(reply.payload["changes"])
    changes = ChangeSet(union)

    write_collector = process.request_all(
        config.servers, WC, {"changes": changes.sorted()}
    )
    await write_collector.wait_for_count(config.n - config.f)
    return changes


async def weight_of(
    process: Process, server: ProcessId, config: SystemConfig
) -> Weight:
    """Convenience: the weight of ``server`` as observed via ``read_changes``."""
    changes = await read_changes(process, server, config)
    return changes.weight_of(server)
