"""Executable consensus reductions (Algorithms 1 and 2, Theorems 1 and 2).

The paper's impossibility results work by *reduction*: given any solution to
the (unrestricted or pairwise) weight reassignment problem, Algorithms 1 and 2
solve consensus, which is impossible in asynchronous failure-prone systems —
hence no such solution can exist in that model.

To make the reductions executable (and testable) we need *some* implementation
of the two impossible problems.  This module provides **oracle** services:
linearizable, centrally sequenced implementations of Definitions 3 and 4.
They are exactly the kind of "consensus or similar primitive" the paper says
the problems require; running Algorithms 1 and 2 against them demonstrates
that the reduction indeed yields Agreement, Validity and Termination
(Theorems 1 and 2), which is what the benchmark suite reports.

Notes on fidelity:

* The paper reserves local counter 1 for the initial changes, so the changes
  created by a server's single ``reassign``/``transfer`` in the reductions
  carry counter 2 — exactly what lines 10 of Algorithm 1 and Algorithm 2 look
  for.
* Algorithm 2, line 3 computes the cyclic successor inside ``F`` as
  ``(i + 1) mod f``, which maps ``i = f-1`` to 0 — an off-by-one in the
  paper's 1-based indexing.  We use ``(i mod f) + 1``, the evidently intended
  cyclic successor ``s2, ..., sf, s1``.
* Algorithm 2, line 10 tests ``<s_j, 2, s_1, 0.4> in read_changes(s_j)``; the
  change created *for* ``s_1`` can only appear in ``read_changes(s_1)``, so we
  test the equivalent condition on the counterpart change
  ``<s_j, 2, s_j, -0.4> in read_changes(s_j)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.change import Change, ChangeSet
from repro.core.spec import SystemConfig, check_integrity
from repro.errors import ConfigurationError
from repro.net.registers import SWMRRegisterArray
from repro.net.simloop import SimLoop
from repro.types import ProcessId, VirtualTime, Weight, server_name, server_set

__all__ = [
    "paper_initial_weights",
    "algorithm_config",
    "ReassignmentRecord",
    "OracleWeightReassignment",
    "OraclePairwiseReassignment",
    "algorithm1_propose",
    "algorithm2_propose",
]


def paper_initial_weights(n: int, f: int) -> Dict[ProcessId, Weight]:
    """The initial weights used by Algorithms 1 and 2.

    Servers ``s1 .. sf`` (the set ``F``) start with ``(n-1)/(2f)`` and the
    remaining servers with ``(n+1)/(2(n-f))``; with these weights Integrity
    holds initially and a single ±0.5 reassignment (or a single 0.4 pairwise
    transfer into ``F``) brings the system exactly to the Integrity boundary.
    """
    if f < 1 or f >= n:
        raise ConfigurationError(f"need 1 <= f < n, got n={n}, f={f}")
    weights: Dict[ProcessId, Weight] = {}
    for index in range(1, n + 1):
        if index <= f:
            weights[server_name(index)] = (n - 1) / (2 * f)
        else:
            weights[server_name(index)] = (n + 1) / (2 * (n - f))
    return weights


@dataclass
class ReassignmentRecord:
    """One completed oracle operation, kept for trace-level spec checking."""

    author: ProcessId
    counter: int
    requested: Tuple
    created: Tuple[Change, ...]
    completed_at: VirtualTime
    weights_after: Dict[ProcessId, Weight] = field(default_factory=dict)


class _OracleBase:
    """Shared plumbing of the two oracle services.

    Operations are applied atomically in invocation order after a configurable
    virtual-time delay (so concurrent proposers genuinely interleave on the
    simulation clock), which makes the service linearizable by construction —
    the "consensus-equivalent power" the impossibility theorems say is
    unavoidable.
    """

    def __init__(
        self, loop: SimLoop, config: SystemConfig, operation_delay: VirtualTime = 1.0
    ) -> None:
        self.loop = loop
        self.config = config
        self.operation_delay = operation_delay
        self.changes: ChangeSet = config.initial_change_set()
        self.trace: List[ReassignmentRecord] = []
        self._counters: Dict[ProcessId, int] = {
            server: 2 for server in config.servers
        }

    # -- shared helpers ------------------------------------------------------
    def _next_counter(self, author: ProcessId) -> int:
        counter = self._counters.setdefault(author, 2)
        self._counters[author] = counter + 1
        return counter

    def current_weights(self) -> Dict[ProcessId, Weight]:
        return self.changes.weights(self.config.servers)

    async def read_changes(self, server: ProcessId) -> ChangeSet:
        """Definition 3/4 ``read_changes``: all completed changes for ``server``."""
        await self.loop.sleep(self.operation_delay)
        return self.changes.for_server(server)

    def _record(self, author: ProcessId, counter: int, requested, created) -> None:
        self.trace.append(
            ReassignmentRecord(
                author=author,
                counter=counter,
                requested=requested,
                created=tuple(created),
                completed_at=self.loop.now,
                weights_after=self.current_weights(),
            )
        )


class OracleWeightReassignment(_OracleBase):
    """A linearizable implementation of the *weight reassignment problem* (Def. 3).

    ``reassign`` atomically checks whether applying the requested delta keeps
    Integrity (Property 1 over the resulting weights); if so it creates the
    requested change, otherwise a zero-weight change — exactly Validity-I.
    """

    async def reassign(
        self, author: ProcessId, server: ProcessId, delta: Weight
    ) -> Change:
        if delta == 0:
            raise ConfigurationError("reassign requires a non-zero delta")
        if server not in self.config.servers:
            raise ConfigurationError(f"unknown server {server!r}")
        await self.loop.sleep(self.operation_delay)
        counter = self._next_counter(author)
        tentative = self.changes.add(Change(author, counter, server, delta))
        if check_integrity(tentative.weights(self.config.servers), self.config.f):
            change = Change(author, counter, server, delta)
        else:
            change = Change(author, counter, server, 0.0)
        self.changes = self.changes.add(change)
        self._record(author, counter, (server, delta), (change,))
        return change


class OraclePairwiseReassignment(_OracleBase):
    """A linearizable implementation of *pairwise weight reassignment* (Def. 4)."""

    async def transfer(
        self, author: ProcessId, source: ProcessId, target: ProcessId, delta: Weight
    ) -> Tuple[Change, Change]:
        if delta == 0:
            raise ConfigurationError("transfer requires a non-zero delta")
        for server in (source, target):
            if server not in self.config.servers:
                raise ConfigurationError(f"unknown server {server!r}")
        if source == target:
            raise ConfigurationError("source and target must differ")
        await self.loop.sleep(self.operation_delay)
        counter = self._next_counter(author)
        tentative = self.changes.add(
            Change(author, counter, source, -delta),
            Change(author, counter, target, delta),
        )
        if check_integrity(tentative.weights(self.config.servers), self.config.f):
            created = (
                Change(author, counter, source, -delta),
                Change(author, counter, target, delta),
            )
        else:
            created = (
                Change(author, counter, source, 0.0),
                Change(author, counter, target, 0.0),
            )
        self.changes = self.changes.union(created)
        self._record(author, counter, (source, target, delta), created)
        return created


# ---------------------------------------------------------------------------
# Algorithm 1 — consensus from (unrestricted) weight reassignment
# ---------------------------------------------------------------------------


def algorithm_config(n: int, f: int) -> SystemConfig:
    """The :class:`SystemConfig` used by both reductions."""
    return SystemConfig(
        servers=server_set(n), f=f, initial_weights=paper_initial_weights(n, f)
    )


async def algorithm1_propose(
    loop: SimLoop,
    config: SystemConfig,
    registers: SWMRRegisterArray,
    service: OracleWeightReassignment,
    server_index: int,
    value,
):
    """Algorithm 1, run by server ``s_{server_index}``: propose ``value``.

    Returns the decided value.  ``F = {s1, ..., sf}`` members reassign
    themselves ``+0.5`` and the others ``-0.5``; Integrity admits exactly one
    of these reassignments, and everyone decides the proposal of its author.
    """
    me = server_name(server_index)
    registers.write(me, value)
    delta = 0.5 if server_index <= config.f else -0.5
    await service.reassign(me, me, delta)

    while True:
        for j in range(1, config.n + 1):
            other = server_name(j)
            changes = await service.read_changes(other)
            for change in changes:
                if change.author == other and change.counter == 2 and change.delta != 0:
                    return registers.read(other)
        # Not decided yet: try again (the paper's repeat/until loop).  The
        # oracle's per-operation delay keeps virtual time advancing.


# ---------------------------------------------------------------------------
# Algorithm 2 — consensus from pairwise weight reassignment
# ---------------------------------------------------------------------------


def _cyclic_successor_in_f(index: int, f: int) -> int:
    """The intended cyclic successor of ``s_index`` inside ``F`` (see module notes)."""
    return (index % f) + 1


async def algorithm2_propose(
    loop: SimLoop,
    config: SystemConfig,
    registers: SWMRRegisterArray,
    service: OraclePairwiseReassignment,
    server_index: int,
    value,
):
    """Algorithm 2, run by server ``s_{server_index}``: propose ``value``.

    ``F`` members shuffle 0.1 of weight cyclically inside ``F`` (which keeps
    ``W_F`` constant); each other server tries to transfer 0.4 to ``s1``.
    P-Integrity admits exactly one of the latter transfers; everyone decides
    the proposal of its author.
    """
    me = server_name(server_index)
    registers.write(me, value)
    if server_index <= config.f:
        if config.f >= 2:
            target = server_name(_cyclic_successor_in_f(server_index, config.f))
            await service.transfer(me, me, target, 0.1)
        # With f = 1 there is no other member of F to shuffle weight with; the
        # member simply skips its transfer, which keeps W_F constant trivially
        # (the only purpose of the intra-F shuffles in Algorithm 2).
    else:
        await service.transfer(me, me, server_name(1), 0.4)

    while True:
        for j in range(config.f + 1, config.n + 1):
            other = server_name(j)
            changes = await service.read_changes(other)
            for change in changes:
                if (
                    change.author == other
                    and change.counter == 2
                    and change.server == other
                    and change.delta == -0.4
                ):
                    return registers.read(other)
