"""The paper's primary contribution.

* :mod:`repro.core.change` — the ``change`` quadruples and grow-only change
  sets of Section III.
* :mod:`repro.core.spec` — executable versions of Definitions 3-5 (Integrity,
  P-Integrity, RP-Integrity, the Validity properties) plus the
  :class:`~repro.core.spec.SystemConfig` describing a deployment.
* :mod:`repro.core.protocol` — Algorithms 3 and 4: the ``read_changes`` and
  ``transfer`` operations implementing *restricted pairwise weight
  reassignment* in asynchronous failure-prone systems.
* :mod:`repro.core.storage` — Algorithms 5 and 6: the dynamic-weighted atomic
  storage built on top of the protocol (Section VII).
* :mod:`repro.core.reductions` — Algorithms 1 and 2: the executable consensus
  reductions behind Theorems 1 and 2 (Sections IV and V).
"""

from repro.core.change import Change, ChangeSet, initial_changes
from repro.core.spec import (
    SystemConfig,
    check_integrity,
    check_p_integrity,
    check_rp_integrity,
    weights_from_changes,
)
from repro.core.protocol import ReassignmentServer, TransferOutcome, read_changes
from repro.core.storage import DynamicWeightedStorageServer, DynamicWeightedStorageClient
from repro.core.reductions import (
    OracleWeightReassignment,
    OraclePairwiseReassignment,
    algorithm1_propose,
    algorithm2_propose,
    paper_initial_weights,
)

__all__ = [
    "Change",
    "ChangeSet",
    "initial_changes",
    "SystemConfig",
    "check_integrity",
    "check_p_integrity",
    "check_rp_integrity",
    "weights_from_changes",
    "ReassignmentServer",
    "TransferOutcome",
    "read_changes",
    "DynamicWeightedStorageServer",
    "DynamicWeightedStorageClient",
    "OracleWeightReassignment",
    "OraclePairwiseReassignment",
    "algorithm1_propose",
    "algorithm2_propose",
    "paper_initial_weights",
]
