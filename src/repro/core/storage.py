"""Dynamic-weighted atomic storage (Section VII, Algorithms 5 and 6).

A multi-writer multi-reader atomic register whose quorums are *weighted* and
whose weights change at run time through the restricted pairwise weight
reassignment protocol of :mod:`repro.core.protocol`.

The register protocol is the classical ABD algorithm extended in two ways
(both taken from the paper):

1. every server reply carries the server's current change set ``C``; when a
   reader/writer sees changes it did not know about, it merges them into its
   own view and **restarts** the operation, so that the weighted-quorum test
   is always evaluated against an up-to-date weight map;
2. the quorum test ``is_quorum(Q)`` accepts a reply set whose senders' total
   weight (according to the caller's current change set) exceeds
   ``W_{S,0} / 2`` — a constant, because pairwise reassignment preserves the
   total weight.

One refinement over the paper's pseudo-code, recorded here and in DESIGN.md:
Algorithm 5 restarts whenever a reply's change set *differs* from the
caller's, replacing the caller's set with the reply's.  Replacing can move the
caller's view backwards when it has already merged newer changes from another
server; we therefore merge (set union) instead of replacing, and restart only
when the reply contains changes the caller did not yet know.  Unions only
grow, so the restart loop terminates as soon as reassignments quiesce (the
paper makes the same finite-number-of-transfers assumption in Theorem 6), and
safety is unaffected because the caller's weight view only ever becomes more
up-to-date.

Server side, the weight-gaining hook of Algorithm 4 (lines 8-9) is
implemented: before acknowledging a transfer that increases its weight, a
storage server refreshes its register with a full read.  That read is what
makes new quorums (which may now include the newly heavy server in place of
others) intersect correctly with old ones (Lemma 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

from repro.core.change import Change, ChangeSet
from repro.core.protocol import ReassignmentServer
from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.process import Process
from repro.numerics import strictly_greater
from repro.types import ProcessId, Tag, VirtualTime

__all__ = [
    "StoredValue",
    "DynamicWeightedStorageServer",
    "DynamicWeightedStorageClient",
]

R = "R"  # phase-1 request (read the register + change set)
R_ACK = "R_ACK"
W = "W"  # phase-2 request (write/confirm a tagged value)
W_ACK = "W_ACK"


@dataclass(frozen=True)
class StoredValue:
    """A tagged register value (``register[tag, val]`` in Algorithm 4)."""

    tag: Tag
    value: Any

    @staticmethod
    def initial() -> "StoredValue":
        return StoredValue(tag=Tag.zero(), value=None)


@dataclass
class OperationRecord:
    """Telemetry about one completed read/write (used by the benchmarks)."""

    kind: str
    value: Any
    tag: Tag
    started_at: VirtualTime
    completed_at: VirtualTime
    restarts: int
    contacted: int

    @property
    def latency(self) -> VirtualTime:
        return self.completed_at - self.started_at


class _ChangeView:
    """The change-set view a reader/writer evaluates weighted quorums against."""

    def current_changes(self) -> ChangeSet:  # pragma: no cover - interface
        raise NotImplementedError

    async def merge_changes(self, new_changes: Iterable[Change]) -> None:  # pragma: no cover
        raise NotImplementedError


async def _read_write(
    process: Process,
    config: SystemConfig,
    view: _ChangeView,
    op_counter: List[int],
    value: Any,
    is_write: bool,
) -> OperationRecord:
    """The two-phase ABD engine shared by clients and servers (Algorithm 5)."""
    kind = "write" if is_write else "read"
    started_at = process.loop.now
    restarts = 0
    half_total = config.total_initial_weight / 2
    obs = process.network.obs
    if obs is not None:
        obs.operation_started("storage", process.pid, kind, started_at)

    while True:
        known = view.current_changes()

        def quorum_or_news(replies: List[Message]) -> bool:
            if any(
                not ChangeSet(reply.payload["changes"]).issubset(known)
                for reply in replies
            ):
                return True
            # Sum in sorted order: float addition is order-sensitive and set
            # iteration order varies per process, so an unordered sum would
            # let the quorum test flip on last-ulp ties between runs.
            senders = {reply.sender for reply in replies}
            weight = sum(known.weight_of(server) for server in sorted(senders))
            return strictly_greater(weight, half_total)

        # ----------------------------------------------------------- phase 1
        op_counter[0] += 1
        collector = process.request_all(
            config.servers, R, {"cnt": op_counter[0]}
        )
        replies = await collector.wait_until(quorum_or_news, name="phase1")
        news = _collect_news(replies, known)
        if news:
            await view.merge_changes(news)
            restarts += 1
            if obs is not None:
                obs.operation_restarted(
                    "storage", process.pid, kind, process.loop.now
                )
            continue
        if obs is not None:
            obs.quorum_phase(
                "storage",
                process.pid,
                "phase1",
                len({reply.sender for reply in replies}),
                process.loop.now,
            )

        max_reply = max(replies, key=lambda reply: reply.payload["stored"].tag)
        max_stored: StoredValue = max_reply.payload["stored"]
        if is_write:
            tag = Tag(ts=max_stored.tag.ts + 1, pid=process.pid)
            value_to_write = value
        else:
            tag = max_stored.tag
            value_to_write = max_stored.value

        # ----------------------------------------------------------- phase 2
        known = view.current_changes()
        op_counter[0] += 1
        collector = process.request_all(
            config.servers,
            W,
            {"cnt": op_counter[0], "stored": StoredValue(tag=tag, value=value_to_write)},
        )
        replies = await collector.wait_until(quorum_or_news, name="phase2")
        news = _collect_news(replies, known)
        if news:
            await view.merge_changes(news)
            restarts += 1
            if obs is not None:
                obs.operation_restarted(
                    "storage", process.pid, kind, process.loop.now
                )
            continue

        contacted = len({reply.sender for reply in replies})
        if obs is not None:
            obs.quorum_phase(
                "storage", process.pid, "phase2", contacted, process.loop.now
            )
            obs.operation_completed(
                "storage",
                process.pid,
                kind,
                process.loop.now,
                restarts,
                contacted,
                process.loop.now - started_at,
            )
        return OperationRecord(
            kind=kind,
            value=value_to_write,
            tag=tag,
            started_at=started_at,
            completed_at=process.loop.now,
            restarts=restarts,
            contacted=contacted,
        )


def _collect_news(replies: List[Message], known: ChangeSet) -> List[Change]:
    news: List[Change] = []
    for reply in replies:
        for change in reply.payload["changes"]:
            if change not in known:
                news.append(change)
    return news


class DynamicWeightedStorageServer(ReassignmentServer, _ChangeView):
    """Server side of the dynamic-weighted atomic storage (Algorithm 6).

    Extends :class:`~repro.core.protocol.ReassignmentServer` with the tagged
    register and the ``R``/``W`` handlers; every reply piggybacks the server's
    change set so clients can keep their weight view fresh.
    """

    def __init__(self, pid: ProcessId, network: Network, config: SystemConfig) -> None:
        super().__init__(pid, network, config)
        self.stored = StoredValue.initial()
        self._op_counter = [0]
        # Live nesting depth of on_weight_gained refreshes; reported to the
        # observer so the known recursion (see the docstring below) is
        # measurable without hitting the interpreter's stack limit.
        self._refresh_depth = 0
        self.register_handler(R, self._on_read_phase)
        self.register_handler(W, self._on_write_phase)

    # -- Algorithm 6 handlers ---------------------------------------------------
    def _on_read_phase(self, message: Message) -> None:
        self.reply(
            message,
            R_ACK,
            {"stored": self.stored, "changes": self.changes.sorted()},
        )

    def _on_write_phase(self, message: Message) -> None:
        incoming: StoredValue = message.payload["stored"]
        if self.stored.tag < incoming.tag:
            self.stored = incoming
        self.reply(message, W_ACK, {"changes": self.changes.sorted()})

    # -- weight-gain hook (Algorithm 4, lines 8-9) -------------------------------
    async def on_weight_gained(self, change: Change) -> None:
        """Refresh the register with a full read before acknowledging the gain.

        Known limitation (see ROADMAP): a refresh read that discovers yet
        another gain for this server while merging news re-enters
        ``write_changes`` and recurses back here, so sustained transfer churn
        towards one server grows the await chain without bound until the
        interpreter's recursion limit aborts the handler task.  Bounding that
        recursion (e.g. a re-entrancy guard that lets the in-flight read's
        restart cover the nested gain) changes the refresh message pattern
        and therefore every churn-heavy baseline; it is left for a dedicated
        change rather than riding along with a kernel refactor.  The observer
        hook below *measures* the nesting depth (counter
        ``storage.weight_gain_refreshes``, gauge
        ``storage.weight_gain_refresh_depth``) without changing it.
        """
        self._refresh_depth += 1
        obs = self.network.obs
        if obs is not None:
            obs.weight_gain_refresh(self.pid, self._refresh_depth, self.loop.now)
        try:
            record = await _read_write(
                self, self.config, self, self._op_counter, value=None, is_write=False
            )
        finally:
            self._refresh_depth -= 1
        if self.stored.tag < record.tag:
            self.stored = StoredValue(tag=record.tag, value=record.value)

    # -- _ChangeView --------------------------------------------------------------
    def current_changes(self) -> ChangeSet:
        return self.changes

    async def merge_changes(self, new_changes: Iterable[Change]) -> None:
        await self.write_changes(new_changes)

    # -- server-initiated operations (rarely needed, but part of the model) -------
    async def storage_read(self) -> Any:
        """A full atomic read performed by the server itself."""
        record = await _read_write(
            self, self.config, self, self._op_counter, value=None, is_write=False
        )
        return record.value


class DynamicWeightedStorageClient(Process, _ChangeView):
    """Reader/writer side of the storage (Algorithm 5).

    Clients never acknowledge transfers; they simply keep a local change set,
    merge whatever servers report, and restart operations when their weight
    view was stale.
    """

    def __init__(self, pid: ProcessId, network: Network, config: SystemConfig) -> None:
        super().__init__(pid, network)
        self.config = config
        self.changes: ChangeSet = config.initial_change_set()
        self._op_counter = [0]
        #: Completed operations, in order (read by the benchmark harness).
        self.history: List[OperationRecord] = []

    # -- _ChangeView --------------------------------------------------------------
    def current_changes(self) -> ChangeSet:
        return self.changes

    async def merge_changes(self, new_changes: Iterable[Change]) -> None:
        self.changes = self.changes.union(new_changes)

    # -- public API ----------------------------------------------------------------
    async def read(self) -> Any:
        """Atomically read the register value."""
        record = await _read_write(
            self, self.config, self, self._op_counter, value=None, is_write=False
        )
        self.history.append(record)
        return record.value

    async def write(self, value: Any) -> None:
        """Atomically write ``value`` to the register."""
        if value is None:
            raise ConfigurationError("None is reserved as the 'unwritten' value")
        record = await _read_write(
            self, self.config, self, self._op_counter, value=value, is_write=True
        )
        self.history.append(record)

    # -- introspection ---------------------------------------------------------------
    def observed_weights(self) -> dict:
        """The weight map according to the client's current change set."""
        return self.changes.weights(self.config.servers)
