"""Changes and change sets (Section III).

A *change* is the quadruple ``<p_i, lc_i, s, delta>``: process ``p_i`` with
local counter ``lc_i`` changed the weight of server ``s`` by ``delta``.  The
weight of a server at any time is the sum of the deltas of all changes created
for it (including the conventional initial change ``<s, 1, s, w>`` defining
its initial weight).

:class:`ChangeSet` is a grow-only set of changes.  Grow-only is deliberate:
`read_changes` (Algorithm 3) and the storage protocols only ever take unions
of change sets, which is what makes "a set containing ``C_{s,t}``" (Validity-II)
achievable without consensus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from repro.types import ProcessId, Weight

__all__ = ["Change", "ChangeSet", "initial_changes"]


@dataclass(frozen=True, order=True)
class Change:
    """The quadruple ``<author, counter, server, delta>`` of Section III.

    ``author`` is the process that issued the reassignment/transfer,
    ``counter`` its local counter at the time, ``server`` the server whose
    weight is changed, and ``delta`` the (possibly zero) weight change.
    """

    author: ProcessId
    counter: int
    server: ProcessId
    delta: Weight

    def is_null(self) -> bool:
        """True for zero-weight changes (the outcome of aborted operations)."""
        return self.delta == 0

    def is_initial(self) -> bool:
        """True for the conventional initial change ``<s, 1, s, w>``."""
        return self.author == self.server and self.counter == 1


def initial_changes(initial_weights: Mapping[ProcessId, Weight]) -> "ChangeSet":
    """The change set defining the initial weights (completed at ``t = 0``).

    For each server ``s`` with initial weight ``w`` the paper assumes a change
    ``<s, 1, s, w>`` completed at time zero.
    """
    return ChangeSet(
        Change(author=server, counter=1, server=server, delta=weight)
        for server, weight in initial_weights.items()
    )


class ChangeSet:
    """An immutable-by-convention, grow-only set of :class:`Change` objects.

    The class behaves like a frozen set with weight-aware helpers.  Mutating
    operations (:meth:`union`, :meth:`add`) return *new* sets, which keeps the
    protocol code free of aliasing bugs when change sets travel inside
    messages.
    """

    __slots__ = ("_changes", "_sorted")

    def __init__(self, changes: Iterable[Change] = ()) -> None:
        self._changes: FrozenSet[Change] = frozenset(changes)
        # Lazily-built canonical order; reused by every weight query so float
        # sums are independent of set iteration order (PYTHONHASHSEED).
        self._sorted: Optional[Tuple[Change, ...]] = None

    # -- set behaviour ---------------------------------------------------------
    def __contains__(self, change: Change) -> bool:
        return change in self._changes

    def __iter__(self) -> Iterator[Change]:
        return iter(self._changes)

    def __len__(self) -> int:
        return len(self._changes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ChangeSet):
            return self._changes == other._changes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._changes)

    def union(self, other: Iterable[Change]) -> "ChangeSet":
        """Return a new set containing the changes of both operands."""
        return ChangeSet(self._changes | frozenset(other))

    def add(self, *changes: Change) -> "ChangeSet":
        """Return a new set with ``changes`` added."""
        return ChangeSet(self._changes | frozenset(changes))

    def difference(self, other: "ChangeSet") -> FrozenSet[Change]:
        """Changes present here but not in ``other`` (``C' \\ C`` in Alg. 4)."""
        return self._changes - other._changes

    def issubset(self, other: "ChangeSet") -> bool:
        return self._changes <= other._changes

    def issuperset(self, other: "ChangeSet") -> bool:
        return self._changes >= other._changes

    # -- weight queries -----------------------------------------------------------
    def for_server(self, server: ProcessId) -> "ChangeSet":
        """The subset of changes created *for* ``server`` (its weight history)."""
        return ChangeSet(c for c in self._changes if c.server == server)

    def weight_of(self, server: ProcessId) -> Weight:
        """``W_s`` — the sum of the deltas of the changes created for ``server``.

        The sum runs over the canonical :meth:`sorted` order, not raw set
        iteration order: float addition is order-sensitive in the last ulp,
        and set iteration order varies with the interpreter's hash seed, so
        summing the set directly would make the low bits of every reported
        weight depend on ``PYTHONHASHSEED``.
        """
        return sum(c.delta for c in self.sorted() if c.server == server)

    def weights(self, servers: Optional[Iterable[ProcessId]] = None) -> Dict[ProcessId, Weight]:
        """The full weight map derived from this change set.

        If ``servers`` is given the result covers exactly those servers
        (including zero entries); otherwise it covers every server that
        appears in some change.
        """
        if servers is None:
            servers = {c.server for c in self._changes}
        return {server: self.weight_of(server) for server in servers}

    def total_weight(self) -> Weight:
        return sum(c.delta for c in self.sorted())

    def by_author(self, author: ProcessId) -> "ChangeSet":
        """Changes issued by ``author`` (useful for completion checks)."""
        return ChangeSet(c for c in self._changes if c.author == author)

    def non_null(self) -> "ChangeSet":
        """Only the effective (non-zero-weight) changes."""
        return ChangeSet(c for c in self._changes if not c.is_null())

    def max_counter(self, author: ProcessId) -> int:
        """The largest counter used by ``author`` in this set (0 if none)."""
        counters = [c.counter for c in self._changes if c.author == author]
        return max(counters) if counters else 0

    # -- misc --------------------------------------------------------------------
    def as_frozenset(self) -> FrozenSet[Change]:
        return self._changes

    def sorted(self) -> Tuple[Change, ...]:
        """Changes in a deterministic order (author, counter, server).

        Cached after the first call: reply payloads and weight queries ask
        for this order once per message on the protocol hot path.
        """
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = tuple(sorted(self._changes))
        return ordered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChangeSet({sorted(self._changes)!r})"
