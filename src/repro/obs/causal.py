"""Causal graph, critical path, and latency attribution for traces.

``python -m repro trace critical-path`` answers "where did this
operation's latency go?".  The trace already encodes causality:

* records on one actor are totally ordered (program order);
* ``s``/``f`` flow records link a message send to its delivery.

Those two edge kinds make the trace a DAG, and because every edge's weight
is the virtual-time difference between its endpoints, *any* path from an
operation's ``B`` record to its ``E`` record telescopes to exactly the
operation's duration.  Attribution therefore does not need a longest-path
search — it needs the *causally gating* chain: starting from the ``E``
record and walking backwards, each record's immediate cause is

* for an ``f`` record, the ``s`` record that sent the message (the
  delivery was gated by the send plus network latency);
* for everything else, the previous record on the same actor (the actor
  was busy with, or waiting after, whatever it did last).

The walk is clamped to the operation window (records before ``B`` fall
back to ``B`` itself), so it always terminates at ``B`` and the segment
durations always sum to the span duration — the property the test-suite
checks on every registered scenario.

Each backward step is attributed to one of four categories:

==========  ==========================================================
category    meaning
==========  ==========================================================
restart     everything before the operation's last ``restart`` instant
            — rounds whose work was discarded
network     an ``s`` → ``f`` flow edge: message in flight
quorum      actor-order time ending at a quorum phase record: the
            protocol assembling its quorum decision
queue       all other actor-order time: local processing and waiting
==========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.analysis import TraceEvent, parse_events

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "Operation",
    "PathStep",
    "extract_operations",
    "critical_path",
    "critical_path_report",
]

ATTRIBUTION_CATEGORIES = ("queue", "network", "quorum", "restart")


@dataclass(frozen=True)
class Operation:
    """One completed operation span (``cat="op"``, matched ``B``/``E``)."""

    actor: str
    kind: str
    protocol: str
    begin_seq: int
    end_seq: int
    begin_ts: float
    end_ts: float
    restarts: int
    contacted: int

    @property
    def duration(self) -> float:
        return self.end_ts - self.begin_ts


@dataclass(frozen=True)
class PathStep:
    """One backward step of the critical path: ``pred_seq`` caused ``seq``."""

    seq: int
    pred_seq: int
    category: str
    elapsed: float


def extract_operations(events: List[TraceEvent]) -> List[Operation]:
    """Completed operation spans, in begin order.

    ``B``/``E`` records are matched per ``(actor, name)`` with a LIFO stack
    (nested server-side operations match innermost-first, the way the
    instrumentation emits them).  Spans still open at end-of-trace are
    skipped — there is no end to attribute to.
    """
    stacks: Dict[Tuple[str, str], List[TraceEvent]] = {}
    operations: List[Operation] = []
    for event in events:
        if event.cat != "op":
            continue
        key = (event.actor, event.name)
        if event.is_span_begin:
            stacks.setdefault(key, []).append(event)
        elif event.is_span_end:
            stack = stacks.get(key)
            if not stack:
                continue  # truncated trace: unmatched E, nothing to measure
            begin = stack.pop()
            operations.append(Operation(
                actor=event.actor,
                kind=event.name,
                protocol=str(begin.args.get("protocol", "")),
                begin_seq=begin.seq,
                end_seq=event.seq,
                begin_ts=begin.ts,
                end_ts=event.ts,
                restarts=int(event.args.get("restarts", 0)),
                contacted=int(event.args.get("contacted", 0)),
            ))
    operations.sort(key=lambda op: op.begin_seq)
    return operations


def _actor_predecessors(events: List[TraceEvent]) -> List[int]:
    """For each event index, the index of the previous same-actor event (-1)."""
    last_seen: Dict[str, int] = {}
    predecessors: List[int] = []
    for index, event in enumerate(events):
        predecessors.append(last_seen.get(event.actor, -1))
        last_seen[event.actor] = index
    return predecessors


def _flow_sources(events: List[TraceEvent]) -> Dict[int, int]:
    """Map each ``f`` record's seq to its ``s`` record's seq."""
    starts: Dict[int, int] = {}
    sources: Dict[int, int] = {}
    for event in events:
        if event.ph == "s" and event.flow is not None:
            starts[event.flow] = event.seq
        elif event.ph == "f" and event.flow is not None:
            source = starts.get(event.flow)
            if source is not None:
                sources[event.seq] = source
    return sources


def critical_path(
    events: List[TraceEvent],
    operation: Operation,
    actor_pred: Optional[List[int]] = None,
    flow_src: Optional[Dict[int, int]] = None,
) -> List[PathStep]:
    """The gating chain from ``operation``'s end back to its begin.

    Returned in forward (begin → end) order.  Pass precomputed
    ``actor_pred`` / ``flow_src`` indices when attributing many operations
    of one trace (``critical_path_report`` does).
    """
    if actor_pred is None:
        actor_pred = _actor_predecessors(events)
    if flow_src is None:
        flow_src = _flow_sources(events)
    begin = events[operation.begin_seq]
    steps: List[PathStep] = []
    restart_seen = False
    current = events[operation.end_seq]
    while current.seq > begin.seq:
        via_flow = False
        pred_seq = -1
        if current.ph == "f" and current.seq in flow_src:
            pred_seq = flow_src[current.seq]
            via_flow = True
        if not via_flow:
            pred_seq = actor_pred[current.seq]
        if pred_seq < begin.seq:
            # The chain left the operation window (activity predating the
            # operation); the operation's own begin is the causal floor.
            pred_seq = begin.seq
            via_flow = False
        pred = events[pred_seq]
        if current.cat == "op" and current.name == "restart":
            restart_seen = True
        if restart_seen:
            category = "restart"
        elif via_flow:
            category = "network"
        elif current.cat == "quorum":
            category = "quorum"
        else:
            category = "queue"
        steps.append(PathStep(
            seq=current.seq,
            pred_seq=pred.seq,
            category=category,
            elapsed=current.ts - pred.ts,
        ))
        current = pred
    steps.reverse()
    return steps


def critical_path_report(
    records: Iterable[Mapping[str, Any]],
) -> Dict[str, Any]:
    """Attribute every completed operation's latency, plus aggregates.

    Returns a JSON-ready dict::

        {
          "records": <int>,
          "operations": [{"actor", "kind", "protocol", "begin_seq",
                          "begin_ts", "duration", "restarts",
                          "path_length", "attribution": {category: time}},
                         ...],
          "by_kind": {kind: {"count", "total_duration", "mean_duration",
                             "attribution": {category: time}}, ...},
          "categories": {category: total time across all operations},
        }

    For every operation the attribution categories sum to its span
    duration (up to float addition order) — the telescoping property the
    module docstring explains.  An empty trace yields an empty report.
    """
    events = parse_events(records)
    actor_pred = _actor_predecessors(events)
    flow_src = _flow_sources(events)
    operations = extract_operations(events)

    op_rows: List[Dict[str, Any]] = []
    by_kind: Dict[str, Dict[str, Any]] = {}
    totals = {category: 0.0 for category in ATTRIBUTION_CATEGORIES}
    for operation in operations:
        steps = critical_path(events, operation, actor_pred, flow_src)
        attribution = {category: 0.0 for category in ATTRIBUTION_CATEGORIES}
        for step in steps:
            attribution[step.category] += step.elapsed
        op_rows.append({
            "actor": operation.actor,
            "kind": operation.kind,
            "protocol": operation.protocol,
            "begin_seq": operation.begin_seq,
            "begin_ts": operation.begin_ts,
            "duration": operation.duration,
            "restarts": operation.restarts,
            "path_length": len(steps),
            "attribution": attribution,
        })
        aggregate = by_kind.setdefault(operation.kind, {
            "count": 0,
            "total_duration": 0.0,
            "attribution": {c: 0.0 for c in ATTRIBUTION_CATEGORIES},
        })
        aggregate["count"] += 1
        aggregate["total_duration"] += operation.duration
        for category, elapsed in attribution.items():
            aggregate["attribution"][category] += elapsed
            totals[category] += elapsed
    for aggregate in by_kind.values():
        aggregate["mean_duration"] = (
            aggregate["total_duration"] / aggregate["count"]
        )
    return {
        "records": len(events),
        "operations": op_rows,
        "by_kind": {kind: by_kind[kind] for kind in sorted(by_kind)},
        "categories": totals,
    }
