"""Structured, deterministic trace records with a JSONL sink.

A trace is an ordered list of flat JSON records, one per observable moment of
a run, stamped with *virtual* time — wall clocks never appear, so the same
run always produces the same bytes.  The record shape is deliberately close
to the Chrome ``trace_event`` format (:mod:`repro.obs.export` finishes the
conversion):

========  =======================================================
field     meaning
========  =======================================================
``seq``   0-based emission index (total order within the trace)
``ts``    virtual time of the event
``cat``   category: ``kernel`` / ``net`` / ``fault`` / ``op`` /
          ``quorum`` / ``transfer`` / ``storage`` / ``monitoring``
``name``  event name (message kind, operation kind, phase, ...)
``ph``    phase: ``B`` (span begin), ``E`` (span end), ``i``
          (instant), ``s`` / ``f`` (flow start / finish)
``actor`` optional process id the event belongs to
``args``  optional flat dict of extra fields (sorted keys)
``id``    optional flow id pairing a ``s`` record with its ``f``
========  =======================================================

Determinism contract: records are emitted in dispatch order by the (already
deterministic) kernel, ``args`` are built from sorted iterations only, and
flow ids come from the recorder's own counter — never from process-global
state such as ``Message.msg_id``, which depends on how many messages earlier
runs in the same interpreter created.

The canonical serialisation (one record per line,
``json.dumps(..., sort_keys=True, separators=(",", ":"))``) is what both the
JSONL sink and the trace digest hash, so a digest pinned in a test also pins
the exact bytes CI uploads as an artifact.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "TraceRecorder",
    "TRACE_PHASES",
    "TRACE_CATEGORIES",
    "trace_lines",
    "trace_digest",
    "write_trace",
    "read_trace",
    "validate_record",
]

#: Phases a record may carry (a subset of Chrome ``trace_event`` phases).
TRACE_PHASES = ("B", "E", "i", "s", "f")

#: Known categories.  The validator treats these as the closed set so a typo
#: in an instrumentation site fails loudly in CI instead of silently adding a
#: new lane.
TRACE_CATEGORIES = (
    "kernel",
    "net",
    "fault",
    "op",
    "quorum",
    "transfer",
    "storage",
    "monitoring",
)


class TraceRecorder:
    """Accumulates trace records in emission order."""

    __slots__ = ("records", "_flow_ids")

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._flow_ids = 0

    def next_flow_id(self) -> int:
        """A fresh flow id, deterministic because it is per-recorder."""
        self._flow_ids += 1
        return self._flow_ids

    def emit(
        self,
        ts: float,
        cat: str,
        name: str,
        ph: str,
        actor: str = "",
        args: Optional[Dict[str, Any]] = None,
        flow: Optional[int] = None,
    ) -> None:
        record: Dict[str, Any] = {
            "seq": len(self.records),
            "ts": ts,
            "cat": cat,
            "name": name,
            "ph": ph,
        }
        if actor:
            record["actor"] = actor
        if args:
            record["args"] = args
        if flow is not None:
            record["id"] = flow
        self.records.append(record)


# ---------------------------------------------------------------------------
# Canonical serialisation, digest, JSONL sink
# ---------------------------------------------------------------------------


def trace_lines(records: Iterable[Dict[str, Any]]) -> List[str]:
    """The canonical one-record-per-line serialisation."""
    return [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records
    ]


def trace_digest(records: Iterable[Dict[str, Any]]) -> str:
    """SHA-256 over the canonical JSONL bytes (trailing newline included)."""
    payload = "".join(line + "\n" for line in trace_lines(records))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def write_trace(records: Iterable[Dict[str, Any]], path: str) -> None:
    """Write the canonical JSONL to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in trace_lines(records):
            handle.write(line + "\n")


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace, validating every record against the schema."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{number}: not valid JSON: {exc}"
                ) from exc
            problems = validate_record(record, expect_seq=len(records))
            if problems:
                raise ConfigurationError(
                    f"{path}:{number}: invalid trace record: "
                    + "; ".join(problems)
                )
            records.append(record)
    return records


# ---------------------------------------------------------------------------
# Schema validation (shared by read_trace and tools/check_trace.py)
# ---------------------------------------------------------------------------

_ALLOWED_KEYS = frozenset({"seq", "ts", "cat", "name", "ph", "actor", "args", "id"})
_REQUIRED_KEYS = ("seq", "ts", "cat", "name", "ph")


def validate_record(
    record: Any, expect_seq: Optional[int] = None
) -> List[str]:
    """Schema problems with one record (empty list = valid)."""
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    problems: List[str] = []
    for key in _REQUIRED_KEYS:
        if key not in record:
            problems.append(f"missing required key {key!r}")
    for key in record:
        if key not in _ALLOWED_KEYS:
            problems.append(f"unknown key {key!r}")
    seq = record.get("seq")
    if "seq" in record:
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            problems.append(f"seq must be a non-negative integer, got {seq!r}")
        elif expect_seq is not None and seq != expect_seq:
            problems.append(f"seq {seq!r} out of order (expected {expect_seq})")
    ts = record.get("ts")
    if "ts" in record and (not isinstance(ts, (int, float)) or isinstance(ts, bool)):
        problems.append(f"ts must be a number, got {ts!r}")
    elif isinstance(ts, (int, float)) and ts < 0:
        problems.append(f"ts must be non-negative, got {ts!r}")
    cat = record.get("cat")
    if "cat" in record and cat not in TRACE_CATEGORIES:
        problems.append(f"unknown category {cat!r}")
    name = record.get("name")
    if "name" in record and (not isinstance(name, str) or not name):
        problems.append(f"name must be a non-empty string, got {name!r}")
    ph = record.get("ph")
    if "ph" in record and ph not in TRACE_PHASES:
        problems.append(f"unknown phase {ph!r}")
    if "actor" in record and not isinstance(record["actor"], str):
        problems.append(f"actor must be a string, got {record['actor']!r}")
    if "args" in record and not isinstance(record["args"], dict):
        problems.append(f"args must be an object, got {record['args']!r}")
    if "id" in record and (
        not isinstance(record["id"], int) or isinstance(record["id"], bool)
    ):
        problems.append(f"id must be an integer, got {record['id']!r}")
    if ph in ("s", "f") and "id" not in record:
        problems.append(f"flow record (ph={ph!r}) requires an 'id'")
    return problems
