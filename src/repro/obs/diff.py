"""Cross-run trace diff: the first-divergence finder.

Two runs of the same scenario are supposed to produce byte-identical
traces; the digest gate tells you *whether* they did, this module tells
you *where* they stopped agreeing.  :func:`diff_traces` walks two record
streams in lockstep and reports the earliest position where they differ —
the record's ``seq``, a field-level delta (which keys changed and both
values), and a window of surrounding context from each trace — turning
"digests differ" into a pointer at the first diverging event, which for a
deterministic simulation is the event *causing* every later difference.

Divergence kinds:

* ``"field"``  — both traces have a record at that position but the
  records disagree (the delta lists each differing key);
* ``"length"`` — one trace is a strict prefix of the other (the delta
  shows the first surplus record of the longer trace).

Identical traces (including two empty traces) diff to ``None``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["diff_traces", "format_divergence"]

_ABSENT = "<absent>"


def _field_delta(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> Dict[str, Dict[str, Any]]:
    """Per-key delta between two records: ``{key: {"a": ..., "b": ...}}``."""
    delta: Dict[str, Dict[str, Any]] = {}
    for key in sorted(set(a) | set(b)):
        if a.get(key, _ABSENT) != b.get(key, _ABSENT):
            delta[key] = {"a": a.get(key, _ABSENT), "b": b.get(key, _ABSENT)}
    return delta


def diff_traces(
    a_records: Sequence[Mapping[str, Any]],
    b_records: Sequence[Mapping[str, Any]],
    context: int = 3,
) -> Optional[Dict[str, Any]]:
    """The earliest divergence between two traces, or ``None`` if identical.

    ``context`` records preceding the divergence are included from each
    trace (they are identical by construction — the divergence is the
    *first* difference — so they describe the shared prefix the runs
    agreed on).
    """
    context = max(0, context)
    for index in range(min(len(a_records), len(b_records))):
        a, b = a_records[index], b_records[index]
        if a == b:
            continue
        return {
            "kind": "field",
            "seq": a.get("seq", index),
            "fields": _field_delta(a, b),
            "a": dict(a),
            "b": dict(b),
            "context": [dict(r) for r in a_records[max(0, index - context):index]],
            "a_records": len(a_records),
            "b_records": len(b_records),
        }
    if len(a_records) != len(b_records):
        longer, label = (
            (a_records, "a") if len(a_records) > len(b_records) else (b_records, "b")
        )
        index = min(len(a_records), len(b_records))
        return {
            "kind": "length",
            "seq": longer[index].get("seq", index),
            "fields": {},
            "first_surplus": dict(longer[index]),
            "surplus_in": label,
            "context": [dict(r) for r in longer[max(0, index - context):index]],
            "a_records": len(a_records),
            "b_records": len(b_records),
        }
    return None


def format_divergence(divergence: Optional[Dict[str, Any]]) -> str:
    """Human-readable rendering of a :func:`diff_traces` result."""
    if divergence is None:
        return "traces are identical"
    lines: List[str] = []
    if divergence["kind"] == "field":
        lines.append(
            f"first divergence at seq {divergence['seq']} "
            f"(a: {divergence['a_records']} records, "
            f"b: {divergence['b_records']} records)"
        )
        for key, delta in divergence["fields"].items():
            lines.append(f"  {key}: a={delta['a']!r}  b={delta['b']!r}")
        lines.append(f"  a: {json.dumps(divergence['a'], sort_keys=True)}")
        lines.append(f"  b: {json.dumps(divergence['b'], sort_keys=True)}")
    else:
        lines.append(
            f"trace {divergence['surplus_in']} continues past the other's "
            f"end at seq {divergence['seq']} "
            f"(a: {divergence['a_records']} records, "
            f"b: {divergence['b_records']} records)"
        )
        lines.append(
            "  first surplus: "
            + json.dumps(divergence["first_surplus"], sort_keys=True)
        )
    if divergence["context"]:
        lines.append("  shared prefix context:")
        for record in divergence["context"]:
            lines.append("    " + json.dumps(record, sort_keys=True))
    return "\n".join(lines)
