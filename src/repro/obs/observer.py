"""The :class:`Observer`: the single object instrumentation sites talk to.

Components (:class:`~repro.net.simloop.SimLoop`,
:class:`~repro.net.network.Network`, the quorum protocols, the sharded
facade) capture the *ambient* observer at construction time via
:func:`current_observer` and call its domain-level hooks while running.  When
no observer is installed — the default — the captured value is ``None`` and
every instrumentation site is a single ``is not None`` check, so disabled
runs stay on the uninstrumented fast paths.

Hooks are strictly **passive**: they update counters and append trace
records, never schedule events, send messages, or mutate component state.
That is what makes an instrumented run produce bit-identical results and
event interleavings to an uninstrumented one.

Installation is process-local and explicit::

    observer = Observer()
    with observing(observer):
        cluster = build_cluster(...)   # components capture it here
        run(...)
    print(observer.metrics.as_dict())

Because capture happens at construction, installing an observer *after*
building a cluster observes nothing — :func:`observing` must wrap the build.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder

__all__ = ["Observer", "current_observer", "observing", "install_observer"]

#: Bucket bounds for quorum-size histograms (small integer counts).
_QUORUM_BOUNDS = tuple(float(n) for n in range(1, 10))


class Observer:
    """Bundles a metrics registry and a trace recorder behind domain hooks.

    ``metrics`` / ``trace`` are ``None`` when the corresponding half is
    disabled; hooks check before recording.  ``trace_messages`` gates the
    per-message flow records (the chattiest category) independently, so long
    runs can keep operation/fault spans without drowning in message edges.
    """

    __slots__ = ("metrics", "trace", "trace_messages")

    def __init__(
        self,
        metrics: bool = True,
        trace: bool = True,
        trace_messages: bool = True,
    ) -> None:
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )
        self.trace: Optional[TraceRecorder] = TraceRecorder() if trace else None
        self.trace_messages = trace_messages

    # -- kernel ----------------------------------------------------------------
    def kernel_run(self, ready_hits: int, heap_hits: int, max_depth: int) -> None:
        """Fold in one dispatch loop's counters at loop exit."""
        m = self.metrics
        if m is not None:
            m.counter("kernel.events").inc(ready_hits + heap_hits)
            m.counter("kernel.ready_dispatches").inc(ready_hits)
            m.counter("kernel.heap_dispatches").inc(heap_hits)
            m.gauge("kernel.max_queue_depth").set_max(max_depth)

    # -- network ---------------------------------------------------------------
    def message_sent(self, message: Any, now: float) -> None:
        m = self.metrics
        if m is not None:
            m.counter("net.sent").inc()
            m.counter(f"net.sent.{message.kind}").inc()
        t = self.trace
        if t is not None and self.trace_messages:
            flow = t.next_flow_id()
            # Stamped on the message so delivery/drop can close the flow;
            # deliberately NOT msg_id, which is process-global and therefore
            # differs across repeated runs in one interpreter.
            message.trace_flow = flow
            t.emit(
                ts=now,
                cat="net",
                name=message.kind,
                ph="s",
                actor=message.sender,
                args={"to": message.receiver},
                flow=flow,
            )

    def message_delivered(self, message: Any, now: float) -> None:
        m = self.metrics
        if m is not None:
            m.counter("net.delivered").inc()
        t = self.trace
        if t is not None and self.trace_messages:
            flow = getattr(message, "trace_flow", None)
            if flow is not None:
                t.emit(
                    ts=now,
                    cat="net",
                    name=message.kind,
                    ph="f",
                    actor=message.receiver,
                    args={"from": message.sender},
                    flow=flow,
                )

    def message_dropped(self, message: Any, now: float, reason: str) -> None:
        m = self.metrics
        if m is not None:
            m.counter("net.dropped").inc()
            m.counter(f"net.dropped.{reason}").inc()
        t = self.trace
        if t is not None:
            t.emit(
                ts=now,
                cat="net",
                name="drop",
                ph="i",
                actor=message.receiver,
                args={"kind": message.kind, "reason": reason},
            )

    # -- faults ----------------------------------------------------------------
    def process_crashed(self, pid: str, now: float) -> None:
        if self.metrics is not None:
            self.metrics.counter("fault.crashes").inc()
        if self.trace is not None:
            self.trace.emit(ts=now, cat="fault", name="crash", ph="i", actor=pid)

    def process_recovered(self, pid: str, now: float) -> None:
        if self.metrics is not None:
            self.metrics.counter("fault.recoveries").inc()
        if self.trace is not None:
            self.trace.emit(ts=now, cat="fault", name="recover", ph="i", actor=pid)

    def partition_started(
        self, groups: Sequence[Sequence[str]], now: float
    ) -> None:
        if self.metrics is not None:
            self.metrics.counter("fault.partitions").inc()
        if self.trace is not None:
            self.trace.emit(
                ts=now,
                cat="fault",
                name="partition",
                ph="i",
                args={"groups": [sorted(group) for group in groups]},
            )

    def partition_healed(self, released: int, now: float) -> None:
        if self.metrics is not None:
            self.metrics.counter("fault.heals").inc()
        if self.trace is not None:
            self.trace.emit(
                ts=now,
                cat="fault",
                name="heal",
                ph="i",
                args={"released": released},
            )

    # -- operations (dynamic-weighted storage and ABD) ---------------------------
    def operation_started(
        self, protocol: str, pid: str, kind: str, now: float
    ) -> None:
        if self.trace is not None:
            self.trace.emit(
                ts=now,
                cat="op",
                name=kind,
                ph="B",
                actor=pid,
                args={"protocol": protocol},
            )

    def operation_restarted(
        self, protocol: str, pid: str, kind: str, now: float
    ) -> None:
        if self.trace is not None:
            self.trace.emit(
                ts=now,
                cat="op",
                name="restart",
                ph="i",
                actor=pid,
                args={"op": kind, "protocol": protocol},
            )

    def operation_completed(
        self,
        protocol: str,
        pid: str,
        kind: str,
        now: float,
        restarts: int,
        contacted: int,
        latency: float,
    ) -> None:
        m = self.metrics
        if m is not None:
            m.counter(f"{protocol}.ops.{kind}").inc()
            if restarts:
                m.counter(f"{protocol}.restarts").inc(restarts)
            m.histogram(f"{protocol}.op_latency").observe(latency)
        if self.trace is not None:
            self.trace.emit(
                ts=now,
                cat="op",
                name=kind,
                ph="E",
                actor=pid,
                args={"contacted": contacted, "restarts": restarts},
            )

    def quorum_phase(
        self, protocol: str, pid: str, phase: str, quorum_size: int, now: float
    ) -> None:
        m = self.metrics
        if m is not None:
            m.counter(f"{protocol}.{phase}").inc()
            m.histogram(
                f"{protocol}.quorum_size", bounds=_QUORUM_BOUNDS
            ).observe(float(quorum_size))
        if self.trace is not None:
            self.trace.emit(
                ts=now,
                cat="quorum",
                name=phase,
                ph="i",
                actor=pid,
                args={"protocol": protocol, "size": quorum_size},
            )

    # -- weight transfers and change propagation ---------------------------------
    def transfer_started(
        self, source: str, target: str, delta: float, now: float
    ) -> None:
        if self.trace is not None:
            self.trace.emit(
                ts=now,
                cat="transfer",
                name="transfer",
                ph="B",
                actor=source,
                args={"delta": delta, "target": target},
            )

    def transfer_completed(
        self,
        source: str,
        target: str,
        delta: float,
        effective: bool,
        latency: float,
        now: float,
    ) -> None:
        m = self.metrics
        if m is not None:
            outcome = "effective" if effective else "null"
            m.counter(f"protocol.transfers.{outcome}").inc()
            m.histogram("protocol.transfer_latency").observe(latency)
        if self.trace is not None:
            self.trace.emit(
                ts=now,
                cat="transfer",
                name="transfer",
                ph="E",
                actor=source,
                args={"delta": delta, "effective": effective, "target": target},
            )

    def read_changes_round(self, pid: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("protocol.read_changes").inc()

    def weight_gain_refresh(self, pid: str, depth: int, now: float) -> None:
        """One weight-gain view refresh, ``depth`` levels deep on this server.

        The per-server depth directly measures the known unbounded recursion
        in ``DynamicWeightedStorageServer.on_weight_gained`` (see its
        docstring): depths above 1 mean a refresh re-entered itself.
        """
        m = self.metrics
        if m is not None:
            m.counter("storage.weight_gain_refreshes").inc()
            m.gauge("storage.weight_gain_refresh_depth").set_max(depth)
        if self.trace is not None:
            self.trace.emit(
                ts=now,
                cat="storage",
                name="weight-gain-refresh",
                ph="i",
                actor=pid,
                args={"depth": depth},
            )

    # -- sharded facade ----------------------------------------------------------
    def shard_routed(self, pid: str, shard: int, kind: str) -> None:
        m = self.metrics
        if m is not None:
            m.counter("sharded.ops").inc()
            m.counter(f"sharded.ops.{kind}").inc()
            m.counter(f"sharded.shard.{shard}.ops").inc()

    # -- monitoring control loop --------------------------------------------------
    def control_round(self, prober: str, index: int, now: float) -> None:
        if self.metrics is not None:
            self.metrics.counter("monitoring.rounds").inc()
        if self.trace is not None:
            self.trace.emit(
                ts=now,
                cat="monitoring",
                name="control-round",
                ph="i",
                actor=prober,
                args={"round": index},
            )


# ---------------------------------------------------------------------------
# Ambient installation
# ---------------------------------------------------------------------------

_current: Optional[Observer] = None


def current_observer() -> Optional[Observer]:
    """The ambient observer, or ``None`` (the default: observability off)."""
    return _current


def install_observer(observer: Optional[Observer]) -> Optional[Observer]:
    """Install ``observer`` as ambient; returns the previously installed one."""
    global _current
    previous = _current
    _current = observer
    return previous


@contextmanager
def observing(observer: Optional[Observer]) -> Iterator[Optional[Observer]]:
    """Install ``observer`` for the duration of the block.

    Components built inside the block capture it; the previous observer is
    restored on exit even if the block raises.  Passing ``None`` disables
    observation inside the block (masking any outer observer) — the common
    case when a spec's observability section is simply switched off.
    """
    previous = install_observer(observer)
    try:
        yield observer
    finally:
        install_observer(previous)
