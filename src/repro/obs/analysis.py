"""Invariant checking over a recorded trace (``python -m repro trace check``).

The recorder in :mod:`repro.obs.trace` only promises a *schema*: flat
records, closed category/phase vocabularies, ordered ``seq``.  This module
promises *meaning*: it parses the flat records into a typed event stream
(:class:`TraceEvent`) and checks the structural and semantic invariants a
correct run must satisfy, so "the digests differ" can be escalated to "the
trace is malformed *here*, in this way".

Structural invariants (any trace):

* ``seq`` counts 0,1,2,... and ``ts`` never decreases (virtual time is
  monotone in dispatch order);
* ``B``/``E`` spans balance per ``(actor, name)`` — every ``E`` closes an
  open ``B``; spans still open at end-of-trace are *warnings* (operations
  legitimately in flight when the run stopped), unmatched ``E`` records are
  errors;
* flow pairing — every ``f`` record closes exactly one earlier ``s`` with
  the same ``id`` and ``name``; a second ``s`` or ``f`` on the same id is
  an error; an ``s`` that never finishes is a warning (dropped or in-flight
  messages are legal, double delivery is not).

Semantic invariants (grounded in the paper's protocols):

* quorum phase records nest inside an open operation span on the same
  actor, and their ``protocol`` arg matches the enclosing span's;
* phase order within one round is non-decreasing (``phase2`` never before
  ``phase1``); a ``restart`` instant starts a new round;
* recorded quorum sizes meet the configured threshold (``min_quorum``);
* weight-transfer spans balance, ``E`` args agree with their ``B`` args
  (same target, same delta), and effective transfers conserve total weight
  across the run to within ``weight_tolerance``.

Every check degrades cleanly on an empty trace: zero records, zero
findings, verdict *ok*.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.trace import validate_record

__all__ = [
    "TraceEvent",
    "Finding",
    "InvariantReport",
    "parse_events",
    "check_trace_invariants",
]

_EMPTY_ARGS: Mapping[str, Any] = {}

#: Trailing integer of a quorum phase name ("phase1" -> 1); phases without
#: one ("probe", "gossip") opt out of the ordering check.
_PHASE_INDEX = re.compile(r"(\d+)$")


@dataclass(frozen=True)
class TraceEvent:
    """One trace record, parsed into a typed, attribute-addressable event."""

    seq: int
    ts: float
    cat: str
    name: str
    ph: str
    actor: str = ""
    args: Mapping[str, Any] = field(default_factory=dict)
    flow: Optional[int] = None

    @property
    def is_span_begin(self) -> bool:
        return self.ph == "B"

    @property
    def is_span_end(self) -> bool:
        return self.ph == "E"

    @property
    def is_flow(self) -> bool:
        return self.ph in ("s", "f")


def parse_events(records: Iterable[Mapping[str, Any]]) -> List[TraceEvent]:
    """Parse flat trace records into a typed event stream.

    Records are validated against the schema (including ``seq`` ordering);
    the first invalid record raises :class:`ConfigurationError` with its
    position.  An empty input parses to an empty stream.
    """
    events: List[TraceEvent] = []
    for record in records:
        problems = validate_record(record, expect_seq=len(events))
        if problems:
            raise ConfigurationError(
                f"trace record {len(events)}: invalid: " + "; ".join(problems)
            )
        events.append(
            TraceEvent(
                seq=record["seq"],
                ts=record["ts"],
                cat=record["cat"],
                name=record["name"],
                ph=record["ph"],
                actor=record.get("actor", ""),
                args=record.get("args", _EMPTY_ARGS),
                flow=record.get("id"),
            )
        )
    return events


@dataclass(frozen=True)
class Finding:
    """One invariant violation (or suspicious-but-legal condition)."""

    severity: str  #: ``"error"`` or ``"warning"``
    check: str  #: stable identifier of the invariant that fired
    seq: Optional[int]  #: offending record, or ``None`` for whole-trace checks
    message: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "severity": self.severity,
            "check": self.check,
            "seq": self.seq,
            "message": self.message,
        }


@dataclass
class InvariantReport:
    """The verdict of :func:`check_trace_invariants`."""

    findings: List[Finding]
    counters: Dict[str, Any]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding fired (warnings allowed)."""
        return not self.errors

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.as_dict() for f in self.findings],
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }


def check_trace_invariants(
    records: Iterable[Mapping[str, Any]],
    min_quorum: int = 1,
    weight_tolerance: float = 1e-9,
) -> InvariantReport:
    """Run every structural and semantic invariant over ``records``.

    ``min_quorum`` is the smallest quorum size the configuration allows
    (pass the threshold the run was built with to make the check sharp;
    the default ``1`` only rejects degenerate empty quorums).
    """
    events = parse_events(records)
    findings: List[Finding] = []

    # -- structural: monotone virtual time ---------------------------------
    previous_ts = 0.0
    for event in events:
        if event.ts < previous_ts:
            findings.append(Finding(
                "error", "monotone-ts", event.seq,
                f"ts went backwards: {event.ts} after {previous_ts}",
            ))
        previous_ts = max(previous_ts, event.ts)

    # -- structural: balanced B/E spans per (actor, name) ------------------
    open_spans: Dict[Tuple[str, str], List[TraceEvent]] = {}
    closed_spans = 0
    for event in events:
        key = (event.actor, event.name)
        if event.is_span_begin:
            open_spans.setdefault(key, []).append(event)
        elif event.is_span_end:
            stack = open_spans.get(key)
            if not stack:
                findings.append(Finding(
                    "error", "span-balance", event.seq,
                    f"E record for {event.cat}/{event.name} on actor "
                    f"{event.actor!r} closes no open span",
                ))
            else:
                stack.pop()
                closed_spans += 1
    unclosed = sorted(
        (stack_event.seq, key)
        for key, stack in open_spans.items()
        for stack_event in stack
    )
    for seq, (actor, name) in unclosed:
        findings.append(Finding(
            "warning", "span-balance", seq,
            f"span {name!r} on actor {actor!r} still open at end of trace",
        ))

    # -- structural: flow pairing ------------------------------------------
    flow_starts: Dict[int, TraceEvent] = {}
    finished_flows = 0
    for event in events:
        if event.ph == "s":
            assert event.flow is not None  # schema-validated above
            if event.flow in flow_starts:
                findings.append(Finding(
                    "error", "flow-pairing", event.seq,
                    f"flow id {event.flow} started twice "
                    f"(first at seq {flow_starts[event.flow].seq})",
                ))
            else:
                flow_starts[event.flow] = event
        elif event.ph == "f":
            assert event.flow is not None
            start = flow_starts.pop(event.flow, None)
            if start is None:
                findings.append(Finding(
                    "error", "flow-pairing", event.seq,
                    f"flow id {event.flow} finishes without a start "
                    "(or finished twice)",
                ))
            else:
                finished_flows += 1
                if start.name != event.name:
                    findings.append(Finding(
                        "error", "flow-pairing", event.seq,
                        f"flow id {event.flow} finishes as {event.name!r} "
                        f"but started as {start.name!r}",
                    ))
    open_flows = len(flow_starts)
    if open_flows:
        findings.append(Finding(
            "warning", "flow-pairing", None,
            f"{open_flows} flow(s) never finished "
            "(dropped or in flight at end of trace)",
        ))

    # -- semantic: quorum phases nest inside operation spans ----------------
    # Track the innermost open op span per actor with an explicit stack;
    # quorum instants must land inside one and agree on the protocol.
    op_stack: Dict[str, List[TraceEvent]] = {}
    round_phase: Dict[str, int] = {}  # innermost round's highest phase index
    quorum_phases = 0
    for event in events:
        if event.cat == "op" and event.is_span_begin:
            op_stack.setdefault(event.actor, []).append(event)
            round_phase[event.actor] = 0
        elif event.cat == "op" and event.is_span_end:
            stack = op_stack.get(event.actor)
            if stack:
                stack.pop()
            round_phase[event.actor] = 0
        elif event.cat == "op" and event.name == "restart":
            # A restart abandons the current round: phase ordering restarts.
            round_phase[event.actor] = 0
        elif event.cat == "quorum":
            quorum_phases += 1
            stack = op_stack.get(event.actor)
            if not stack:
                findings.append(Finding(
                    "error", "quorum-nesting", event.seq,
                    f"quorum phase {event.name!r} on actor {event.actor!r} "
                    "outside any operation span",
                ))
            else:
                enclosing = stack[-1].args.get("protocol")
                recorded = event.args.get("protocol")
                if (enclosing is not None and recorded is not None
                        and enclosing != recorded):
                    findings.append(Finding(
                        "error", "quorum-nesting", event.seq,
                        f"quorum phase protocol {recorded!r} does not match "
                        f"enclosing operation protocol {enclosing!r}",
                    ))
            match = _PHASE_INDEX.search(event.name)
            if match:
                index = int(match.group(1))
                if index < round_phase.get(event.actor, 0):
                    findings.append(Finding(
                        "error", "quorum-phase-order", event.seq,
                        f"phase {event.name!r} after phase"
                        f"{round_phase[event.actor]} in the same round",
                    ))
                round_phase[event.actor] = max(
                    round_phase.get(event.actor, 0), index
                )
            size = event.args.get("size")
            if isinstance(size, int) and size < min_quorum:
                findings.append(Finding(
                    "error", "quorum-size", event.seq,
                    f"quorum size {size} below configured minimum "
                    f"{min_quorum}",
                ))

    # -- semantic: transfer span consistency + weight conservation ----------
    transfer_stack: Dict[str, List[TraceEvent]] = {}
    net_weight: Dict[str, float] = {}
    effective_transfers = 0
    for event in events:
        if event.cat != "transfer":
            continue
        if event.is_span_begin:
            transfer_stack.setdefault(event.actor, []).append(event)
        elif event.is_span_end:
            stack = transfer_stack.get(event.actor)
            begin = stack.pop() if stack else None
            if begin is not None:
                for key in ("delta", "target"):
                    if begin.args.get(key) != event.args.get(key):
                        findings.append(Finding(
                            "error", "transfer-balance", event.seq,
                            f"transfer end {key}={event.args.get(key)!r} "
                            f"disagrees with its begin "
                            f"{key}={begin.args.get(key)!r} (seq {begin.seq})",
                        ))
            if event.args.get("effective"):
                delta = float(event.args.get("delta", 0.0))
                target = str(event.args.get("target", ""))
                net_weight[event.actor] = net_weight.get(event.actor, 0.0) - delta
                net_weight[target] = net_weight.get(target, 0.0) + delta
                effective_transfers += 1
    imbalance = sum(net_weight.values())
    if abs(imbalance) > weight_tolerance:
        findings.append(Finding(
            "error", "weight-conservation", None,
            f"effective transfers do not conserve weight: net {imbalance!r}",
        ))

    counters = {
        "records": len(events),
        "closed_spans": closed_spans,
        "open_spans": len(unclosed),
        "finished_flows": finished_flows,
        "open_flows": open_flows,
        "quorum_phases": quorum_phases,
        "effective_transfers": effective_transfers,
        "net_weight": imbalance,
    }
    findings.sort(key=lambda f: (f.seq if f.seq is not None else len(events),
                                 f.check, f.message))
    return InvariantReport(findings=findings, counters=counters)
