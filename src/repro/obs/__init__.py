"""``repro.obs`` — deterministic tracing and metrics for the simulation kernel.

Three small modules behind one facade:

* :mod:`repro.obs.metrics` — counters, gauges, virtual-time histograms in a
  :class:`MetricsRegistry` with a sorted, JSON-serialisable snapshot.
* :mod:`repro.obs.trace` — the :class:`TraceRecorder` span/event model, the
  canonical JSONL serialisation, and the trace digest used as a golden
  regression gate.
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` export and
  trace summaries (the ``python -m repro trace`` subcommand).

Plus the trace-analytics layer on top of the recorder (the
``python -m repro trace check | critical-path | diff | series``
subcommands):

* :mod:`repro.obs.analysis` — typed event stream + structural/semantic
  invariant checking;
* :mod:`repro.obs.causal` — causal graph, per-operation critical path,
  latency attribution by category;
* :mod:`repro.obs.diff` — cross-run first-divergence finder;
* :mod:`repro.obs.series` — windowed virtual-time counter series.

Everything hangs off :class:`Observer` (see :mod:`repro.obs.observer`):
install one with :func:`observing` *before* building a cluster and the
kernel, network, protocols, and shards record into it; install nothing and
every instrumentation site is a single ``None`` check.
"""

from repro.obs.analysis import (
    Finding,
    InvariantReport,
    TraceEvent,
    check_trace_invariants,
    parse_events,
)
from repro.obs.causal import (
    ATTRIBUTION_CATEGORIES,
    Operation,
    PathStep,
    critical_path,
    critical_path_report,
    extract_operations,
)
from repro.obs.diff import diff_traces, format_divergence
from repro.obs.export import summarize_trace, to_chrome_trace, write_chrome_trace
from repro.obs.series import trace_series
from repro.obs.metrics import (
    DEFAULT_TIME_BOUNDS,
    MetricCounter,
    MetricGauge,
    MetricHistogram,
    MetricsRegistry,
)
from repro.obs.observer import (
    Observer,
    current_observer,
    install_observer,
    observing,
)
from repro.obs.trace import (
    TRACE_CATEGORIES,
    TRACE_PHASES,
    TraceRecorder,
    read_trace,
    trace_digest,
    trace_lines,
    validate_record,
    write_trace,
)

__all__ = [
    "Observer",
    "current_observer",
    "install_observer",
    "observing",
    "MetricsRegistry",
    "MetricCounter",
    "MetricGauge",
    "MetricHistogram",
    "DEFAULT_TIME_BOUNDS",
    "TraceRecorder",
    "TRACE_PHASES",
    "TRACE_CATEGORIES",
    "trace_lines",
    "trace_digest",
    "write_trace",
    "read_trace",
    "validate_record",
    "to_chrome_trace",
    "write_chrome_trace",
    "summarize_trace",
    "TraceEvent",
    "Finding",
    "InvariantReport",
    "parse_events",
    "check_trace_invariants",
    "ATTRIBUTION_CATEGORIES",
    "Operation",
    "PathStep",
    "extract_operations",
    "critical_path",
    "critical_path_report",
    "diff_traces",
    "format_divergence",
    "trace_series",
]
