"""Virtual-time series derived from a trace (``python -m repro trace series``).

Turns the flat record stream into windowed counter/gauge series — the
curves a hotspot-shift or p99-recovery plot needs:

* ``events``         — records per window (activity density);
* ``by_category``    — the same, split by record category;
* ``ops_started`` / ``ops_completed`` — operation span begins/ends;
* ``in_flight``      — open operation spans at window end (concurrency);
* ``by_shard``       — records per shard per window, derived from the
  sharded actor naming convention ``<server>#<shard>`` (absent for
  unsharded traces).

Windows partition ``[first_ts, last_ts]`` into ``buckets`` equal slices
(or explicit ``window`` widths).  All output is JSON-ready with sorted
keys, so the same trace always yields byte-identical series.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping

from repro.obs.analysis import parse_events

__all__ = ["trace_series"]


def trace_series(
    records: Iterable[Mapping[str, Any]],
    window: float = 0.0,
    buckets: int = 20,
) -> Dict[str, Any]:
    """Windowed virtual-time series for ``records``.

    ``window`` fixes the window width in virtual-time units; when ``0``
    (the default) the trace's span is split into ``buckets`` equal
    windows.  A trace whose records all share one timestamp (or an empty
    trace) degrades to a single window.
    """
    events = parse_events(records)
    if not events:
        return {"records": 0, "window": 0.0, "start": 0.0, "end": 0.0,
                "series": []}
    first_ts = events[0].ts
    last_ts = events[-1].ts
    span = last_ts - first_ts
    if window <= 0.0:
        window = span / buckets if span > 0 else 1.0
    count = max(1, int(span / window) + (1 if span % window or span == 0 else 0))

    rows: List[Dict[str, Any]] = [
        {
            "start": first_ts + index * window,
            "events": 0,
            "by_category": {},
            "ops_started": 0,
            "ops_completed": 0,
            "in_flight": 0,
            "by_shard": {},
        }
        for index in range(count)
    ]
    open_ops = 0
    for event in events:
        index = min(int((event.ts - first_ts) / window), count - 1)
        row = rows[index]
        row["events"] += 1
        row["by_category"][event.cat] = row["by_category"].get(event.cat, 0) + 1
        if event.cat == "op":
            if event.is_span_begin:
                open_ops += 1
                row["ops_started"] += 1
            elif event.is_span_end:
                open_ops = max(0, open_ops - 1)
                row["ops_completed"] += 1
        if "#" in event.actor:
            shard = event.actor.rsplit("#", 1)[1]
            row["by_shard"][shard] = row["by_shard"].get(shard, 0) + 1
        row["in_flight"] = open_ops
    # Windows with no records report the in-flight level carried over from
    # the previous window, so the concurrency curve has no false dips.
    carried = 0
    for row in rows:
        if row["events"] == 0:
            row["in_flight"] = carried
        carried = row["in_flight"]
        row["by_category"] = {k: row["by_category"][k]
                              for k in sorted(row["by_category"])}
        row["by_shard"] = {k: row["by_shard"][k]
                           for k in sorted(row["by_shard"])}
    return {
        "records": len(events),
        "window": window,
        "start": first_ts,
        "end": last_ts,
        "series": rows,
    }
