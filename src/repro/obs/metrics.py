"""Deterministic in-process metrics: counters, gauges, virtual-time histograms.

The registry is a plain dictionary of named instruments with no locks, no
wall-clock reads, and no background threads — everything is driven by the
simulation itself, so two identical runs produce identical snapshots.  The
snapshot (:meth:`MetricsRegistry.as_dict`) iterates names in sorted order and
therefore does not depend on ``PYTHONHASHSEED`` or insertion order.

Instruments follow the conventional trio:

* :class:`MetricCounter` — monotonically increasing integer (events
  dispatched, messages sent, restarts, ...).
* :class:`MetricGauge` — a last-written value plus its observed maximum
  (queue depths, recursion depths).
* :class:`MetricHistogram` — fixed-bound bucket counts over *virtual-time*
  quantities (operation latency, transfer latency) or small integers (quorum
  sizes).  Bounds are upper-inclusive (``value <= bound``), with an implicit
  overflow bucket; the snapshot encodes the overflow bound as ``None``.

Names are dotted strings (``"kernel.ready_dispatches"``,
``"storage.op_latency"``); the registry creates instruments on first use so
instrumentation sites never need set-up code.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "MetricCounter",
    "MetricGauge",
    "MetricHistogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BOUNDS",
]

#: Default bucket bounds for virtual-time histograms (simulation time units).
DEFAULT_TIME_BOUNDS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class MetricCounter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


class MetricGauge:
    """A last-written value that also remembers its maximum."""

    __slots__ = ("name", "value", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.maximum = 0

    def set(self, value: Any) -> None:
        self.value = value
        if value > self.maximum:
            self.maximum = value

    def set_max(self, value: Any) -> None:
        """Record ``value`` only if it exceeds the maximum seen so far."""
        if value > self.maximum:
            self.maximum = value
            self.value = value


class MetricHistogram:
    """Fixed-bound bucket counts with an implicit overflow bucket.

    ``bounds`` must be strictly increasing; a value lands in the first bucket
    whose bound it does not exceed (``value <= bound``), or in the overflow
    bucket past the last bound.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        bounds = tuple(bounds)
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs at least one bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be strictly increasing: {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> Dict[str, Any]:
        buckets: List[Dict[str, Any]] = []
        for bound, count in zip(self.bounds, self.buckets):
            buckets.append({"le": bound, "count": count})
        # The overflow bucket: ``le: None`` stands for +infinity (kept
        # JSON-serialisable, unlike float("inf")).
        buckets.append({"le": None, "count": self.buckets[-1]})
        return {"count": self.count, "sum": self.total, "buckets": buckets}


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted in sorted order."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, MetricCounter] = {}
        self._gauges: Dict[str, MetricGauge] = {}
        self._histograms: Dict[str, MetricHistogram] = {}

    # -- instrument access (get-or-create) ------------------------------------
    def counter(self, name: str) -> MetricCounter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = MetricCounter(name)
        return instrument

    def gauge(self, name: str) -> MetricGauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = MetricGauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> MetricHistogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = MetricHistogram(
                name, bounds if bounds is not None else DEFAULT_TIME_BOUNDS
            )
        elif bounds is not None and tuple(bounds) != instrument.bounds:
            raise ConfigurationError(
                f"histogram {name!r} re-requested with different bounds: "
                f"{tuple(bounds)} != {instrument.bounds}"
            )
        return instrument

    # -- snapshot ---------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Deterministic snapshot: names sorted, values JSON-serialisable."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: {
                    "value": self._gauges[name].value,
                    "max": self._gauges[name].maximum,
                }
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }
