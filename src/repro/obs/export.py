"""Chrome / Perfetto ``trace_event`` export and human-readable summaries.

:func:`to_chrome_trace` converts a list of :mod:`repro.obs.trace` records into
the JSON object format understood by ``chrome://tracing`` and
https://ui.perfetto.dev (open the file with *Open trace file*).  The mapping:

* virtual time maps to microseconds (``ts = virtual_time * 1e6``) so one
  simulated time unit reads as one millisecond on screen;
* each distinct ``actor`` becomes a thread (``tid``) inside a single process,
  with ``thread_name`` metadata so Perfetto labels the lanes by process id;
* ``B``/``E``/``i`` records pass through; ``s``/``f`` flow records keep their
  ``id`` so message send→deliver edges render as arrows.

The export is itself deterministic: actors are numbered in sorted order and
the record order is preserved, so exporting the same trace twice produces
identical bytes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

__all__ = ["to_chrome_trace", "write_chrome_trace", "summarize_trace"]

#: One virtual time unit rendered as this many trace microseconds.
_US_PER_UNIT = 1_000_000


def to_chrome_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert trace records to a Chrome ``trace_event`` JSON object."""
    records = list(records)
    actors = sorted({record.get("actor", "") for record in records})
    tid_of = {actor: index + 1 for index, actor in enumerate(actors)}
    events: List[Dict[str, Any]] = []
    for actor in actors:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid_of[actor],
                "args": {"name": actor or "(kernel)"},
            }
        )
    for record in records:
        event: Dict[str, Any] = {
            "name": record["name"],
            "cat": record["cat"],
            "ph": record["ph"],
            "ts": record["ts"] * _US_PER_UNIT,
            "pid": 1,
            "tid": tid_of[record.get("actor", "")],
        }
        if "args" in record:
            event["args"] = record["args"]
        if "id" in record:
            event["id"] = record["id"]
        if record["ph"] in ("s", "f"):
            # Flow events need a binding point; "e" (enclosing slice) is the
            # most portable choice for instant-anchored flows.
            event["bp"] = "e"
        if record["ph"] == "i":
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[Dict[str, Any]], path: str) -> None:
    """Write the Chrome ``trace_event`` JSON for ``records`` to ``path``."""
    payload = to_chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")


def summarize_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate view of a trace: counts per category/name, span totals.

    Spans are matched per ``(actor, name)`` with a LIFO stack, mirroring how
    the instrumentation nests them; unmatched ``E`` records are counted as
    ``unmatched_ends`` rather than raising, so the summary is usable on
    truncated traces too.
    """
    records = list(records)
    by_category: Dict[str, int] = {}
    by_name: Dict[str, int] = {}
    spans: Dict[str, Dict[str, Any]] = {}
    open_spans: Dict[Any, List[float]] = {}
    unmatched_ends = 0
    first_ts = records[0]["ts"] if records else 0.0
    last_ts = records[-1]["ts"] if records else 0.0
    for record in records:
        cat, name, ph, ts = record["cat"], record["name"], record["ph"], record["ts"]
        by_category[cat] = by_category.get(cat, 0) + 1
        key = f"{cat}/{name}"
        by_name[key] = by_name.get(key, 0) + 1
        if ph == "B":
            open_spans.setdefault((record.get("actor", ""), name), []).append(ts)
        elif ph == "E":
            stack = open_spans.get((record.get("actor", ""), name))
            if not stack:
                unmatched_ends += 1
                continue
            started = stack.pop()
            entry = spans.setdefault(key, {"count": 0, "total_time": 0.0})
            entry["count"] += 1
            entry["total_time"] += ts - started
    return {
        "records": len(records),
        "first_ts": first_ts,
        "last_ts": last_ts,
        "by_category": {k: by_category[k] for k in sorted(by_category)},
        "by_name": {k: by_name[k] for k in sorted(by_name)},
        "spans": {k: spans[k] for k in sorted(spans)},
        "open_spans": sum(len(stack) for stack in open_spans.values()),
        "unmatched_ends": unmatched_ends,
    }
