"""Message-delay models.

The paper assumes an *asynchronous* system: message delays are unbounded but
finite.  In the simulator, a :class:`LatencyModel` decides how long each
message takes to travel from its sender to its receiver.  Different models
serve different purposes:

* :class:`ConstantLatency` / :class:`UniformLatency` / :class:`LogNormalLatency`
  — simple homogeneous clusters, used by most unit tests.
* :class:`PerLinkLatency` and :class:`WanMatrixLatency` — heterogeneous
  wide-area deployments, the setting that motivates weighted quorums in the
  first place (Section I).
* :class:`SlowdownLatency` — a wrapper that slows selected processes down from
  a given virtual time, used to emulate the run-time performance variation the
  monitoring/reassignment machinery reacts to.
* :class:`GrayFailureLatency` — a wrapper modelling *gray failures*: nodes
  that stay alive (they answer probes, they vote in quorums) but serve every
  message slowly.  Unlike a crash the failure detector never fires, which is
  exactly the regime where weighted quorums out- or under-perform — and what
  the chaos campaigns in :mod:`repro.chaos` search over.

Every stochastic model takes an explicit ``seed``; the simulation kernel
itself never introduces randomness.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.types import ProcessId, VirtualTime

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PerLinkLatency",
    "WanMatrixLatency",
    "SlowdownLatency",
    "GrayFailureLatency",
    "wan_latency_matrix",
]


class LatencyModel:
    """Base class: maps (sender, receiver, now) to a one-way message delay."""

    def delay(
        self, sender: ProcessId, receiver: ProcessId, now: VirtualTime
    ) -> VirtualTime:
        """Return the one-way delay for a message sent at virtual time ``now``."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: VirtualTime = 1.0) -> None:
        if value < 0:
            raise ConfigurationError(f"latency must be non-negative, got {value}")
        self.value = value

    def delay(
        self, sender: ProcessId, receiver: ProcessId, now: VirtualTime
    ) -> VirtualTime:
        return self.value


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]`` with a seeded RNG."""

    def __init__(
        self, low: VirtualTime = 0.5, high: VirtualTime = 1.5, seed: int = 0
    ) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(
                f"invalid uniform latency bounds: low={low}, high={high}"
            )
        self.low = low
        self.high = high
        self._rng = random.Random(seed)

    def delay(
        self, sender: ProcessId, receiver: ProcessId, now: VirtualTime
    ) -> VirtualTime:
        return self._rng.uniform(self.low, self.high)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed delays, the usual shape of WAN round-trip samples.

    ``median`` fixes the distribution's median; ``sigma`` controls the spread
    of the underlying normal distribution (larger = heavier tail).
    """

    def __init__(
        self, median: VirtualTime = 1.0, sigma: float = 0.3, seed: int = 0
    ) -> None:
        if median <= 0:
            raise ConfigurationError(f"median must be positive, got {median}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        self.median = median
        self.sigma = sigma
        self._rng = random.Random(seed)

    def delay(
        self, sender: ProcessId, receiver: ProcessId, now: VirtualTime
    ) -> VirtualTime:
        return self._rng.lognormvariate(math.log(self.median), self.sigma)


class PerLinkLatency(LatencyModel):
    """Explicit per-link base delays with optional jitter.

    ``base`` maps ``(sender, receiver)`` pairs to delays; ``default`` is used
    for unlisted links.  When ``jitter`` is non-zero, a seeded multiplicative
    jitter in ``[1, 1 + jitter]`` is applied to each message.
    """

    def __init__(
        self,
        base: Mapping[Tuple[ProcessId, ProcessId], VirtualTime],
        default: VirtualTime = 1.0,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if default < 0:
            raise ConfigurationError("default latency must be non-negative")
        if jitter < 0:
            raise ConfigurationError("jitter must be non-negative")
        for link, value in base.items():
            if value < 0:
                raise ConfigurationError(f"negative latency for link {link}")
        self.base = dict(base)
        self.default = default
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay(
        self, sender: ProcessId, receiver: ProcessId, now: VirtualTime
    ) -> VirtualTime:
        value = self.base.get((sender, receiver), self.default)
        if self.jitter:
            value *= self._rng.uniform(1.0, 1.0 + self.jitter)
        return value


def wan_latency_matrix(
    sites: Sequence[ProcessId],
    one_way: Mapping[Tuple[str, str], VirtualTime],
    site_of: Mapping[ProcessId, str],
) -> Dict[Tuple[ProcessId, ProcessId], VirtualTime]:
    """Expand a site-to-site latency table into a per-process link table.

    ``one_way`` maps *site* pairs (e.g. ``("eu", "us")``) to one-way delays;
    ``site_of`` assigns each process to a site.  Missing symmetric entries are
    filled in from their mirror; intra-site latency defaults to 0.5.
    """
    table: Dict[Tuple[ProcessId, ProcessId], VirtualTime] = {}
    for a in sites:
        for b in sites:
            if a == b:
                continue
            sa, sb = site_of[a], site_of[b]
            if sa == sb:
                table[(a, b)] = 0.5
                continue
            if (sa, sb) in one_way:
                table[(a, b)] = one_way[(sa, sb)]
            elif (sb, sa) in one_way:
                table[(a, b)] = one_way[(sb, sa)]
            else:
                raise ConfigurationError(f"no latency entry for sites {sa}->{sb}")
    return table


class WanMatrixLatency(PerLinkLatency):
    """Convenience model combining :func:`wan_latency_matrix` with jitter."""

    def __init__(
        self,
        processes: Sequence[ProcessId],
        site_of: Mapping[ProcessId, str],
        site_latency: Mapping[Tuple[str, str], VirtualTime],
        jitter: float = 0.05,
        seed: int = 0,
    ) -> None:
        table = wan_latency_matrix(processes, site_latency, site_of)
        super().__init__(base=table, default=1.0, jitter=jitter, seed=seed)
        self.site_of = dict(site_of)


class SlowdownLatency(LatencyModel):
    """Wrap another model, slowing selected processes down from ``start_at``.

    Any message *to or from* a process listed in ``slow`` is multiplied by
    ``factor`` once the virtual clock reaches ``start_at`` (and until
    ``end_at`` if given).  This models the run-time performance degradation
    that weight-reassignment reacts to.
    """

    def __init__(
        self,
        inner: LatencyModel,
        slow: Iterable[ProcessId],
        factor: float = 10.0,
        start_at: VirtualTime = 0.0,
        end_at: Optional[VirtualTime] = None,
    ) -> None:
        if factor < 1.0:
            raise ConfigurationError("slowdown factor must be >= 1")
        self.inner = inner
        self.slow = frozenset(slow)
        self.factor = factor
        self.start_at = start_at
        self.end_at = end_at

    def _active(self, now: VirtualTime) -> bool:
        if now < self.start_at:
            return False
        if self.end_at is not None and now >= self.end_at:
            return False
        return True

    def delay(
        self, sender: ProcessId, receiver: ProcessId, now: VirtualTime
    ) -> VirtualTime:
        base = self.inner.delay(sender, receiver, now)
        if self._active(now) and (sender in self.slow or receiver in self.slow):
            return base * self.factor
        return base


class GrayFailureLatency(LatencyModel):
    """Wrap another model with a *gray failure*: slow-but-alive processes.

    Any message to or from a process listed in ``degraded`` pays a
    multiplicative ``factor`` plus an additive per-message ``stall`` while
    the window ``[start_at, end_at)`` is open (``end_at=None`` never closes).
    The additive stall is what distinguishes a gray failure from a plain
    slowdown: even a near-zero base delay is dragged up to ``stall``, the
    shape of a node grinding through I/O timeouts while still answering —
    so crash detection never fires, quorums still count its vote, and the
    operation latency quietly degrades.
    """

    def __init__(
        self,
        inner: LatencyModel,
        degraded: Iterable[ProcessId],
        factor: float = 4.0,
        stall: VirtualTime = 0.0,
        start_at: VirtualTime = 0.0,
        end_at: Optional[VirtualTime] = None,
    ) -> None:
        if factor < 1.0:
            raise ConfigurationError("gray-failure factor must be >= 1")
        if stall < 0:
            raise ConfigurationError("gray-failure stall must be non-negative")
        if end_at is not None and end_at <= start_at:
            raise ConfigurationError(
                f"gray-failure end_at={end_at} must be after start_at={start_at}"
            )
        self.inner = inner
        self.degraded = frozenset(degraded)
        self.factor = factor
        self.stall = stall
        self.start_at = start_at
        self.end_at = end_at

    def _active(self, now: VirtualTime) -> bool:
        if now < self.start_at:
            return False
        if self.end_at is not None and now >= self.end_at:
            return False
        return True

    def delay(
        self, sender: ProcessId, receiver: ProcessId, now: VirtualTime
    ) -> VirtualTime:
        base = self.inner.delay(sender, receiver, now)
        if self._active(now) and (
            sender in self.degraded or receiver in self.degraded
        ):
            return base * self.factor + self.stall
        return base
