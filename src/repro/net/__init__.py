"""Asynchronous message-passing substrate.

This package provides every piece of the paper's system model (Section II)
that the protocols need to run:

* :mod:`repro.net.simloop` — a deterministic, virtual-time coroutine scheduler
  (the "event loop" of the simulated world).
* :mod:`repro.net.latency` — pluggable message-delay models, from constant
  delays to heterogeneous WAN latency matrices and adversarial schedules.
* :mod:`repro.net.message` — the envelope carried by the network.
* :mod:`repro.net.network` — reliable asynchronous links between processes,
  with crash faults and partitions.
* :mod:`repro.net.process` — the base class for simulated processes (servers
  and clients) with request/response helpers.
* :mod:`repro.net.broadcast` — best-effort and reliable broadcast primitives.
* :mod:`repro.net.registers` — linearizable SWMR/MWMR register arrays used by
  the consensus reductions of Algorithms 1 and 2.
"""

from repro.net.simloop import (
    SimFuture,
    SimLoop,
    SimTask,
    Event,
    Queue,
    gather,
)
from repro.net.latency import (
    ConstantLatency,
    UniformLatency,
    LogNormalLatency,
    WanMatrixLatency,
    PerLinkLatency,
    SlowdownLatency,
    LatencyModel,
)
from repro.net.message import Message
from repro.net.network import Network
from repro.net.process import Process, ResponseCollector
from repro.net.broadcast import BestEffortBroadcast, ReliableBroadcast
from repro.net.registers import SWMRRegisterArray, SharedRegister

__all__ = [
    "SimFuture",
    "SimLoop",
    "SimTask",
    "Event",
    "Queue",
    "gather",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "WanMatrixLatency",
    "PerLinkLatency",
    "SlowdownLatency",
    "Message",
    "Network",
    "Process",
    "ResponseCollector",
    "BestEffortBroadcast",
    "ReliableBroadcast",
    "SWMRRegisterArray",
    "SharedRegister",
]
