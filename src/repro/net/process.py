"""Base class for simulated processes (servers and clients).

A :class:`Process` owns a handler table mapping message kinds to callbacks
(plain functions or coroutines) and provides the request/response plumbing the
protocols are built on:

* :meth:`Process.send` — fire-and-forget message.
* :meth:`Process.send_to_all` — fire-and-forget broadcast to a set of peers.
* :meth:`Process.request_all` — send the same request to many peers and
  obtain a :class:`ResponseCollector`, on which the caller can await "more
  than f replies", "replies from a weighted quorum", or any other predicate —
  exactly the ``wait until`` statements of the paper's pseudo-code.

Crash semantics: once :meth:`Process.crash` is called (usually through
:meth:`repro.net.network.Network.crash`), the process ignores every delivered
message and silently refuses to send.
"""

from __future__ import annotations

import inspect
import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import CrashedProcessError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.simloop import SimFuture, SimLoop
from repro.types import ProcessId

__all__ = ["Process", "ResponseCollector"]

_request_ids = itertools.count(1)


class ResponseCollector:
    """Accumulates replies to a multicast request.

    The collector exposes *wait conditions* returning :class:`SimFuture`
    objects; the protocols await them.  A condition is evaluated every time a
    new reply arrives, so a future returned by :meth:`wait_until` resolves the
    moment its predicate first holds.
    """

    def __init__(self, request_id: int, expected: int) -> None:
        self.request_id = request_id
        self.expected = expected
        self.responses: List[Message] = []
        self._waiters: List[tuple] = []  # (predicate, future)

    # -- feeding ------------------------------------------------------------
    def add(self, message: Message) -> None:
        """Record a newly arrived reply and re-evaluate pending wait conditions."""
        self.responses.append(message)
        still_waiting = []
        for predicate, future in self._waiters:
            if future.done():
                continue
            if predicate(self.responses):
                future.set_result(list(self.responses))
            else:
                still_waiting.append((predicate, future))
        self._waiters = still_waiting

    # -- waiting ------------------------------------------------------------
    def wait_until(
        self, predicate: Callable[[List[Message]], bool], name: str = "condition"
    ) -> SimFuture:
        """Future resolving with the reply list once ``predicate(replies)`` holds."""
        future = SimFuture(name=f"collector.wait({name})")
        if predicate(self.responses):
            future.set_result(list(self.responses))
        else:
            self._waiters.append((predicate, future))
        return future

    def wait_for_count(self, count: int) -> SimFuture:
        """Future resolving once at least ``count`` replies have arrived."""
        return self.wait_until(lambda replies: len(replies) >= count, name=f">={count}")

    def wait_for_senders(
        self, predicate: Callable[[List[ProcessId]], bool], name: str = "senders"
    ) -> SimFuture:
        """Like :meth:`wait_until` but the predicate sees the sender ids only."""
        return self.wait_until(
            lambda replies: predicate([reply.sender for reply in replies]), name=name
        )

    def senders(self) -> List[ProcessId]:
        return [reply.sender for reply in self.responses]


class Process:
    """A simulated process attached to a :class:`~repro.net.network.Network`."""

    def __init__(self, pid: ProcessId, network: Network) -> None:
        self.pid = pid
        self.network = network
        self.loop: SimLoop = network.loop
        self.crashed = False
        self._handlers: Dict[str, Callable[[Message], Any]] = {}
        self._pending: Dict[int, ResponseCollector] = {}
        network.register(self)

    # -- handler registration ----------------------------------------------
    def register_handler(self, kind: str, handler: Callable[[Message], Any]) -> None:
        """Install ``handler`` for messages of type ``kind``.

        The handler may be a plain function or an ``async`` coroutine
        function; coroutines are spawned as tasks so a slow handler never
        blocks delivery of other messages.
        """
        self._handlers[kind] = handler

    # -- fault injection ------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop this process (it also tells the network)."""
        self.crashed = True
        if not self.network.is_crashed(self.pid):
            self.network.crash(self.pid)

    def _ensure_alive(self) -> None:
        if self.crashed or self.network.is_crashed(self.pid):
            raise CrashedProcessError(f"process {self.pid} has crashed")

    # -- sending ---------------------------------------------------------------
    def send(
        self,
        receiver: ProcessId,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        request_id: Optional[int] = None,
        is_reply: bool = False,
    ) -> None:
        """Send a one-way message (no reply expected by the transport layer)."""
        if self.crashed or self.network.is_crashed(self.pid):
            return
        message = Message(
            sender=self.pid,
            receiver=receiver,
            kind=kind,
            payload=payload or {},
            request_id=request_id,
            is_reply=is_reply,
        )
        self.network.send(message)

    def reply(self, to: Message, kind: str, payload: Optional[Dict[str, Any]] = None) -> None:
        """Send a reply correlated with the request ``to``."""
        if self.crashed or self.network.is_crashed(self.pid):
            return
        self.network.send(
            Message(
                sender=self.pid,
                receiver=to.sender,
                kind=kind,
                payload=payload or {},
                request_id=to.request_id,
                is_reply=True,
            )
        )

    def send_to_all(
        self,
        receivers: Iterable[ProcessId],
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Fire-and-forget the same message to every listed receiver."""
        for receiver in receivers:
            self.send(receiver, kind, payload)

    def request_all(
        self,
        receivers: Iterable[ProcessId],
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> ResponseCollector:
        """Send a correlated request to every receiver; collect the replies.

        Responders must answer with :meth:`reply` (or ``Message.reply``) so
        the correlation id round-trips.  The process keeps the collector
        registered forever — late replies are still recorded, which matches
        the asynchronous model (there is no notion of "the request timed
        out"), and the memory cost is irrelevant for simulations.
        """
        self._ensure_alive()
        receivers = list(receivers)
        request_id = next(_request_ids)
        collector = ResponseCollector(request_id, expected=len(receivers))
        self._pending[request_id] = collector
        for receiver in receivers:
            self.send(receiver, kind, payload, request_id=request_id)
        return collector

    # -- receiving -----------------------------------------------------------
    def deliver(self, message: Message) -> None:
        """Entry point called by the network when a message arrives."""
        if self.crashed or self.network.is_crashed(self.pid):
            return
        if message.is_reply and message.request_id in self._pending:
            self._pending[message.request_id].add(message)
            return
        handler = self._handlers.get(message.kind)
        if handler is None:
            self.on_unhandled(message)
            return
        result = handler(message)
        if inspect.iscoroutine(result):
            self.loop.create_task(result, name=f"{self.pid}.{message.kind}")

    def on_unhandled(self, message: Message) -> None:
        """Hook for messages without a registered handler (default: ignore)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} {self.pid} ({status})>"
