"""Deterministic virtual-time coroutine scheduler.

The protocols in this library are written as ``async`` coroutines, just like
the paper's pseudo-code is written with ``wait until`` statements.  Instead of
running them on ``asyncio`` against wall-clock time, they run on
:class:`SimLoop`: a small, fully deterministic event loop with a *virtual*
clock.

Determinism is the property the whole test-suite and benchmark harness lean
on: two runs with the same seed and the same inputs produce exactly the same
interleaving, the same message orderings, and the same results.  Determinism
comes from two rules:

1. every wake-up (timer expiry, future resolution, message delivery) is a
   heap event keyed by ``(virtual_time, sequence_number)``, where the sequence
   number is a global insertion counter — ties are broken FIFO; and
2. the kernel itself never consults a random source; randomness only enters
   through explicitly seeded latency models.

The public surface mirrors a tiny subset of ``asyncio``:

* :class:`SimFuture` — an awaitable, single-assignment result cell.
* :class:`SimTask` — a future driving a coroutine.
* :class:`SimLoop` — ``create_task`` / ``call_later`` / ``sleep`` /
  ``run_until_complete`` / ``run`` with virtual time.
* :func:`gather`, :class:`Event`, :class:`Queue` — the small amount of
  synchronisation machinery the protocols need.
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Awaitable,
    Callable,
    Coroutine,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import DeadlockError, SimTimeoutError, SimulationError
from repro.types import VirtualTime

__all__ = [
    "SimFuture",
    "SimTask",
    "SimLoop",
    "Event",
    "Queue",
    "gather",
]

_PENDING = "PENDING"
_RESOLVED = "RESOLVED"
_FAILED = "FAILED"
_CANCELLED = "CANCELLED"


class SimFuture:
    """A single-assignment result cell that coroutines can ``await``.

    Unlike ``asyncio.Future`` it is not tied to a thread or a running loop;
    the loop merely schedules the callbacks registered through
    :meth:`add_done_callback`.
    """

    __slots__ = ("_state", "_result", "_exception", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self._state = _PENDING
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimFuture"], None]] = []
        #: Optional human-readable label, used only in error messages.
        self.name = name

    # -- state inspection -------------------------------------------------
    def done(self) -> bool:
        """True once the future holds a result, an exception, or was cancelled."""
        return self._state != _PENDING

    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    def result(self) -> Any:
        """Return the result, raising if the future failed or is still pending."""
        if self._state == _RESOLVED:
            return self._result
        if self._state == _FAILED:
            assert self._exception is not None
            raise self._exception
        if self._state == _CANCELLED:
            raise SimulationError(f"future {self.name or id(self)} was cancelled")
        raise SimulationError(f"future {self.name or id(self)} is not done yet")

    def exception(self) -> Optional[BaseException]:
        if not self.done():
            raise SimulationError("future is not done yet")
        return self._exception

    # -- completion --------------------------------------------------------
    def set_result(self, value: Any) -> None:
        self._require_pending()
        self._state = _RESOLVED
        self._result = value
        self._run_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        self._require_pending()
        self._state = _FAILED
        self._exception = exc
        self._run_callbacks()

    def cancel(self) -> bool:
        """Cancel the future.  Returns False if it already completed."""
        if self.done():
            return False
        self._state = _CANCELLED
        self._exception = SimulationError(
            f"future {self.name or id(self)} was cancelled"
        )
        self._run_callbacks()
        return True

    def _require_pending(self) -> None:
        if self.done():
            raise SimulationError(
                f"future {self.name or id(self)} resolved twice"
            )

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Register ``callback(self)`` to run when the future completes.

        If the future is already done the callback runs immediately; the
        kernel only ever registers callbacks that re-enter the scheduler, so
        immediate invocation keeps the event ordering intact.
        """
        if self.done():
            callback(self)
        else:
            self._callbacks.append(callback)

    # -- awaitable protocol --------------------------------------------------
    def __await__(self) -> Generator["SimFuture", None, Any]:
        if not self.done():
            yield self
        return self.result()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimFuture {self.name or hex(id(self))} {self._state}>"


class SimTask(SimFuture):
    """A future that drives a coroutine to completion on a :class:`SimLoop`."""

    __slots__ = ("_coro", "_loop", "_waiting_on")

    def __init__(
        self,
        coro: Coroutine[Any, Any, Any],
        loop: "SimLoop",
        name: str = "",
    ) -> None:
        super().__init__(name=name or getattr(coro, "__name__", "task"))
        self._coro = coro
        self._loop = loop
        self._waiting_on: Optional[SimFuture] = None

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        if self.done():
            return
        self._waiting_on = None
        try:
            if exc is not None:
                awaited = self._coro.throw(exc)
            else:
                awaited = self._coro.send(value)
        except StopIteration as stop:
            self.set_result(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate via future
            self.set_exception(error)
            return

        if not isinstance(awaited, SimFuture):
            self.set_exception(
                SimulationError(
                    f"task {self.name} awaited a non-SimFuture object: {awaited!r}"
                )
            )
            return

        self._waiting_on = awaited
        awaited.add_done_callback(self._on_awaited_done)

    def _on_awaited_done(self, future: SimFuture) -> None:
        if self.done():
            return
        error = future.exception() if future.done() else None
        if error is not None:
            self._loop._schedule_step(self, None, error)
        else:
            self._loop._schedule_step(self, future.result(), None)

    def cancel(self) -> bool:
        """Cancel the task, throwing ``GeneratorExit`` into the coroutine."""
        if self.done():
            return False
        self._coro.close()
        return super().cancel()


class SimLoop:
    """The deterministic virtual-time event loop.

    All state transitions happen by draining a single heap of events keyed by
    ``(time, sequence)``.  :class:`repro.net.network.Network` and the timer
    helpers below only ever enqueue events through :meth:`call_at`, so the
    global order of the simulation is exactly the order of the heap.
    """

    def __init__(self) -> None:
        self._now: VirtualTime = 0.0
        self._sequence = 0
        self._events: List[Tuple[VirtualTime, int, Callable[[], None]]] = []
        self._tasks: List[SimTask] = []

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> VirtualTime:
        """Current virtual time."""
        return self._now

    # -- scheduling primitives ------------------------------------------------
    def call_at(self, when: VirtualTime, callback: Callable[[], None]) -> None:
        """Schedule ``callback()`` at virtual time ``when`` (>= now)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < now={self._now}"
            )
        self._sequence += 1
        heapq.heappush(self._events, (when, self._sequence, callback))

    def call_later(self, delay: VirtualTime, callback: Callable[[], None]) -> None:
        """Schedule ``callback()`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self._now + delay, callback)

    def create_task(
        self, coro: Coroutine[Any, Any, Any], name: str = ""
    ) -> SimTask:
        """Wrap a coroutine into a task and schedule its first step."""
        task = SimTask(coro, self, name=name)
        self._tasks.append(task)
        self._schedule_step(task, None, None)
        return task

    def _schedule_step(
        self, task: SimTask, value: Any, exc: Optional[BaseException]
    ) -> None:
        self.call_at(self._now, lambda: task._step(value, exc))

    # -- timers ---------------------------------------------------------------
    def sleep(self, delay: VirtualTime) -> SimFuture:
        """Return a future that resolves after ``delay`` virtual time units."""
        future = SimFuture(name=f"sleep({delay})")
        self.call_later(delay, lambda: future.done() or future.set_result(None))
        return future

    def timeout(self, future: SimFuture, delay: VirtualTime) -> SimFuture:
        """Wrap ``future`` with a virtual-time timeout.

        The returned future resolves with ``future``'s result, or fails with
        :class:`~repro.errors.SimTimeoutError` if ``delay`` elapses first.
        """
        wrapped = SimFuture(name=f"timeout({future.name}, {delay})")

        def on_done(inner: SimFuture) -> None:
            if wrapped.done():
                return
            error = inner.exception()
            if error is not None:
                wrapped.set_exception(error)
            else:
                wrapped.set_result(inner.result())

        def on_expire() -> None:
            if not wrapped.done():
                wrapped.set_exception(
                    SimTimeoutError(
                        f"timed out after {delay} waiting for {future.name}"
                    )
                )

        future.add_done_callback(on_done)
        self.call_later(delay, on_expire)
        return wrapped

    # -- running ---------------------------------------------------------------
    def _pop_and_run_one(self) -> None:
        when, _seq, callback = heapq.heappop(self._events)
        self._now = when
        callback()

    def run_until_complete(
        self,
        awaitable: Any,
        max_time: Optional[VirtualTime] = None,
    ) -> Any:
        """Drive the loop until ``awaitable`` completes and return its result.

        ``awaitable`` may be a coroutine (it is wrapped into a task) or an
        existing :class:`SimFuture`.  If the event heap drains before the
        awaitable completes a :class:`~repro.errors.DeadlockError` is raised:
        in a deterministic simulation "no more events" means no further
        progress is possible.  ``max_time`` bounds the virtual time the run
        may consume, raising :class:`~repro.errors.SimTimeoutError` past it.
        """
        if isinstance(awaitable, SimFuture):
            target = awaitable
        else:
            target = self.create_task(awaitable)

        while not target.done():
            if not self._events:
                raise DeadlockError(
                    f"simulation deadlocked at t={self._now}: "
                    f"no pending events but {target.name!r} is not done"
                )
            next_when = self._events[0][0]
            if max_time is not None and next_when > max_time:
                raise SimTimeoutError(
                    f"virtual-time budget {max_time} exhausted "
                    f"(next event at {next_when})"
                )
            self._pop_and_run_one()
        return target.result()

    def run(self, until: Optional[VirtualTime] = None) -> VirtualTime:
        """Drain events, optionally only up to virtual time ``until``.

        Returns the virtual time at which the loop stopped.  Unlike
        :meth:`run_until_complete` this never raises on an empty heap — it is
        the natural way to "let the system settle".
        """
        while self._events:
            next_when = self._events[0][0]
            if until is not None and next_when > until:
                self._now = until
                return self._now
            self._pop_and_run_one()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def pending_event_count(self) -> int:
        """Number of not-yet-processed events (useful for tests)."""
        return len(self._events)


# ---------------------------------------------------------------------------
# Synchronisation helpers built on SimFuture
# ---------------------------------------------------------------------------


def gather(loop: SimLoop, awaitables: Iterable[Awaitable[Any]]) -> SimFuture:
    """Run several coroutines/futures concurrently; resolve with their results.

    The combined future resolves with a list of results in input order once
    every child is done, or fails with the first exception raised.
    """
    children: List[SimFuture] = []
    for awaitable in awaitables:
        if isinstance(awaitable, SimFuture):
            children.append(awaitable)
        else:
            children.append(loop.create_task(awaitable))

    combined = SimFuture(name="gather")
    if not children:
        combined.set_result([])
        return combined

    remaining = {"count": len(children)}

    def on_child_done(child: SimFuture) -> None:
        if combined.done():
            return
        error = child.exception()
        if error is not None:
            combined.set_exception(error)
            return
        remaining["count"] -= 1
        if remaining["count"] == 0:
            combined.set_result([c.result() for c in children])

    for child in children:
        child.add_done_callback(on_child_done)
    return combined


class Event:
    """A level-triggered event: tasks await :meth:`wait` until :meth:`set`."""

    def __init__(self, name: str = "event") -> None:
        self._name = name
        self._is_set = False
        self._waiters: List[SimFuture] = []

    def is_set(self) -> bool:
        return self._is_set

    def set(self) -> None:
        """Mark the event as set and wake every waiter."""
        self._is_set = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def clear(self) -> None:
        self._is_set = False

    def wait(self) -> SimFuture:
        """Return a future resolved when (or as soon as) the event is set."""
        future = SimFuture(name=f"{self._name}.wait")
        if self._is_set:
            future.set_result(None)
        else:
            self._waiters.append(future)
        return future


class Queue:
    """An unbounded FIFO queue usable from coroutines (``await queue.get()``)."""

    def __init__(self, name: str = "queue") -> None:
        self._name = name
        self._items: List[Any] = []
        self._getters: List[SimFuture] = []

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.pop(0)
            if not getter.done():
                getter.set_result(item)
                return
        self._items.append(item)

    def get(self) -> SimFuture:
        """Return a future resolving with the next item (FIFO order)."""
        future = SimFuture(name=f"{self._name}.get")
        if self._items:
            future.set_result(self._items.pop(0))
        else:
            self._getters.append(future)
        return future

    def __len__(self) -> int:
        return len(self._items)

    def empty(self) -> bool:
        return not self._items
