"""Deterministic virtual-time coroutine scheduler.

The protocols in this library are written as ``async`` coroutines, just like
the paper's pseudo-code is written with ``wait until`` statements.  Instead of
running them on ``asyncio`` against wall-clock time, they run on
:class:`SimLoop`: a small, fully deterministic event loop with a *virtual*
clock.

Determinism is the property the whole test-suite and benchmark harness lean
on: two runs with the same seed and the same inputs produce exactly the same
interleaving, the same message orderings, and the same results.  Determinism
comes from two rules:

1. every wake-up (timer expiry, future resolution, message delivery) is an
   event keyed by ``(virtual_time, sequence_number)``, where the sequence
   number is a global insertion counter — ties are broken FIFO; and
2. the kernel itself never consults a random source; randomness only enters
   through explicitly seeded latency models.

Internally the loop keeps *two* event stores with one logical ordering: a
heap for future-time events and a FIFO *ready deque* for events scheduled at
the current virtual time (task steps, zero-delay callbacks, message
deliveries under zero latency).  Ready events carry the same global sequence
numbers as heap events, and the dispatcher always runs whichever store holds
the lower ``(time, sequence)`` key, so the observable order is exactly the
order the single heap used to produce — the deque merely turns the common
same-time case from two O(log n) heap operations into O(1) append/popleft.
See ``docs/ARCHITECTURE.md`` ("Performance") for the full hot-path map.

The public surface mirrors a tiny subset of ``asyncio``:

* :class:`SimFuture` — an awaitable, single-assignment result cell.
* :class:`SimTask` — a future driving a coroutine.
* :class:`SimLoop` — ``create_task`` / ``call_later`` / ``sleep`` /
  ``run_until_complete`` / ``run`` with virtual time.
* :func:`gather`, :class:`Event`, :class:`Queue` — the small amount of
  synchronisation machinery the protocols need.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (
    Any,
    Awaitable,
    Callable,
    Coroutine,
    Deque,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import DeadlockError, SimTimeoutError, SimulationError
from repro.obs.observer import current_observer
from repro.types import VirtualTime

__all__ = [
    "SimFuture",
    "SimTask",
    "SimLoop",
    "Event",
    "Queue",
    "gather",
]

_PENDING = "PENDING"
_RESOLVED = "RESOLVED"
_FAILED = "FAILED"
_CANCELLED = "CANCELLED"


class SimFuture:
    """A single-assignment result cell that coroutines can ``await``.

    Unlike ``asyncio.Future`` it is not tied to a thread or a running loop;
    the loop merely schedules the callbacks registered through
    :meth:`add_done_callback`.
    """

    __slots__ = ("_state", "_result", "_exception", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self._state = _PENDING
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimFuture"], None]] = []
        #: Optional human-readable label, used only in error messages.
        self.name = name

    # -- state inspection -------------------------------------------------
    def done(self) -> bool:
        """True once the future holds a result, an exception, or was cancelled."""
        return self._state != _PENDING

    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    def result(self) -> Any:
        """Return the result, raising if the future failed or is still pending."""
        if self._state == _RESOLVED:
            return self._result
        if self._state == _FAILED:
            assert self._exception is not None
            raise self._exception
        if self._state == _CANCELLED:
            raise SimulationError(f"future {self.name or id(self)} was cancelled")
        raise SimulationError(f"future {self.name or id(self)} is not done yet")

    def exception(self) -> Optional[BaseException]:
        if not self.done():
            raise SimulationError("future is not done yet")
        return self._exception

    # -- completion --------------------------------------------------------
    def set_result(self, value: Any) -> None:
        if self._state != _PENDING:
            self._require_pending()
        self._state = _RESOLVED
        self._result = value
        self._run_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        self._require_pending()
        self._state = _FAILED
        self._exception = exc
        self._run_callbacks()

    def cancel(self) -> bool:
        """Cancel the future.  Returns False if it already completed."""
        if self.done():
            return False
        self._state = _CANCELLED
        self._exception = SimulationError(
            f"future {self.name or id(self)} was cancelled"
        )
        self._run_callbacks()
        return True

    def _require_pending(self) -> None:
        if self.done():
            raise SimulationError(
                f"future {self.name or id(self)} resolved twice"
            )

    def _run_callbacks(self) -> None:
        callbacks = self._callbacks
        if not callbacks:
            return
        self._callbacks = []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Register ``callback(self)`` to run when the future completes.

        If the future is already done the callback runs immediately; the
        kernel only ever registers callbacks that re-enter the scheduler, so
        immediate invocation keeps the event ordering intact.
        """
        if self.done():
            callback(self)
        else:
            self._callbacks.append(callback)

    def remove_done_callback(self, callback: Callable[["SimFuture"], None]) -> int:
        """Deregister every pending occurrence of ``callback``; return the count.

        Used by :meth:`SimTask.cancel` to detach a dead task from the future
        it was awaiting, so the future does not keep the task alive or invoke
        its step machinery after cancellation.
        """
        before = len(self._callbacks)
        self._callbacks = [cb for cb in self._callbacks if cb != callback]
        return before - len(self._callbacks)

    # -- awaitable protocol --------------------------------------------------
    def __await__(self) -> Generator["SimFuture", None, Any]:
        if not self.done():
            yield self
        return self.result()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimFuture {self.name or hex(id(self))} {self._state}>"


class SimTask(SimFuture):
    """A future that drives a coroutine to completion on a :class:`SimLoop`."""

    __slots__ = ("_coro", "_loop", "_waiting_on", "_done_callback")

    def __init__(
        self,
        coro: Coroutine[Any, Any, Any],
        loop: "SimLoop",
        name: str = "",
    ) -> None:
        super().__init__(name=name or getattr(coro, "__name__", "task"))
        self._coro = coro
        self._loop = loop
        self._waiting_on: Optional[SimFuture] = None
        # One bound-method object for the task's lifetime, instead of a fresh
        # one per await (the registration path runs once per task step).
        self._done_callback = self._on_awaited_done

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        if self.done():
            return
        self._waiting_on = None
        try:
            if exc is not None:
                awaited = self._coro.throw(exc)
            else:
                awaited = self._coro.send(value)
        except StopIteration as stop:
            self.set_result(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate via future
            self.set_exception(error)
            return

        if not isinstance(awaited, SimFuture):
            self.set_exception(
                SimulationError(
                    f"task {self.name} awaited a non-SimFuture object: {awaited!r}"
                )
            )
            return

        self._waiting_on = awaited
        awaited.add_done_callback(self._done_callback)

    def _on_awaited_done(self, future: SimFuture) -> None:
        if self._state != _PENDING:
            return
        # Done-callbacks only fire on completed futures, so the state fields
        # are directly readable: _exception is set on failure *and* on
        # cancellation (matching exception()/result() semantics).
        error = future._exception
        if error is not None:
            self._loop._schedule_step(self, None, error)
        else:
            self._loop._schedule_step(self, future._result, None)

    def cancel(self) -> bool:
        """Cancel the task, throwing ``GeneratorExit`` into the coroutine.

        Detaches from whatever future the task was awaiting: leaving the
        done-callback registered would have the awaited future later fire
        ``_on_awaited_done`` into a dead task (a leak, and an extra callback
        on every late reply).
        """
        if self.done():
            return False
        if self._waiting_on is not None:
            self._waiting_on.remove_done_callback(self._done_callback)
            self._waiting_on = None
        self._coro.close()
        return super().cancel()


def _finish_sleep(future: SimFuture) -> None:
    """Resolve a sleep future (module-level to avoid a closure per sleep)."""
    if not future.done():
        future.set_result(None)


class SimLoop:
    """The deterministic virtual-time event loop.

    All state transitions happen by draining events in ``(time, sequence)``
    order.  :class:`repro.net.network.Network` and the timer helpers below
    only ever enqueue events through :meth:`call_at`, so the global order of
    the simulation is exactly the order of that key.

    Two stores back the single logical queue: future-time events live in a
    heap, while events scheduled *at the current time* — task steps,
    zero-delay callbacks — go to a FIFO ready deque and bypass the heap
    entirely.  Every ready entry's time is the loop's current time (time
    cannot advance while the deque is non-empty, because any later-time heap
    event sorts after it), so comparing the heap top against the deque head
    only needs the sequence numbers.  Events are plain
    ``(when, seq, callback, args)`` tuples; argument tuples replace the
    per-event lambda closures the hot paths used to allocate.
    """

    #: Process-wide total of events dispatched across every loop instance.
    #: Deterministic like the per-loop counter; lets harnesses meter kernel
    #: work that spans many loops (e.g. a sweep running one loop per run).
    total_events_processed = 0

    def __init__(self) -> None:
        self._now: VirtualTime = 0.0
        self._sequence = 0
        self._events: List[Tuple[VirtualTime, int, Callable[..., None], tuple]] = []
        self._ready: Deque[Tuple[int, Callable[..., None], tuple]] = deque()
        self._tasks: List[SimTask] = []
        #: Total events dispatched over the loop's lifetime (a deterministic
        #: counter: same run -> same count; the bench harness reports it).
        self.events_processed = 0
        #: Ambient observer captured at construction (None = observability
        #: off).  Checked once per run()/run_until_complete() call — not per
        #: event — so the disabled-mode dispatch loops stay untouched.
        self.obs = current_observer()

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> VirtualTime:
        """Current virtual time."""
        return self._now

    # -- scheduling primitives ------------------------------------------------
    def call_at(
        self, when: VirtualTime, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` at virtual time ``when`` (>= now)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < now={self._now}"
            )
        self._sequence += 1
        if when == self._now:
            self._ready.append((self._sequence, callback, args))
        else:
            heapq.heappush(self._events, (when, self._sequence, callback, args))

    def call_later(
        self, delay: VirtualTime, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self._now + delay, callback, *args)

    def create_task(
        self, coro: Coroutine[Any, Any, Any], name: str = ""
    ) -> SimTask:
        """Wrap a coroutine into a task and schedule its first step."""
        task = SimTask(coro, self, name=name)
        self._tasks.append(task)
        self._schedule_step(task, None, None)
        return task

    def _schedule_step(
        self, task: SimTask, value: Any, exc: Optional[BaseException]
    ) -> None:
        # Task steps always run "now": append straight to the ready deque.
        self._sequence += 1
        self._ready.append((self._sequence, task._step, (value, exc)))

    # -- timers ---------------------------------------------------------------
    def sleep(self, delay: VirtualTime) -> SimFuture:
        """Return a future that resolves after ``delay`` virtual time units."""
        future = SimFuture(name="sleep")
        self.call_later(delay, _finish_sleep, future)
        return future

    def timeout(self, future: SimFuture, delay: VirtualTime) -> SimFuture:
        """Wrap ``future`` with a virtual-time timeout.

        The returned future resolves with ``future``'s result, or fails with
        :class:`~repro.errors.SimTimeoutError` if ``delay`` elapses first.
        """
        wrapped = SimFuture(name=f"timeout({future.name}, {delay})")

        def on_done(inner: SimFuture) -> None:
            if wrapped.done():
                return
            error = inner.exception()
            if error is not None:
                wrapped.set_exception(error)
            else:
                wrapped.set_result(inner.result())

        def on_expire() -> None:
            if not wrapped.done():
                wrapped.set_exception(
                    SimTimeoutError(
                        f"timed out after {delay} waiting for {future.name}"
                    )
                )

        future.add_done_callback(on_done)
        self.call_later(delay, on_expire)
        return wrapped

    # -- running ---------------------------------------------------------------
    def run_until_complete(
        self,
        awaitable: Any,
        max_time: Optional[VirtualTime] = None,
    ) -> Any:
        """Drive the loop until ``awaitable`` completes and return its result.

        ``awaitable`` may be a coroutine (it is wrapped into a task) or an
        existing :class:`SimFuture`.  If the event queue drains before the
        awaitable completes a :class:`~repro.errors.DeadlockError` is raised:
        in a deterministic simulation "no more events" means no further
        progress is possible.  ``max_time`` bounds the virtual time the run
        may consume, raising :class:`~repro.errors.SimTimeoutError` past it.
        """
        if isinstance(awaitable, SimFuture):
            target = awaitable
        else:
            target = self.create_task(awaitable)
        if self.obs is not None:
            return self._run_target_observed(target, max_time)

        # Inlined dispatch (see _pop_and_run_one): this loop is the hot path
        # of every run, so it binds the stores once and only computes the
        # time-budget check on heap dispatches (ready events run at `now`,
        # which already passed the check when it was reached).
        events = self._events
        ready = self._ready
        heappop = heapq.heappop
        processed = 0
        try:
            # target._state is only ever rebound to the module-level state
            # constants, so the string comparison is an identity fast path.
            while target._state == _PENDING:
                if ready and (
                    not events
                    or events[0][0] > self._now
                    or events[0][1] > ready[0][0]
                ):
                    _seq, callback, args = ready.popleft()
                elif events:
                    when = events[0][0]
                    if max_time is not None and when > max_time:
                        raise SimTimeoutError(
                            f"virtual-time budget {max_time} exhausted "
                            f"(next event at {when})"
                        )
                    when, _seq, callback, args = heappop(events)
                    self._now = when
                else:
                    raise DeadlockError(
                        f"simulation deadlocked at t={self._now}: "
                        f"no pending events but {target.name!r} is not done"
                    )
                processed += 1
                callback(*args)
        finally:
            self.events_processed += processed
            SimLoop.total_events_processed += processed
        return target.result()

    def _run_target_observed(
        self, target: SimFuture, max_time: Optional[VirtualTime]
    ) -> Any:
        """Observed twin of the :meth:`run_until_complete` dispatch loop.

        Same ordering, same error behaviour; additionally splits the dispatch
        count into ready-deque vs heap hits, tracks the peak queue depth, and
        folds the totals into the observer at loop exit.  Kept as a separate
        copy so the disabled-mode loop carries zero per-event overhead.
        """
        obs = self.obs
        events = self._events
        ready = self._ready
        heappop = heapq.heappop
        ready_hits = 0
        heap_hits = 0
        max_depth = 0
        try:
            while target._state == _PENDING:
                depth = len(events) + len(ready)
                if depth > max_depth:
                    max_depth = depth
                if ready and (
                    not events
                    or events[0][0] > self._now
                    or events[0][1] > ready[0][0]
                ):
                    _seq, callback, args = ready.popleft()
                    ready_hits += 1
                elif events:
                    when = events[0][0]
                    if max_time is not None and when > max_time:
                        raise SimTimeoutError(
                            f"virtual-time budget {max_time} exhausted "
                            f"(next event at {when})"
                        )
                    when, _seq, callback, args = heappop(events)
                    self._now = when
                    heap_hits += 1
                else:
                    raise DeadlockError(
                        f"simulation deadlocked at t={self._now}: "
                        f"no pending events but {target.name!r} is not done"
                    )
                callback(*args)
        finally:
            processed = ready_hits + heap_hits
            self.events_processed += processed
            SimLoop.total_events_processed += processed
            obs.kernel_run(ready_hits, heap_hits, max_depth)
        return target.result()

    def run(self, until: Optional[VirtualTime] = None) -> VirtualTime:
        """Drain events, optionally only up to virtual time ``until``.

        Returns the virtual time at which the loop stopped.  Unlike
        :meth:`run_until_complete` this never raises on an empty queue — it
        is the natural way to "let the system settle".
        """
        if self.obs is not None:
            return self._run_observed(until)
        events = self._events
        ready = self._ready
        heappop = heapq.heappop
        processed = 0
        try:
            while events or ready:
                if ready and (
                    not events
                    or events[0][0] > self._now
                    or events[0][1] > ready[0][0]
                ):
                    _seq, callback, args = ready.popleft()
                elif until is not None and events[0][0] > until:
                    self._now = until
                    return self._now
                else:
                    when, _seq, callback, args = heappop(events)
                    self._now = when
                processed += 1
                callback(*args)
        finally:
            self.events_processed += processed
            SimLoop.total_events_processed += processed
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_observed(self, until: Optional[VirtualTime]) -> VirtualTime:
        """Observed twin of the :meth:`run` dispatch loop (see above)."""
        obs = self.obs
        events = self._events
        ready = self._ready
        heappop = heapq.heappop
        ready_hits = 0
        heap_hits = 0
        max_depth = 0
        try:
            while events or ready:
                depth = len(events) + len(ready)
                if depth > max_depth:
                    max_depth = depth
                if ready and (
                    not events
                    or events[0][0] > self._now
                    or events[0][1] > ready[0][0]
                ):
                    _seq, callback, args = ready.popleft()
                    ready_hits += 1
                elif until is not None and events[0][0] > until:
                    self._now = until
                    return self._now
                else:
                    when, _seq, callback, args = heappop(events)
                    self._now = when
                    heap_hits += 1
                callback(*args)
        finally:
            processed = ready_hits + heap_hits
            self.events_processed += processed
            SimLoop.total_events_processed += processed
            obs.kernel_run(ready_hits, heap_hits, max_depth)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def pending_event_count(self) -> int:
        """Number of not-yet-processed events (useful for tests)."""
        return len(self._events) + len(self._ready)


# ---------------------------------------------------------------------------
# Synchronisation helpers built on SimFuture
# ---------------------------------------------------------------------------


def gather(loop: SimLoop, awaitables: Iterable[Awaitable[Any]]) -> SimFuture:
    """Run several coroutines/futures concurrently; resolve with their results.

    The combined future resolves with a list of results in input order once
    every child is done, or fails with the first exception raised.
    """
    children: List[SimFuture] = []
    for awaitable in awaitables:
        if isinstance(awaitable, SimFuture):
            children.append(awaitable)
        else:
            children.append(loop.create_task(awaitable))

    combined = SimFuture(name="gather")
    if not children:
        combined.set_result([])
        return combined

    remaining = {"count": len(children)}

    def on_child_done(child: SimFuture) -> None:
        if combined.done():
            return
        error = child.exception()
        if error is not None:
            combined.set_exception(error)
            return
        remaining["count"] -= 1
        if remaining["count"] == 0:
            combined.set_result([c.result() for c in children])

    for child in children:
        child.add_done_callback(on_child_done)
    return combined


class Event:
    """A level-triggered event: tasks await :meth:`wait` until :meth:`set`."""

    def __init__(self, name: str = "event") -> None:
        self._name = name
        self._is_set = False
        self._waiters: Deque[SimFuture] = deque()

    def is_set(self) -> bool:
        return self._is_set

    def set(self) -> None:
        """Mark the event as set and wake every waiter."""
        self._is_set = True
        waiters, self._waiters = self._waiters, deque()
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def clear(self) -> None:
        self._is_set = False

    def wait(self) -> SimFuture:
        """Return a future resolved when (or as soon as) the event is set."""
        future = SimFuture(name=f"{self._name}.wait")
        if self._is_set:
            future.set_result(None)
        else:
            self._waiters.append(future)
        return future


class Queue:
    """An unbounded FIFO queue usable from coroutines (``await queue.get()``)."""

    def __init__(self, name: str = "queue") -> None:
        self._name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimFuture] = deque()

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done():
                getter.set_result(item)
                return
        self._items.append(item)

    def get(self) -> SimFuture:
        """Return a future resolving with the next item (FIFO order)."""
        future = SimFuture(name=f"{self._name}.get")
        if self._items:
            future.set_result(self._items.popleft())
        else:
            self._getters.append(future)
        return future

    def __len__(self) -> int:
        return len(self._items)

    def empty(self) -> bool:
        return not self._items
