"""The message envelope exchanged over the simulated network.

Messages carry a ``kind`` (the protocol-level message type, e.g. ``"RC"`` or
``"W_ACK"``), an arbitrary ``payload`` dictionary, and bookkeeping fields the
request/response helpers use to correlate replies with requests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.types import ProcessId, VirtualTime

__all__ = ["Message"]

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A single message in flight (or delivered).

    Attributes:
        sender: id of the sending process.
        receiver: id of the destination process.
        kind: protocol-level type tag (``"RC"``, ``"T"``, ``"R"``, ...).
        payload: protocol-specific contents; values should be treated as
            immutable by receivers (the network does not deep-copy them).
        request_id: correlation id used by :class:`repro.net.process.Process`
            request/response helpers; ``None`` for one-way messages.
        is_reply: True when the message answers a request with the same
            ``request_id`` (set automatically by :meth:`reply`).
        sent_at / delivered_at: virtual timestamps filled in by the network.
        msg_id: globally unique id, useful for tracing.
    """

    sender: ProcessId
    receiver: ProcessId
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    request_id: Optional[int] = None
    is_reply: bool = False
    sent_at: VirtualTime = 0.0
    delivered_at: VirtualTime = 0.0
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def reply(self, kind: str, payload: Optional[Dict[str, Any]] = None) -> "Message":
        """Build a response to this message, preserving the correlation id."""
        return Message(
            sender=self.receiver,
            receiver=self.sender,
            kind=kind,
            payload=payload or {},
            request_id=self.request_id,
            is_reply=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message #{self.msg_id} {self.kind} {self.sender}->{self.receiver}"
            f" req={self.request_id}>"
        )
