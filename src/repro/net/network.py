"""Reliable asynchronous point-to-point links with crash faults and partitions.

The :class:`Network` connects every registered :class:`~repro.net.process.Process`
with reliable links: a message sent between two correct processes is
eventually delivered, exactly once, after a delay chosen by the configured
:class:`~repro.net.latency.LatencyModel`.  That is precisely the paper's
system model (Section II).

Fault injection:

* :meth:`Network.crash` — crash-stop a process.  Crashed processes neither
  send nor receive; messages already in flight towards them are silently
  discarded on delivery (an acceptable refinement of crash-stop semantics).
* :meth:`Network.recover` — un-crash a process (the crash-recovery model:
  it rejoins with its state intact; traffic during the outage was lost).
* :meth:`Network.partition` / :meth:`Network.heal` — temporarily hold
  messages crossing a partition boundary.  Because the system is
  asynchronous, a partition is indistinguishable from very slow links; the
  held messages are released (in order) when the partition heals, so links
  remain reliable.

The network also keeps counters (messages sent, delivered, per-kind) that the
benchmark harness reads to report message complexity.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import UnknownProcessError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.net.simloop import SimLoop
from repro.obs.observer import current_observer
from repro.types import ProcessId, VirtualTime

__all__ = ["Network"]


class Network:
    """The message fabric connecting simulated processes."""

    def __init__(
        self,
        loop: SimLoop,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.loop = loop
        self.latency = latency or ConstantLatency(1.0)
        self._processes: Dict[ProcessId, "ProcessLike"] = {}
        self._crashed: Set[ProcessId] = set()
        self._partition_groups: List[Set[ProcessId]] = []
        # pid -> group index, rebuilt only by partition()/heal() so the
        # per-delivery partition check is two dict lookups, not a rebuild.
        self._group_of: Dict[ProcessId, int] = {}
        self._implicit_group = 0
        self._held: List[Message] = []
        # Statistics
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.sent_by_kind: Counter = Counter()
        #: Ambient observer captured at construction (None = observability
        #: off).  The protocols reach it through ``process.network.obs``.
        self.obs = current_observer()

    # -- membership ------------------------------------------------------------
    def register(self, process: "ProcessLike") -> None:
        """Attach a process to the network (its ``pid`` must be unique)."""
        if process.pid in self._processes:
            raise UnknownProcessError(
                f"process id {process.pid!r} registered twice"
            )
        self._processes[process.pid] = process

    def process_ids(self) -> Sequence[ProcessId]:
        return tuple(self._processes)

    def has_process(self, pid: ProcessId) -> bool:
        """Whether ``pid`` is registered (fault targets are checked up front)."""
        return pid in self._processes

    def get_process(self, pid: ProcessId) -> "ProcessLike":
        try:
            return self._processes[pid]
        except KeyError as exc:
            raise UnknownProcessError(f"unknown process {pid!r}") from exc

    # -- fault injection ---------------------------------------------------------
    def crash(self, pid: ProcessId) -> None:
        """Crash-stop ``pid``: it stops sending and receiving forever."""
        self.get_process(pid)  # validates existence
        self._crashed.add(pid)
        if self.obs is not None:
            self.obs.process_crashed(pid, self.loop.now)

    def recover(self, pid: ProcessId) -> None:
        """Un-crash ``pid``: it rejoins with its pre-crash state intact.

        This models the crash-*recovery* variant where a process resumes from
        durable state: messages sent to it while down were dropped (not
        queued), so to its peers the outage is indistinguishable from a long
        partition, which the asynchronous protocols tolerate by design.
        A no-op for processes that never crashed.
        """
        self.get_process(pid)  # validates existence
        self._crashed.discard(pid)
        if self.obs is not None:
            self.obs.process_recovered(pid, self.loop.now)

    def is_crashed(self, pid: ProcessId) -> bool:
        return pid in self._crashed

    def crashed_processes(self) -> Set[ProcessId]:
        return set(self._crashed)

    def partition(self, groups: Iterable[Iterable[ProcessId]]) -> None:
        """Split processes into groups; cross-group messages are held.

        Processes not listed in any group form an implicit extra group.
        """
        self._partition_groups = [set(group) for group in groups]
        self._rebuild_partition_map()
        if self.obs is not None:
            self.obs.partition_started(
                [sorted(group) for group in self._partition_groups], self.loop.now
            )

    def heal(self) -> None:
        """Remove the partition and release every held message immediately."""
        self._partition_groups = []
        self._rebuild_partition_map()
        held, self._held = self._held, []
        for message in held:
            self._schedule_delivery(message, extra_delay=0.0)
        if self.obs is not None:
            self.obs.partition_healed(len(held), self.loop.now)

    def _rebuild_partition_map(self) -> None:
        group_of: Dict[ProcessId, int] = {}
        for index, group in enumerate(self._partition_groups):
            for pid in group:
                group_of[pid] = index
        self._group_of = group_of
        self._implicit_group = len(self._partition_groups)

    def _crosses_partition(self, sender: ProcessId, receiver: ProcessId) -> bool:
        if not self._partition_groups:
            return False
        group_of = self._group_of
        implicit = self._implicit_group
        return group_of.get(sender, implicit) != group_of.get(receiver, implicit)

    # -- sending -------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send ``message``; delivery is scheduled after the model's delay."""
        if message.receiver not in self._processes:
            raise UnknownProcessError(f"unknown receiver {message.receiver!r}")
        if message.sender in self._crashed:
            # A crashed process performs no further actions.
            self.messages_dropped += 1
            if self.obs is not None:
                self.obs.message_dropped(message, self.loop.now, "sender-crashed")
            return
        message.sent_at = self.loop.now
        self.messages_sent += 1
        self.sent_by_kind[message.kind] += 1
        if self.obs is not None:
            self.obs.message_sent(message, self.loop.now)
        delay = self.latency.delay(message.sender, message.receiver, self.loop.now)
        self._schedule_delivery(message, extra_delay=delay)

    def _schedule_delivery(self, message: Message, extra_delay: VirtualTime) -> None:
        # Passing the message as an event argument avoids allocating one
        # lambda closure per message on the send hot path.
        self.loop.call_later(extra_delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        if message.receiver in self._crashed:
            self.messages_dropped += 1
            if self.obs is not None:
                self.obs.message_dropped(message, self.loop.now, "receiver-crashed")
            return
        if self._crosses_partition(message.sender, message.receiver):
            # Hold until the partition heals; links stay reliable.
            self._held.append(message)
            return
        message.delivered_at = self.loop.now
        self.messages_delivered += 1
        if self.obs is not None:
            self.obs.message_delivered(message, self.loop.now)
        receiver = self._processes[message.receiver]
        receiver.deliver(message)

    # -- convenience -----------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Snapshot of the traffic counters (useful in benchmarks)."""
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
            "held": len(self._held),
        }

    def reset_stats(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.sent_by_kind.clear()


class ProcessLike:
    """Structural interface the network expects (see :class:`repro.net.process.Process`)."""

    pid: ProcessId

    def deliver(self, message: Message) -> None:  # pragma: no cover - interface
        raise NotImplementedError
