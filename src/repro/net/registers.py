"""Shared single-writer multi-reader (SWMR) registers.

Algorithms 1 and 2 of the paper (the consensus reductions) assume "a shared
array of SWMR registers ``R`` of size ``n``" in which each server stores its
proposal.  The reduction only needs register semantics — regular SWMR
registers are implementable on top of the asynchronous message-passing model
(that is exactly what the ABD protocol in :mod:`repro.storage.abd` does) — so
this module provides the simplest faithful substitute: a linearizable
in-memory register array.  ``DESIGN.md`` records this substitution.

Two classes are provided:

* :class:`SharedRegister` — a single multi-reader cell with an optional
  single designated writer.
* :class:`SWMRRegisterArray` — the array ``R[1..n]`` of the reductions, where
  register ``i`` may only be written by its owner ``s_i``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.types import ProcessId

__all__ = ["SharedRegister", "SWMRRegisterArray"]


class SharedRegister:
    """A linearizable shared register, optionally single-writer."""

    def __init__(self, owner: Optional[ProcessId] = None, initial: Any = None) -> None:
        self.owner = owner
        self._value = initial
        self.write_count = 0
        self.read_count = 0

    def write(self, writer: ProcessId, value: Any) -> None:
        """Write ``value``; raises if a non-owner writes an SWMR register."""
        if self.owner is not None and writer != self.owner:
            raise ConfigurationError(
                f"register owned by {self.owner!r} cannot be written by {writer!r}"
            )
        self._value = value
        self.write_count += 1

    def read(self, reader: Optional[ProcessId] = None) -> Any:
        """Return the current value (any process may read)."""
        self.read_count += 1
        return self._value


class SWMRRegisterArray:
    """The shared array ``R`` of Algorithms 1 and 2.

    ``R[s_i]`` may only be written by server ``s_i``; every process may read
    any entry.  Entries start as ``None`` ("unwritten").
    """

    def __init__(self, owners: Sequence[ProcessId]) -> None:
        if len(set(owners)) != len(owners):
            raise ConfigurationError("register owners must be unique")
        self._registers: Dict[ProcessId, SharedRegister] = {
            owner: SharedRegister(owner=owner) for owner in owners
        }

    def owners(self) -> Sequence[ProcessId]:
        return tuple(self._registers)

    def write(self, writer: ProcessId, value: Any) -> None:
        """Server ``writer`` stores ``value`` in its own register."""
        register = self._registers.get(writer)
        if register is None:
            raise ConfigurationError(f"{writer!r} owns no register in this array")
        register.write(writer, value)

    def read(self, owner: ProcessId, reader: Optional[ProcessId] = None) -> Any:
        """Read the register owned by ``owner`` (readable by anyone)."""
        register = self._registers.get(owner)
        if register is None:
            raise ConfigurationError(f"{owner!r} owns no register in this array")
        return register.read(reader)

    def snapshot(self) -> Dict[ProcessId, Any]:
        """A (non-atomic) read of every entry, for inspection in tests."""
        return {owner: reg.read() for owner, reg in self._registers.items()}
