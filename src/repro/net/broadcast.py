"""Broadcast primitives used by the protocols.

Algorithm 4 of the paper RB-broadcasts transfer messages using a *reliable
broadcast* primitive [25].  Under crash faults reliable broadcast guarantees:

* **Validity** — if a correct process broadcasts ``m``, it eventually
  delivers ``m``.
* **Agreement** — if any correct process delivers ``m``, every correct
  process eventually delivers ``m`` (even if the broadcaster crashed midway).
* **Integrity** — every message is delivered at most once, and only if it was
  broadcast.

The classical crash-fault implementation is *echo on first delivery*: the
broadcaster best-effort-broadcasts ``m``; every process relays ``m`` to all
peers the first time it receives it, then delivers it locally.  That is what
:class:`ReliableBroadcast` implements.  :class:`BestEffortBroadcast` is the
trivial send-to-all building block, exposed separately because several
baselines only need best-effort guarantees.
"""

from __future__ import annotations

import inspect
import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.net.message import Message
from repro.net.process import Process
from repro.types import ProcessId

__all__ = ["BestEffortBroadcast", "ReliableBroadcast"]

#: Delivery callback; it may be a plain function or a coroutine function — in
#: the latter case the delivery is spawned as a task on the process loop.
DeliverCallback = Callable[[ProcessId, Dict[str, Any]], Any]


def _invoke_deliver(
    process: Process, callback: DeliverCallback, origin: ProcessId, payload: Dict[str, Any]
) -> None:
    result = callback(origin, payload)
    if inspect.iscoroutine(result):
        process.loop.create_task(result, name=f"{process.pid}.deliver")


class BestEffortBroadcast:
    """Send-to-all broadcast with no guarantees beyond reliable links.

    If the broadcaster stays correct, every correct peer eventually receives
    the message; if the broadcaster crashes mid-broadcast, an arbitrary subset
    receives it.
    """

    KIND = "BEB"

    def __init__(
        self,
        process: Process,
        peers: Iterable[ProcessId],
        on_deliver: DeliverCallback,
        kind: Optional[str] = None,
    ) -> None:
        self.process = process
        self.peers: List[ProcessId] = list(peers)
        self.on_deliver = on_deliver
        self.kind = kind or self.KIND
        process.register_handler(self.kind, self._on_message)

    def broadcast(self, payload: Dict[str, Any]) -> None:
        """Best-effort broadcast ``payload`` to every peer (including self)."""
        for peer in self.peers:
            if peer == self.process.pid:
                # Local delivery happens immediately; a process always
                # "receives" its own broadcast.
                _invoke_deliver(self.process, self.on_deliver, self.process.pid, dict(payload))
            else:
                self.process.send(peer, self.kind, dict(payload))

    def _on_message(self, message: Message) -> None:
        _invoke_deliver(self.process, self.on_deliver, message.sender, message.payload)


class ReliableBroadcast:
    """Crash-fault reliable broadcast (echo/relay on first delivery)."""

    KIND = "RB"

    _broadcast_ids = itertools.count(1)

    def __init__(
        self,
        process: Process,
        peers: Iterable[ProcessId],
        on_deliver: DeliverCallback,
        kind: Optional[str] = None,
    ) -> None:
        self.process = process
        self.peers: List[ProcessId] = list(peers)
        self.on_deliver = on_deliver
        self.kind = kind or self.KIND
        self._delivered: Set[Tuple[ProcessId, int]] = set()
        process.register_handler(self.kind, self._on_message)

    def broadcast(self, payload: Dict[str, Any]) -> None:
        """RB-broadcast ``payload``; the origin delivers it immediately."""
        broadcast_id = next(self._broadcast_ids)
        envelope = {
            "rb_origin": self.process.pid,
            "rb_id": broadcast_id,
            "rb_payload": dict(payload),
        }
        self._handle(envelope)

    def _on_message(self, message: Message) -> None:
        self._handle(message.payload)

    def _handle(self, envelope: Dict[str, Any]) -> None:
        key = (envelope["rb_origin"], envelope["rb_id"])
        if key in self._delivered:
            return
        self._delivered.add(key)
        # Relay before delivering so that a crash inside the application
        # callback cannot prevent the echo from going out.
        for peer in self.peers:
            if peer != self.process.pid:
                self.process.send(peer, self.kind, dict(envelope))
        _invoke_deliver(
            self.process, self.on_deliver, envelope["rb_origin"], dict(envelope["rb_payload"])
        )
