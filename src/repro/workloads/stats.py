"""Statistical self-description of generated workloads.

:func:`workload_stats` measures what a workload *actually* contains —
achieved key skew, achieved arrival rate, read fraction — as opposed to
what its generator was configured to produce.  The result is a plain
JSON-serialisable dict, attached to every declarative run result so sweeps
over workload parameters can report the realised distribution next to the
latency numbers.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Dict, List, Optional

from repro.sim.workload import Workload

__all__ = ["workload_stats"]


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def workload_stats(workload: Workload) -> Dict[str, Any]:
    """Achieved per-axis statistics of ``workload`` (JSON-serialisable).

    Arrival statistics are measured over *logical* operations: a multi-key
    batch (``keys_per_op > 1``) expands into several physical operations, of
    which only the ``batch_index == 0`` carrier holds the arrival timing.
    The remainders used to be miscounted as zero-think closed-loop arrivals,
    dragging ``mean_think_time`` towards zero and deflating
    ``open_loop_fraction``; now they are grouped back onto their carrier.
    For workloads without multi-operation batches the output is unchanged
    field-for-field; batched workloads additionally report a ``batching``
    block (logical-operation count and mean batch size).
    """
    operations = workload.operations
    total = len(operations)
    reads = sum(1 for op in operations if op.kind == "read")
    key_counts = Counter(op.key for op in operations if op.key is not None)
    ranked = sorted(key_counts.values(), reverse=True)
    keyed = sum(ranked)

    # Timing carriers: the physical op that holds its logical operation's
    # arrival.  Untagged operations (batch_id is None) are their own carrier.
    carriers = [op for op in operations if op.batch_index == 0]
    logical_total = len(carriers)
    remainders = total - logical_total

    think_times = [op.issue_after for op in carriers if op.issue_at is None]
    # Interarrival gaps need the per-client arrival sequence in issue order.
    # Operation lists are not guaranteed to be time-sorted — a merged or
    # hand-edited trace, or phases flipping mid-batch, can interleave equal
    # issue_at values out of list order — so sort each client's carriers by
    # the stable (issue_at, batch_id, batch_index) key instead of trusting
    # list position (time-ordered inputs are unchanged: equal issue_at ties
    # keep their per-client batch order).
    arrivals_by_client: Dict[str, List[tuple]] = defaultdict(list)
    for index, op in enumerate(carriers):
        if op.issue_at is not None:
            order = op.batch_id if op.batch_id is not None else index
            arrivals_by_client[op.client].append(
                (op.issue_at, order, op.batch_index)
            )
    gaps: List[float] = []
    makespan = 0.0
    open_loop_ops = 0
    for entries in arrivals_by_client.values():
        entries.sort()
        times = [entry[0] for entry in entries]
        open_loop_ops += len(times)
        makespan = max(makespan, times[-1])
        gaps.extend(b - a for a, b in zip(times, times[1:]))

    stats: Dict[str, Any] = {
        "operations": total,
        "clients": len(workload.clients()),
        "reads": reads,
        "writes": total - reads,
        "read_fraction": reads / total if total else 0.0,
        "keys": {
            "distinct": len(key_counts),
            "top1_share": ranked[0] / keyed if keyed else 0.0,
            "top10_share": sum(ranked[:10]) / keyed if keyed else 0.0,
        },
        "arrivals": {
            "open_loop_fraction": open_loop_ops / logical_total if logical_total else 0.0,
            "mean_think_time": _mean(think_times),
            "mean_interarrival": _mean(gaps),
            # Aggregate offered load across clients; open-loop only.
            "offered_rate": open_loop_ops / makespan if makespan > 0 else None,
        },
    }
    if remainders:
        stats["batching"] = {
            "logical_operations": logical_total,
            "physical_operations": total,
            "mean_batch_size": total / logical_total if logical_total else 0.0,
        }
    return stats
