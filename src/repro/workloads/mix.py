"""Operation mixes: what each logical operation does.

An :class:`OperationMix` decides the read/write split and how many keys one
logical operation touches.  With ``keys_per_op > 1`` each logical arrival
fans out into that many back-to-back physical operations of the same kind
(the multi-key-transaction approximation over a sequential client), all
carrying the arrival's timing on the first operation and zero delay on the
rest.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from repro.errors import ConfigurationError

__all__ = ["OperationMix"]


class OperationMix:
    """Read/write ratio plus the multi-key fan-out of one logical operation."""

    def __init__(self, read_ratio: float = 0.5, keys_per_op: int = 1) -> None:
        if not 0.0 <= read_ratio <= 1.0:
            raise ConfigurationError(f"read_ratio must be within [0, 1], got {read_ratio}")
        if keys_per_op < 1:
            raise ConfigurationError(f"keys_per_op must be at least 1, got {keys_per_op}")
        self.read_ratio = read_ratio
        self.keys_per_op = keys_per_op

    def sample_kind(self, rng: random.Random) -> str:
        """Draw ``"read"`` or ``"write"``, consuming one ``rng.random()``."""
        return "read" if rng.random() < self.read_ratio else "write"

    def describe(self) -> Dict[str, Any]:
        return {"read_ratio": self.read_ratio, "keys_per_op": self.keys_per_op}
