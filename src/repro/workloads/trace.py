"""Workload trace record / replay (JSONL).

A trace is one JSON object per line, one line per operation, carrying
exactly the fields of :class:`~repro.sim.workload.Operation`.  Floats
round-trip exactly through ``json`` (``repr`` shortest-form), so
``read_trace(write_trace(w)) == w`` operation-for-operation — which makes
traces usable both as regression fixtures and as a bridge for replaying
externally captured workloads inside the simulator.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import ConfigurationError
from repro.sim.workload import Operation, Workload

__all__ = ["write_trace", "read_trace", "operation_to_record", "operation_from_record"]

_FIELDS = (
    "client",
    "kind",
    "value",
    "issue_after",
    "key",
    "issue_at",
    "batch_id",
    "batch_index",
)


def operation_to_record(operation: Operation) -> Dict[str, Any]:
    """One operation as a plain JSON-serialisable dict."""
    return {field: getattr(operation, field) for field in _FIELDS}


def operation_from_record(record: Dict[str, Any]) -> Operation:
    """Rebuild an operation from a trace record, validating its fields."""
    unknown = set(record) - set(_FIELDS)
    if unknown:
        raise ConfigurationError(f"trace record has unknown fields: {sorted(unknown)}")
    missing = {"client", "kind"} - set(record)
    if missing:
        raise ConfigurationError(f"trace record is missing fields: {sorted(missing)}")
    if record["kind"] not in ("read", "write"):
        raise ConfigurationError(f"trace record has invalid kind {record['kind']!r}")
    return Operation(
        client=record["client"],
        kind=record["kind"],
        value=record.get("value"),
        issue_after=record.get("issue_after", 0.0),
        key=record.get("key"),
        issue_at=record.get("issue_at"),
        batch_id=record.get("batch_id"),
        batch_index=record.get("batch_index", 0),
    )


def write_trace(workload: Workload, path: str) -> int:
    """Write ``workload`` to ``path`` as JSONL; returns the operation count."""
    with open(path, "w", encoding="utf-8") as handle:
        for operation in workload.operations:
            handle.write(json.dumps(operation_to_record(operation), sort_keys=True))
            handle.write("\n")
    return len(workload.operations)


def read_trace(path: str) -> Workload:
    """Load a JSONL trace written by :func:`write_trace` (or by hand)."""
    operations: List[Operation] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{line_number}: malformed trace line: {error}"
                ) from None
            operations.append(operation_from_record(record))
    if not operations:
        raise ConfigurationError(f"trace {path!r} contains no operations")
    return Workload(operations=operations)
