"""Composable workload generation.

Workloads are assembled from four independent axes, each swappable without
touching the others:

* :mod:`repro.workloads.keys` — key-popularity distributions (uniform,
  zipfian, hotspot with rotation);
* :mod:`repro.workloads.arrivals` — arrival processes (closed-loop think
  time, open-loop Poisson, bursty on/off);
* :mod:`repro.workloads.mix` — operation mixes (read ratio, multi-key
  fan-out);
* :mod:`repro.workloads.phases` — phase schedules flipping any axis at a
  virtual time (ramp-ups, mid-run skew shifts).

:class:`~repro.workloads.generator.WorkloadGenerator` combines them into a
deterministic :class:`~repro.sim.workload.Workload`;
:func:`~repro.workloads.stats.workload_stats` reports the *achieved*
skew/arrival statistics; :mod:`repro.workloads.trace` records and replays
workloads as JSONL.  The declarative experiment layer
(:class:`repro.experiments.WorkloadSpec`) exposes every axis as sweepable
dotted paths (``workload.keys.zipf_s``, ``workload.arrivals.rate`` ...).
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    ClosedLoopArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.keys import (
    HotspotKeys,
    KeyDistribution,
    UniformKeys,
    ZipfianKeys,
    key_name,
)
from repro.workloads.mix import OperationMix
from repro.workloads.phases import Phase, PhaseSchedule
from repro.workloads.stats import workload_stats
from repro.workloads.trace import read_trace, write_trace

__all__ = [
    # keys
    "KeyDistribution",
    "UniformKeys",
    "ZipfianKeys",
    "HotspotKeys",
    "key_name",
    # arrivals
    "ArrivalProcess",
    "ClosedLoopArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    # mix + phases
    "OperationMix",
    "Phase",
    "PhaseSchedule",
    # generator + stats + trace
    "WorkloadGenerator",
    "workload_stats",
    "write_trace",
    "read_trace",
]
