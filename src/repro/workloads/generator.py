"""The composable workload generator.

A :class:`WorkloadGenerator` assembles the independent axes — key
popularity, arrival process, operation mix, phase schedule — into a
:class:`~repro.sim.workload.Workload` the simulation runner executes.

Determinism contract: each client draws from its own
``random.Random(f"{seed}/{client}")`` stream (string seeding hashes through
SHA-512, stable across interpreters and processes), so a client's operation
sequence depends only on the seed, the client's name and the axes — not on
how many other clients exist or in which order they are listed.  The one
exception is the first-listed client's first operation, whose *kind* is
forced to a write (the draw is still consumed, so the rest of the stream is
unaffected).  Per operation the draw order is fixed: timing, then kind,
then keys.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.workload import Operation, Workload
from repro.types import ProcessId
from repro.workloads.arrivals import ArrivalProcess, ClosedLoopArrivals
from repro.workloads.keys import KeyDistribution, UniformKeys
from repro.workloads.mix import OperationMix
from repro.workloads.phases import Phase, PhaseSchedule

__all__ = ["WorkloadGenerator"]


class WorkloadGenerator:
    """Composable generator: keys x arrivals x mix x phases -> Workload."""

    def __init__(
        self,
        keys: Optional[KeyDistribution] = None,
        arrivals: Optional[ArrivalProcess] = None,
        mix: Optional[OperationMix] = None,
        phases: Sequence[Phase] = (),
    ) -> None:
        self.schedule = PhaseSchedule(
            keys=keys if keys is not None else UniformKeys(),
            arrivals=arrivals if arrivals is not None else ClosedLoopArrivals(),
            mix=mix if mix is not None else OperationMix(),
            phases=tuple(phases),
        )

    def generate(
        self,
        clients: Sequence[ProcessId],
        operations_per_client: int,
        seed: int = 0,
    ) -> Workload:
        """Generate ``operations_per_client`` logical operations per client.

        A logical operation touching ``keys_per_op`` keys expands into that
        many physical :class:`Operation` records (same kind, arrival timing
        on the first, zero delay on the rest).  The first operation of the
        first client is always a write, so reads never observe the
        "unwritten" initial value.
        """
        if not clients:
            raise ConfigurationError("need at least one client")
        if operations_per_client < 1:
            raise ConfigurationError("need at least one operation per client")
        operations: List[Operation] = []
        for client_index, client in enumerate(clients):
            rng = random.Random(f"{seed}/{client}")
            now = 0.0
            value_counter = 0
            for op_index in range(operations_per_client):
                # The arrival process is chosen at the current clock; keys and
                # mix are re-resolved at the issue time, so a phase boundary
                # flips them on exactly the first operation issued past it.
                _, arrivals, _ = self.schedule.axes_at(now)
                issue_after, issue_at = arrivals.next_event(rng, now)
                now = issue_at if issue_at is not None else now + issue_after
                keys, _, mix = self.schedule.axes_at(now)
                # Always consume the kind draw, so a client's stream does not
                # depend on whether it happens to be listed first.
                kind = mix.sample_kind(rng)
                if client_index == 0 and op_index == 0:
                    kind = "write"
                batch = tuple(keys.sample(rng) for _ in range(mix.keys_per_op))
                for batch_index, key in enumerate(batch):
                    if kind == "write":
                        value_counter += 1
                        value: Optional[str] = f"value-{client}-{value_counter}"
                    else:
                        value = None
                    first = batch_index == 0
                    operations.append(
                        Operation(
                            client=client,
                            kind=kind,
                            value=value,
                            issue_after=issue_after if first else 0.0,
                            key=key,
                            issue_at=issue_at if first else None,
                            batch_id=op_index,
                            batch_index=batch_index,
                        )
                    )
        return Workload(operations=operations)

    def describe(self) -> dict:
        """The configured axes (base phase), JSON-serialisable."""
        base = self.schedule.base
        assert base.keys is not None and base.arrivals is not None and base.mix is not None
        return {
            "keys": base.keys.describe(),
            "arrivals": base.arrivals.describe(),
            "mix": base.mix.describe(),
            "phases": len(self.schedule.phases),
        }
