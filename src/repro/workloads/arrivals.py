"""Arrival processes: when operations are issued.

An :class:`ArrivalProcess` produces one timing event per logical operation
through :meth:`ArrivalProcess.next_event`, which returns an
``(issue_after, issue_at)`` pair — exactly the two timing fields of
:class:`repro.sim.workload.Operation`:

* **closed-loop** processes return ``(think, None)``: the client waits
  ``think`` after its previous operation *completes* before issuing the next
  (the classical think-time model, self-throttling under load);
* **open-loop** processes return ``(0.0, at)`` with an *absolute* virtual
  time: the client issues at ``at`` regardless of how long earlier
  operations took — the arrival rate does not bend when the system slows
  down, which is what saturates a store the way real user traffic does.

The generator advances its per-client clock from the returned pair, so
phase schedules can switch a client between processes mid-stream.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.types import VirtualTime

__all__ = [
    "ArrivalProcess",
    "ClosedLoopArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
]


class ArrivalProcess:
    """Base class: per-operation timing events over a per-client clock."""

    #: True when the process schedules absolute issue times.
    open_loop: bool = False

    def next_event(
        self, rng: random.Random, now: VirtualTime
    ) -> Tuple[VirtualTime, Optional[VirtualTime]]:
        """Timing of the next operation given the client clock ``now``.

        Returns ``(issue_after, issue_at)``; closed-loop processes set
        ``issue_at`` to ``None``, open-loop processes return ``issue_after``
        of ``0.0`` and an absolute ``issue_at >= now``.
        """
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """The process's kind and parameters, JSON-serialisable."""
        raise NotImplementedError


class ClosedLoopArrivals(ArrivalProcess):
    """Exponential think times relative to operation completion."""

    open_loop = False

    def __init__(self, mean_think_time: VirtualTime = 1.0) -> None:
        if mean_think_time < 0:
            raise ConfigurationError(
                f"mean_think_time must be non-negative, got {mean_think_time}"
            )
        self.mean_think_time = mean_think_time

    def next_event(
        self, rng: random.Random, now: VirtualTime
    ) -> Tuple[VirtualTime, Optional[VirtualTime]]:
        if self.mean_think_time <= 0:
            return 0.0, None
        return rng.expovariate(1.0 / self.mean_think_time), None

    def describe(self) -> Dict[str, Any]:
        return {"kind": "closed", "mean_think_time": self.mean_think_time}


class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson arrivals at ``rate`` operations per virtual time unit."""

    open_loop = True

    def __init__(self, rate: float = 1.0) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        self.rate = rate

    def next_event(
        self, rng: random.Random, now: VirtualTime
    ) -> Tuple[VirtualTime, Optional[VirtualTime]]:
        return 0.0, now + rng.expovariate(self.rate)

    def describe(self) -> Dict[str, Any]:
        return {"kind": "poisson", "rate": self.rate}


class OnOffArrivals(ArrivalProcess):
    """Bursty open-loop arrivals: Poisson bursts separated by idle gaps.

    Time is divided into cycles of ``burst_length + idle_time``; within the
    first ``burst_length`` of each cycle, arrivals are Poisson at
    ``burst_rate``; the idle remainder produces none.  A draw that overshoots
    the current burst is re-drawn inside the next one, so every arrival lands
    inside an on-window.
    """

    open_loop = True

    def __init__(
        self,
        burst_rate: float = 4.0,
        burst_length: VirtualTime = 5.0,
        idle_time: VirtualTime = 10.0,
    ) -> None:
        if burst_rate <= 0:
            raise ConfigurationError(f"burst_rate must be positive, got {burst_rate}")
        if burst_length <= 0:
            raise ConfigurationError(f"burst_length must be positive, got {burst_length}")
        if idle_time < 0:
            raise ConfigurationError(f"idle_time must be non-negative, got {idle_time}")
        self.burst_rate = burst_rate
        self.burst_length = burst_length
        self.idle_time = idle_time

    def next_event(
        self, rng: random.Random, now: VirtualTime
    ) -> Tuple[VirtualTime, Optional[VirtualTime]]:
        cycle = self.burst_length + self.idle_time
        t = now
        while True:
            position = t % cycle
            if position >= self.burst_length:
                t += cycle - position  # skip the idle remainder of this cycle
                continue
            gap = rng.expovariate(self.burst_rate)
            if position + gap < self.burst_length:
                return 0.0, t + gap
            t += self.burst_length - position  # burst exhausted; try the next one

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "onoff",
            "burst_rate": self.burst_rate,
            "burst_length": self.burst_length,
            "idle_time": self.idle_time,
        }
