"""Key-popularity distributions.

A :class:`KeyDistribution` decides *which* key an operation touches.  The
distributions are independent of arrival timing and operation mix, so they
compose freely with the other workload axes:

* :class:`UniformKeys` — every key equally likely;
* :class:`ZipfianKeys` — rank-``i`` key drawn with probability proportional
  to ``i^-s`` (the classical skewed-popularity model: a handful of hot keys
  absorb most of the traffic);
* :class:`HotspotKeys` — a contiguous hot set receives a fixed fraction of
  the traffic; :meth:`HotspotKeys.shifted` rotates the hot set, which is how
  phase schedules express mid-run skew flips.

Keys are plain strings ``k1 .. kN`` where the *index is the popularity rank*
for :class:`ZipfianKeys` — ``k1`` is always the hottest key — making achieved
frequencies directly testable.  Sampling consumes exactly one ``rng.random()``
per key, so streams stay deterministic under composition.
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Dict, List, Tuple

from repro.errors import ConfigurationError

__all__ = ["KeyDistribution", "UniformKeys", "ZipfianKeys", "HotspotKeys", "key_name"]


def key_name(index: int) -> str:
    """Canonical name of the ``index``-th key (1-based), e.g. ``k1``."""
    if index < 1:
        raise ConfigurationError(f"key indices are 1-based, got {index}")
    return f"k{index}"


class KeyDistribution:
    """Base class: a seeded-stream sampler over a finite key space."""

    #: Number of distinct keys (``k1 .. k<space>``).
    space: int

    def sample(self, rng: random.Random) -> str:
        """Draw one key, consuming exactly one ``rng.random()``."""
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """The distribution's kind and parameters, JSON-serialisable."""
        raise NotImplementedError

    @staticmethod
    def _check_space(space: int) -> None:
        if space < 1:
            raise ConfigurationError(f"key space must be at least 1, got {space}")


class UniformKeys(KeyDistribution):
    """Every key in ``k1 .. k<space>`` is equally likely."""

    def __init__(self, space: int = 16) -> None:
        self._check_space(space)
        self.space = space

    def sample(self, rng: random.Random) -> str:
        return key_name(int(rng.random() * self.space) + 1)

    def describe(self) -> Dict[str, Any]:
        return {"kind": "uniform", "space": self.space}


class ZipfianKeys(KeyDistribution):
    """Rank-``i`` key with probability proportional to ``i^-s`` (``k1`` hottest)."""

    def __init__(self, space: int = 16, s: float = 1.1) -> None:
        self._check_space(space)
        if s <= 0:
            raise ConfigurationError(f"zipf exponent s must be positive, got {s}")
        self.space = space
        self.s = s
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, space + 1):
            total += rank ** -s
            cumulative.append(total)
        self._cumulative = [value / total for value in cumulative]

    def sample(self, rng: random.Random) -> str:
        rank = bisect.bisect_right(self._cumulative, rng.random())
        return key_name(min(rank, self.space - 1) + 1)

    def describe(self) -> Dict[str, Any]:
        return {"kind": "zipfian", "space": self.space, "s": self.s}


class HotspotKeys(KeyDistribution):
    """A contiguous hot set absorbs ``hot_weight`` of the traffic.

    The hot set is the ``hot_count`` keys starting at ``offset`` (wrapping
    around the key space); the remaining keys share the cold traffic
    uniformly.  Rotating ``offset`` moves the hotspot without changing any
    other statistic, which is exactly the mid-run skew flip the phase
    schedules need.
    """

    def __init__(
        self,
        space: int = 16,
        hot_fraction: float = 0.125,
        hot_weight: float = 0.9,
        offset: int = 0,
    ) -> None:
        self._check_space(space)
        if not 0.0 < hot_fraction <= 1.0:
            raise ConfigurationError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
        if not 0.0 <= hot_weight <= 1.0:
            raise ConfigurationError(f"hot_weight must be in [0, 1], got {hot_weight}")
        self.space = space
        self.hot_fraction = hot_fraction
        self.hot_weight = hot_weight
        self.offset = offset % space
        self.hot_count = max(1, min(space, round(space * hot_fraction)))

    def sample(self, rng: random.Random) -> str:
        # One uniform draw selects both hot-vs-cold and the position within
        # the chosen set, keeping the one-draw-per-key contract.
        draw = rng.random()
        cold_count = self.space - self.hot_count
        if cold_count == 0:
            # The hot set is the whole space: uniform, hot_weight irrelevant.
            position = min(int(draw * self.hot_count), self.hot_count - 1)
            return key_name((self.offset + position) % self.space + 1)
        if draw < self.hot_weight:
            fraction = draw / self.hot_weight if self.hot_weight > 0 else draw
            position = min(int(fraction * self.hot_count), self.hot_count - 1)
            return key_name((self.offset + position) % self.space + 1)
        fraction = (draw - self.hot_weight) / (1.0 - self.hot_weight)
        position = min(int(fraction * cold_count), cold_count - 1)
        return key_name((self.offset + self.hot_count + position) % self.space + 1)

    def shifted(self, delta: int) -> "HotspotKeys":
        """A copy whose hot set is rotated ``delta`` keys forward."""
        return HotspotKeys(
            space=self.space,
            hot_fraction=self.hot_fraction,
            hot_weight=self.hot_weight,
            offset=self.offset + delta,
        )

    def hot_keys(self) -> Tuple[str, ...]:
        """The current hot set, in rotation order."""
        return tuple(
            key_name((self.offset + position) % self.space + 1)
            for position in range(self.hot_count)
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "hotspot",
            "space": self.space,
            "hot_fraction": self.hot_fraction,
            "hot_weight": self.hot_weight,
            "offset": self.offset,
        }
