"""Phase schedules: time-varying workload axes.

A :class:`Phase` swaps any subset of the three workload axes (keys,
arrivals, mix) from a given virtual time on; ``None`` inherits the axis that
was active before the phase started.  A :class:`PhaseSchedule` holds the
base axes plus the ordered phases and answers "which axes are active at time
``t``" during generation.

The generation clock the schedule is evaluated against is the per-client
clock the generator maintains: absolute arrival time for open-loop
processes, cumulative think time for closed-loop ones (where real issue
times additionally include service latencies unknown at generation time —
phases therefore flip *no later than* their nominal start under closed
loops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.types import VirtualTime
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.keys import KeyDistribution
from repro.workloads.mix import OperationMix

__all__ = ["Phase", "PhaseSchedule"]


@dataclass(frozen=True)
class Phase:
    """An axis swap taking effect at ``start`` (``None`` inherits)."""

    start: VirtualTime
    keys: Optional[KeyDistribution] = None
    arrivals: Optional[ArrivalProcess] = None
    mix: Optional[OperationMix] = None


class PhaseSchedule:
    """Base axes plus ordered phases; resolves the active axes at a time."""

    def __init__(
        self,
        keys: KeyDistribution,
        arrivals: ArrivalProcess,
        mix: OperationMix,
        phases: Tuple[Phase, ...] = (),
    ) -> None:
        for phase in phases:
            if phase.start < 0:
                raise ConfigurationError(
                    f"phase start times must be non-negative, got {phase.start}"
                )
        self.base = Phase(start=0.0, keys=keys, arrivals=arrivals, mix=mix)
        self.phases = tuple(sorted(phases, key=lambda phase: phase.start))

    def axes_at(
        self, now: VirtualTime
    ) -> Tuple[KeyDistribution, ArrivalProcess, OperationMix]:
        """The (keys, arrivals, mix) axes active at generation clock ``now``."""
        keys, arrivals, mix = self.base.keys, self.base.arrivals, self.base.mix
        for phase in self.phases:
            if phase.start > now:
                break
            keys = phase.keys if phase.keys is not None else keys
            arrivals = phase.arrivals if phase.arrivals is not None else arrivals
            mix = phase.mix if phase.mix is not None else mix
        assert keys is not None and arrivals is not None and mix is not None
        return keys, arrivals, mix
