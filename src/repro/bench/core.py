"""The microbenchmark registry and measurement harness.

A *microbenchmark* is a named function that performs a fixed, seeded amount
of simulation work and reports what it did: how many kernel events it
dispatched, how many application-level operations it completed, and any
extra deterministic counters (messages sent, runs executed, ...).  The
harness (:func:`run_benchmark`) times the function with ``perf_counter``
and wraps everything into a :class:`BenchResult`.

The split matters for CI: **wall time is noise, counters are not.**  Two
invocations of the same benchmark must report byte-identical counters (the
simulation is deterministic), so the counters double as a cheap end-to-end
determinism check — the bench smoke job asserts them against committed
expectations while treating the wall-clock numbers as informational only.

Benchmarks support two scales: the default *full* scale, sized so that
events/sec is a stable signal, and ``quick`` (CI) scale, sized to finish in
well under a second.  Both are deterministic; they are simply different
fixed workloads, so expectations are recorded per scale.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError

__all__ = [
    "BenchResult",
    "Benchmark",
    "register_benchmark",
    "benchmark",
    "get_benchmark",
    "benchmark_names",
    "all_benchmarks",
    "run_benchmark",
]

#: A benchmark function: does the work, returns its deterministic counts.
#: The returned mapping must contain ``events`` and ``ops`` (ints) and may
#: contain a ``counters`` sub-mapping of additional deterministic counters.
BenchFn = Callable[[bool], Mapping[str, Any]]

_BENCHMARKS: Dict[str, "Benchmark"] = {}


@dataclass(frozen=True)
class BenchResult:
    """One timed benchmark execution.

    ``events`` counts simulation-kernel event dispatches, ``ops``
    application-level completed operations (awaits, storage ops, runs —
    whatever the benchmark's unit of useful work is).  ``counters`` carries
    additional deterministic counters; everything except ``wall_seconds``
    must be identical across invocations.
    """

    name: str
    quick: bool
    repeat: int
    wall_seconds: float
    events: int
    ops: int
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def deterministic_view(self) -> Dict[str, Any]:
        """The invariant part (what CI asserts against expectations)."""
        return {
            "events": self.events,
            "ops": self.ops,
            "counters": dict(self.counters),
        }

    def as_dict(self) -> Dict[str, Any]:
        """The JSON-serialisable record (trajectory files, ``--json``)."""
        return {
            "benchmark": self.name,
            "quick": self.quick,
            "repeat": self.repeat,
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "ops": self.ops,
            "ops_per_sec": self.ops_per_sec,
            "counters": dict(self.counters),
        }

    def as_row(self) -> str:
        return (
            f"{self.name:<16s} wall={self.wall_seconds:8.4f}s  "
            f"events={self.events:>9d} ({self.events_per_sec:>12,.0f}/s)  "
            f"ops={self.ops:>8d} ({self.ops_per_sec:>12,.0f}/s)"
        )


@dataclass(frozen=True)
class Benchmark:
    """A registered microbenchmark: a name, a description, and its function."""

    name: str
    description: str
    fn: BenchFn


def register_benchmark(name: str, description: str, fn: BenchFn) -> Benchmark:
    """Register a microbenchmark under ``name`` (unique)."""
    if not name:
        raise ConfigurationError("benchmark name must not be empty")
    if name in _BENCHMARKS:
        raise ConfigurationError(f"benchmark {name!r} is already registered")
    entry = Benchmark(name=name, description=description, fn=fn)
    _BENCHMARKS[name] = entry
    return entry


def benchmark(name: str, description: str = "") -> Callable[[BenchFn], BenchFn]:
    """Decorator form of :func:`register_benchmark` (returns ``fn`` unchanged)."""

    def wrap(fn: BenchFn) -> BenchFn:
        register_benchmark(name, description or (fn.__doc__ or "").strip().splitlines()[0], fn)
        return fn

    return wrap


def _ensure_suite() -> None:
    """Import the built-in suite exactly once (idempotent, lazy)."""
    import repro.bench.suite  # noqa: F401  (registers on import)


def get_benchmark(name: str) -> Benchmark:
    """Look a benchmark up by name, loading the built-in suite on demand."""
    _ensure_suite()
    try:
        return _BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; registered: "
            f"{', '.join(benchmark_names()) or '(none)'}"
        ) from None


def benchmark_names() -> List[str]:
    """Sorted names of every registered benchmark (suite included)."""
    _ensure_suite()
    return sorted(_BENCHMARKS)


def all_benchmarks() -> List[Benchmark]:
    """Every registered benchmark, sorted by name (suite included)."""
    _ensure_suite()
    return [_BENCHMARKS[name] for name in sorted(_BENCHMARKS)]


def run_benchmark(name: str, quick: bool = False, repeat: int = 1) -> BenchResult:
    """Execute one benchmark ``repeat`` times; report the best wall time.

    The deterministic counts must agree across repeats (the simulation is
    seeded); a mismatch raises, because it means the benchmark leaks state
    between invocations.
    """
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1, got {repeat}")
    entry = get_benchmark(name)
    best_wall: Optional[float] = None
    reference: Optional[Dict[str, Any]] = None
    for _ in range(repeat):
        # Collect leftover garbage from earlier work and pause the cyclic
        # collector for the timed section: GC pauses are wall-time noise,
        # and a collection landing mid-measurement can tear down suspended
        # coroutines from previous runs at an allocation-dependent moment,
        # perturbing the event counts that are supposed to be invariant.
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            measured = dict(entry.fn(quick))
            wall = time.perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
            gc.collect()
        missing = {"events", "ops"} - set(measured)
        if missing:
            raise ConfigurationError(
                f"benchmark {name!r} returned no {sorted(missing)} counts"
            )
        view = {
            "events": int(measured["events"]),
            "ops": int(measured["ops"]),
            "counters": {k: int(v) for k, v in dict(measured.get("counters", {})).items()},
        }
        if reference is None:
            reference = view
        elif view != reference:
            raise ConfigurationError(
                f"benchmark {name!r} is non-deterministic across repeats: "
                f"{view} != {reference}"
            )
        if best_wall is None or wall < best_wall:
            best_wall = wall
    assert reference is not None and best_wall is not None
    return BenchResult(
        name=name,
        quick=quick,
        repeat=repeat,
        wall_seconds=best_wall,
        events=reference["events"],
        ops=reference["ops"],
        counters=reference["counters"],
    )
