"""The built-in microbenchmark suite.

Six benchmarks — one per layer of the hot path, an instrumented twin of
the kernel benchmark, and one for the trace-analytics layer:

* ``event-loop`` — pure kernel dispatch: tasks ping-ponging through
  zero-delay sleeps and queue handoffs, no network.  This is the benchmark
  the ready-deque fast path targets; its events/sec is the kernel's
  dispatch throughput ceiling.
* ``event-loop-obs`` — the same workload with a metrics-collecting
  :class:`~repro.obs.Observer` installed.  Comparing its events/sec
  against ``event-loop`` measures the *enabled* observability overhead;
  the disabled overhead is gated separately (the plain ``event-loop``
  benchmark runs the untouched dispatch loop — ``SimLoop`` checks for an
  observer once per ``run`` call, not per event).
* ``abd-round`` — protocol traffic: closed-loop read/write rounds of the
  classical ABD register over a majority quorum system, exercising the
  network send/deliver path, response collectors and latency summaries.
* ``sharded-zipfian`` — the sharded data plane: a zipfian-keyed workload
  routed across independent shard groups through the keyed facade
  (FNV-1a routing memo, per-shard metrics).
* ``sweep`` — the experiment layer: a small serial parameter sweep through
  the registry/executor/result plumbing, measuring per-run orchestration
  overhead on top of the simulation itself.
* ``trace-analyze`` — the trace-analytics layer: records/sec through the
  invariant checker and the critical-path attributor over a synthetic
  well-formed trace (no simulation; this measures the analysis code the
  ``trace check`` / ``trace critical-path`` subcommands run).

Every benchmark builds its world from fixed seeds, so the reported event /
op / message counts are bit-deterministic; only wall time varies.  Scales
are fixed per mode (``quick`` for CI smoke, full for real measurements) —
see :mod:`repro.bench.core` for the contract.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.bench.core import benchmark
from repro.core.spec import SystemConfig
from repro.net.latency import UniformLatency
from repro.net.simloop import Queue, SimLoop, gather
from repro.sim.cluster import build_sharded_cluster, build_static_cluster
from repro.sim.runner import run_workload
from repro.sim.workload import uniform_workload
from repro.workloads import WorkloadGenerator, ZipfianKeys


def _config(n: int = 5, f: int = 1) -> SystemConfig:
    return SystemConfig(servers=tuple(f"s{i}" for i in range(1, n + 1)), f=f)


@benchmark("event-loop", "kernel dispatch: zero-delay sleeps + queue handoffs")
def bench_event_loop(quick: bool) -> Mapping[str, Any]:
    tasks, iterations = (10, 200) if quick else (50, 400)
    loop = SimLoop()
    queue = Queue()

    async def worker(index: int) -> None:
        for i in range(iterations):
            await loop.sleep(0)
            queue.put(index * iterations + i)
            await queue.get()

    loop.run_until_complete(gather(loop, [worker(t) for t in range(tasks)]))
    return {
        "events": loop.events_processed,
        "ops": tasks * iterations * 2,  # two awaits per iteration
        "counters": {"tasks": tasks, "iterations": iterations},
    }


@benchmark("event-loop-obs", "kernel dispatch with a metrics observer installed")
def bench_event_loop_obs(quick: bool) -> Mapping[str, Any]:
    from repro.obs import Observer, observing

    tasks, iterations = (10, 200) if quick else (50, 400)
    observer = Observer(metrics=True, trace=False)
    with observing(observer):
        loop = SimLoop()
        queue = Queue()

        async def worker(index: int) -> None:
            for i in range(iterations):
                await loop.sleep(0)
                queue.put(index * iterations + i)
                await queue.get()

        loop.run_until_complete(gather(loop, [worker(t) for t in range(tasks)]))
    registry = observer.metrics
    assert registry is not None
    counters = registry.as_dict()["counters"]
    # The dispatch split is part of the deterministic gate: a change here
    # means the ready-deque fast path's hit pattern moved.
    return {
        "events": loop.events_processed,
        "ops": tasks * iterations * 2,  # two awaits per iteration
        "counters": {
            "tasks": tasks,
            "iterations": iterations,
            "ready_dispatches": counters["kernel.ready_dispatches"],
            "heap_dispatches": counters["kernel.heap_dispatches"],
        },
    }


@benchmark("abd-round", "ABD read/write rounds over a majority quorum")
def bench_abd_round(quick: bool) -> Mapping[str, Any]:
    clients, ops_per_client = (2, 25) if quick else (4, 150)
    cluster = build_static_cluster(
        _config(), latency=UniformLatency(0.5, 1.5, seed=11), client_count=clients
    )
    workload = uniform_workload(
        list(cluster.clients),
        operations_per_client=ops_per_client,
        read_ratio=0.5,
        mean_think_time=0.1,
        seed=11,
    )
    report = run_workload(cluster, workload)
    return {
        "events": cluster.loop.events_processed,
        "ops": report.operations,
        "counters": {"messages": cluster.network.messages_sent},
    }


@benchmark("sharded-zipfian", "zipfian keyed workload across shard groups")
def bench_sharded_zipfian(quick: bool) -> Mapping[str, Any]:
    shards, clients, ops_per_client = (2, 2, 20) if quick else (4, 4, 100)
    cluster = build_sharded_cluster(
        _config(),
        shards=shards,
        latency=UniformLatency(0.5, 1.5, seed=23),
        client_count=clients,
        flavour="static-majority",
    )
    generator = WorkloadGenerator(keys=ZipfianKeys(space=64, s=1.1))
    workload = generator.generate(
        list(cluster.clients), operations_per_client=ops_per_client, seed=23
    )
    report = run_workload(cluster, workload)
    assert report.imbalance is not None
    return {
        "events": cluster.loop.events_processed,
        "ops": report.operations,
        "counters": {
            "messages": cluster.network.messages_sent,
            "hottest_shard_load": report.imbalance.max_load,
        },
    }


def _synthetic_trace(clients: int, ops_each: int):
    """A deterministic, invariant-clean trace: quorum ops + transfers.

    Shaped like a real recorded run (operation spans around request/reply
    flows with quorum instants, occasional restarts and weight transfers)
    so the analyses exercise their real code paths, but built directly so
    the benchmark measures analysis throughput, not simulation.
    """
    from repro.obs import TraceRecorder

    recorder = TraceRecorder()
    servers = ("s1", "s2", "s3")
    t = 0.0

    def tick() -> float:
        nonlocal t
        t += 0.25
        return t

    for index in range(clients * ops_each):
        client = f"c{index % clients + 1}"
        kind = "read" if index % 2 else "write"
        recorder.emit(ts=tick(), cat="op", name=kind, ph="B", actor=client,
                      args={"protocol": "storage"})
        restarted = index % 7 == 0
        if restarted:
            flow = recorder.next_flow_id()
            recorder.emit(ts=tick(), cat="net", name="READ", ph="s",
                          actor=client, args={"to": servers[0]}, flow=flow)
            recorder.emit(ts=tick(), cat="net", name="READ", ph="f",
                          actor=servers[0], args={"from": client}, flow=flow)
            recorder.emit(ts=tick(), cat="op", name="restart", ph="i",
                          actor=client, args={"op": kind, "protocol": "storage"})
        requests = []
        for server in servers:
            flow = recorder.next_flow_id()
            requests.append((server, flow))
            recorder.emit(ts=t, cat="net", name="READ", ph="s", actor=client,
                          args={"to": server}, flow=flow)
        replies = []
        for server, flow in requests:
            recorder.emit(ts=tick(), cat="net", name="READ", ph="f",
                          actor=server, args={"from": client}, flow=flow)
            reply = recorder.next_flow_id()
            replies.append((server, reply))
            recorder.emit(ts=t, cat="net", name="READ-ACK", ph="s",
                          actor=server, args={"to": client}, flow=reply)
        for server, reply in replies:
            recorder.emit(ts=tick(), cat="net", name="READ-ACK", ph="f",
                          actor=client, args={"from": server}, flow=reply)
        recorder.emit(ts=t, cat="quorum", name="phase1", ph="i", actor=client,
                      args={"protocol": "storage", "size": len(servers)})
        recorder.emit(ts=t, cat="op", name=kind, ph="E", actor=client,
                      args={"contacted": len(servers),
                            "restarts": 1 if restarted else 0})
        if index % 10 == 0:
            source = servers[(index // 10) % len(servers)]
            target = servers[(index // 10 + 1) % len(servers)]
            recorder.emit(ts=t, cat="transfer", name="transfer", ph="B",
                          actor=source, args={"delta": 0.1, "target": target})
            recorder.emit(ts=tick(), cat="transfer", name="transfer", ph="E",
                          actor=source,
                          args={"delta": 0.1, "effective": True,
                                "target": target})
    return recorder.records


@benchmark("trace-analyze",
           "invariant checking + critical-path attribution over a trace")
def bench_trace_analyze(quick: bool) -> Mapping[str, Any]:
    from repro.obs import check_trace_invariants, critical_path_report

    clients, ops_each = (4, 25) if quick else (8, 250)
    records = _synthetic_trace(clients, ops_each)
    report = check_trace_invariants(records)
    assert report.ok, report.findings
    cpath = critical_path_report(records)
    path_steps = sum(op["path_length"] for op in cpath["operations"])
    return {
        # Two full passes over the record stream: one for the invariant
        # checker, one for the attributor.  events/sec is records/sec
        # through the analyses.
        "events": 2 * len(records),
        "ops": len(cpath["operations"]),
        "counters": {
            "records": len(records),
            "findings": len(report.findings),
            "path_steps": path_steps,
        },
    }


@benchmark("sweep", "serial parameter sweep through the experiment layer")
def bench_sweep(quick: bool) -> Mapping[str, Any]:
    from repro.experiments.executor import execute_many
    from repro.experiments.sweep import expand_grid

    seeds = [0, 1] if quick else [0, 1, 2, 3, 4, 5]
    # static-majority: the dynamic-weighted flavour's weight-gain refresh
    # recursion (see ROADMAP) aborts at a stack-depth-dependent point, which
    # would make the event count here depend on the caller's stack depth.
    runs = expand_grid(
        "quickstart",
        grid={"seed": seeds},
        base={
            "cluster.flavour": "static-majority",
            "transfers": (),
            "workload.operations_per_client": 4,
        },
    )
    # Each run executes on its own loop; the process-wide kernel counter
    # meters the total dispatch work across all of them.
    events_before = SimLoop.total_events_processed
    results = execute_many(runs, workers=1)
    events = SimLoop.total_events_processed - events_before
    operations = sum(result.result["operations"] for result in results)
    messages = sum(result.result["messages"] for result in results)
    return {
        "events": events,
        "ops": operations,
        "counters": {"runs": len(results), "messages": messages},
    }
