"""Continuous microbenchmarking of the simulation stack.

``python -m repro bench`` runs the registered microbenchmarks (kernel
dispatch, ABD protocol rounds, the sharded data plane, the sweep layer),
reports events/sec, ops/sec and wall time, appends per-benchmark
``BENCH_<name>.json`` trajectory files, and can compare against a prior
result dump (``--compare``) or assert its deterministic counters against
committed expectations (``--check``, the CI determinism gate).

See :mod:`repro.bench.core` for the measurement contract (wall time is
noise, counters are invariants), :mod:`repro.bench.suite` for the built-in
benchmarks, and :mod:`repro.bench.runner` for the file formats.
"""

from repro.bench.core import (
    BenchResult,
    Benchmark,
    all_benchmarks,
    benchmark,
    benchmark_names,
    get_benchmark,
    register_benchmark,
    run_benchmark,
)
from repro.bench.runner import (
    append_trajectory,
    check_expectations,
    compare_results,
    expectations_payload,
    load_results_json,
    run_benchmarks,
    trajectory_path,
    write_results_json,
)

__all__ = [
    "BenchResult",
    "Benchmark",
    "all_benchmarks",
    "benchmark",
    "benchmark_names",
    "get_benchmark",
    "register_benchmark",
    "run_benchmark",
    "run_benchmarks",
    "trajectory_path",
    "append_trajectory",
    "write_results_json",
    "load_results_json",
    "compare_results",
    "expectations_payload",
    "check_expectations",
]
