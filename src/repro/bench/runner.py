"""Trajectory files, baseline comparison and CI counter checks.

Each benchmark appends one record per invocation to its own trajectory file
``BENCH_<name>.json`` — a JSON object ``{"benchmark": ..., "runs": [...]}``
whose ``runs`` list grows over time, giving the repository a measured
performance history (wall time and events/sec per invocation) next to the
deterministic counters.

Two consumers sit on top:

* :func:`compare_results` — diff a fresh result set against a prior
  ``--json`` dump: speedup per benchmark, plus hard counter mismatches
  (which mean the two sides did not run the same simulation and the wall
  numbers are not comparable).
* :func:`check_expectations` — CI's determinism gate: assert the
  deterministic counters of a run against the committed expectations file
  (``benchmarks/bench_expectations.json``), per scale.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.bench.core import BenchResult, run_benchmark
from repro.errors import ConfigurationError, ReproError

__all__ = [
    "run_benchmarks",
    "trajectory_path",
    "append_trajectory",
    "provenance",
    "write_results_json",
    "load_results_json",
    "compare_results",
    "check_expectations",
    "expectations_payload",
]


def run_benchmarks(
    names: Sequence[str], quick: bool = False, repeat: int = 1
) -> List[BenchResult]:
    """Run the named benchmarks in order and collect their results."""
    return [run_benchmark(name, quick=quick, repeat=repeat) for name in names]


def trajectory_path(name: str, out_dir: str = ".") -> str:
    """The trajectory file for benchmark ``name`` under ``out_dir``."""
    return os.path.join(out_dir, f"BENCH_{name}.json")


def _git_sha() -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def provenance() -> Dict[str, Any]:
    """Environment provenance stamped onto each trajectory record.

    Wall-time history is only interpretable against the environment that
    produced it: a "regression" that coincides with an interpreter upgrade
    or a different host is a different conversation than one on identical
    provenance.  ``git_sha`` is ``None`` when the benchmark runs from an
    sdist or other non-git tree.
    """
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": _git_sha(),
    }


def append_trajectory(result: BenchResult, out_dir: str = ".") -> str:
    """Append one run record to the benchmark's trajectory file.

    Creates the file (and ``out_dir``) on first use; returns the path.  The
    record carries a wall-clock timestamp and environment provenance
    (python version, platform string, git SHA) — trajectories are
    *history*, not baselines, so unlike result payloads they are allowed
    to be non-reproducible byte-for-byte.
    """
    os.makedirs(out_dir, exist_ok=True)
    path = trajectory_path(result.name, out_dir)
    payload: Dict[str, Any] = {"benchmark": result.name, "runs": []}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if not isinstance(loaded, dict) or loaded.get("benchmark") != result.name:
            raise ConfigurationError(
                f"{path} is not a trajectory file for benchmark {result.name!r}"
            )
        payload = loaded
        payload.setdefault("runs", [])
    record = result.as_dict()
    record["timestamp"] = time.time()
    record["provenance"] = provenance()
    payload["runs"].append(record)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_results_json(results: Iterable[BenchResult], path: str) -> None:
    """Write one invocation's results as a JSON array (the ``--json`` sink)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([result.as_dict() for result in results], handle,
                  indent=2, sort_keys=True)
        handle.write("\n")


def load_results_json(path: str) -> List[Dict[str, Any]]:
    """Load a ``--json`` dump (or a trajectory file, using its last run)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "runs" in payload:
        runs = payload["runs"]
        if not runs:
            raise ReproError(f"trajectory {path!r} contains no runs")
        return [runs[-1]]
    if not isinstance(payload, list):
        raise ReproError(f"{path!r} is neither a bench results array nor a trajectory")
    return payload


def compare_results(
    current: Sequence[BenchResult], prior: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Compare fresh results against a prior dump, benchmark by benchmark.

    Returns one row per benchmark present on both sides:
    ``{"benchmark", "speedup", "current_wall", "prior_wall", "counters_match"}``.
    A speedup > 1 means the current run is faster.  ``counters_match`` is
    False when the deterministic counts differ — the two sides ran different
    workloads (different scale or a semantic change), so the ratio is
    labelled rather than hidden.
    """
    prior_by_name = {record.get("benchmark"): record for record in prior}
    rows: List[Dict[str, Any]] = []
    for result in current:
        record = prior_by_name.get(result.name)
        if record is None:
            continue
        prior_wall = float(record.get("wall_seconds", 0.0))
        counters_match = (
            result.events == record.get("events")
            and result.ops == record.get("ops")
            and dict(result.counters) == dict(record.get("counters", {}))
        )
        rows.append({
            "benchmark": result.name,
            "current_wall": result.wall_seconds,
            "prior_wall": prior_wall,
            "speedup": prior_wall / result.wall_seconds if result.wall_seconds > 0 else 0.0,
            "counters_match": counters_match,
        })
    return rows


def expectations_payload(results: Iterable[BenchResult]) -> Dict[str, Any]:
    """The expectations-file fragment for one scale (see below for layout)."""
    return {result.name: result.deterministic_view() for result in results}


def check_expectations(
    results: Sequence[BenchResult], path: str, quick: bool
) -> List[str]:
    """Assert deterministic counters against a committed expectations file.

    The file maps scale (``"quick"`` / ``"full"``) to benchmark name to the
    expected ``{"events", "ops", "counters"}``.  Returns human-readable
    mismatch lines (empty = all good); unknown benchmarks are reported too,
    so the expectations stay in lockstep with the suite.
    """
    with open(path, "r", encoding="utf-8") as handle:
        expectations = json.load(handle)
    scale = "quick" if quick else "full"
    expected: Optional[Dict[str, Any]] = expectations.get(scale)
    if expected is None:
        return [f"expectations file {path!r} has no {scale!r} scale"]
    problems: List[str] = []
    for result in results:
        want = expected.get(result.name)
        if want is None:
            problems.append(f"{result.name}: no committed expectation ({scale})")
            continue
        got = result.deterministic_view()
        if got != want:
            problems.append(
                f"{result.name}: deterministic counters diverge: "
                f"got {got}, expected {want}"
            )
    return problems
