"""k-owner asset transfer (consensus number k, per Guerraoui et al. [12]).

When an account has ``k > 1`` owners, two owners can concurrently issue
withdrawals that are individually valid but jointly overdraw the account, so
the owners must agree on an order — the problem's consensus number is ``k``.
This implementation therefore routes every transfer through the total-order
broadcast of :mod:`repro.consensus.sequencer`; replicas apply the ordered
stream against the same deterministic :class:`~repro.assettransfer.accounts.AccountBook`
validity rule, so they all accept and reject exactly the same operations.

The contrast with :mod:`repro.assettransfer.one_asset` (no ordering, no
sequencer) is what the E10 benchmark reports.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence

from repro.assettransfer.accounts import AccountBook, TransferOp
from repro.consensus.sequencer import TotalOrderClient
from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.process import Process
from repro.types import ProcessId, VirtualTime

__all__ = ["KAssetOutcome", "KAssetReplica"]


@dataclass(frozen=True)
class KAssetOutcome:
    """Result of one ordered transfer: applied or rejected by the shared rule."""

    applied: bool
    op: TransferOp
    started_at: VirtualTime
    completed_at: VirtualTime

    @property
    def latency(self) -> VirtualTime:
        return self.completed_at - self.started_at


class KAssetReplica(Process):
    """A replica of the k-owner asset-transfer state machine."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        sequencer: ProcessId,
        initial_balances: Mapping[str, float],
        owners: Mapping[str, Iterable[ProcessId]],
    ) -> None:
        super().__init__(pid, network)
        self.book = AccountBook(balances=initial_balances, owners=owners)
        self._counter = itertools.count(1)
        self._order = TotalOrderClient(self, sequencer, self._apply)

    def _apply(self, submitter: ProcessId, command: TransferOp) -> bool:
        return self.book.apply(command)

    async def transfer(self, source: str, target: str, amount: float) -> KAssetOutcome:
        """Issue a transfer from ``source`` (which this replica must co-own)."""
        self._ensure_alive()
        if source not in self.book.balances():
            raise ConfigurationError(f"unknown account {source!r}")
        if self.pid not in self.book.owners(source):
            raise ConfigurationError(f"{self.pid} does not own account {source!r}")
        started_at = self.loop.now
        op = TransferOp(
            issuer=self.pid,
            counter=next(self._counter),
            source=source,
            target=target,
            amount=amount,
        )
        applied = await self._order.submit(op)
        return KAssetOutcome(
            applied=bool(applied), op=op, started_at=started_at, completed_at=self.loop.now
        )

    def balance_of(self, account: str) -> float:
        return self.book.balance(account)
