"""Account bookkeeping shared by the asset-transfer implementations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.types import ProcessId

__all__ = ["TransferOp", "AccountBook"]


@dataclass(frozen=True)
class TransferOp:
    """A transfer of ``amount`` from ``source`` to ``target`` issued by ``issuer``."""

    issuer: ProcessId
    counter: int
    source: str
    target: str
    amount: float


class AccountBook:
    """Balances of a set of accounts, with owner metadata.

    The book itself is a plain deterministic state machine: both the
    consensus-free and the sequencer-based protocols apply :class:`TransferOp`
    operations to it, so the validity rule ("a transfer applies only if the
    source balance stays non-negative and the issuer owns the source account")
    lives in exactly one place.
    """

    def __init__(
        self,
        balances: Mapping[str, float],
        owners: Mapping[str, Iterable[ProcessId]],
    ) -> None:
        for account, balance in balances.items():
            if balance < 0:
                raise ConfigurationError(f"account {account!r} starts negative")
        if set(balances) != set(owners):
            raise ConfigurationError("owners must be declared for every account")
        self._balances: Dict[str, float] = dict(balances)
        self._owners: Dict[str, FrozenSet[ProcessId]] = {
            account: frozenset(owner_set) for account, owner_set in owners.items()
        }
        self.applied: List[TransferOp] = []
        self.rejected: List[TransferOp] = []

    # -- queries -----------------------------------------------------------------
    def balance(self, account: str) -> float:
        return self._balances[account]

    def balances(self) -> Dict[str, float]:
        return dict(self._balances)

    def owners(self, account: str) -> FrozenSet[ProcessId]:
        return self._owners[account]

    def max_owner_count(self) -> int:
        return max(len(owner_set) for owner_set in self._owners.values())

    def total(self) -> float:
        return sum(self._balances.values())

    # -- the validity rule + state transition -------------------------------------
    def can_apply(self, op: TransferOp) -> bool:
        """[12]'s validity: issuer owns the source and the balance stays >= 0."""
        if op.source not in self._balances or op.target not in self._balances:
            return False
        if op.issuer not in self._owners[op.source]:
            return False
        if op.amount <= 0:
            return False
        return self._balances[op.source] - op.amount >= 0

    def apply(self, op: TransferOp) -> bool:
        """Apply ``op`` if valid; record the outcome; return whether it applied."""
        if not self.can_apply(op):
            self.rejected.append(op)
            return False
        self._balances[op.source] -= op.amount
        self._balances[op.target] += op.amount
        self.applied.append(op)
        return True
