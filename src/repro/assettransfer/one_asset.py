"""Consensus-free 1-asset transfer (each account has exactly one owner).

Guerraoui et al. [12] show that when every account has a single owner, asset
transfer has consensus number 1: since only the owner can withdraw, the owner
can locally check that its balance stays non-negative and then disseminate
the transfer with a reliable broadcast — no agreement on an order of
conflicting withdrawals is needed.  This is the exact blueprint the paper's
restricted pairwise weight reassignment follows (compare Algorithm 4), so the
implementation below intentionally mirrors :class:`repro.core.protocol.ReassignmentServer`:
local validity check, reliable broadcast, wait for ``n - f - 1`` acknowledgements.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Set

from repro.assettransfer.accounts import AccountBook, TransferOp
from repro.errors import ConfigurationError, SimulationError
from repro.net.broadcast import ReliableBroadcast
from repro.net.message import Message
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimFuture
from repro.types import ProcessId, VirtualTime

__all__ = ["OneAssetOutcome", "OneAssetServer"]

AT_RB = "AT_RB"
AT_ACK = "AT_ACK"


@dataclass(frozen=True)
class OneAssetOutcome:
    """Result of a transfer attempt: applied or locally rejected."""

    applied: bool
    op: TransferOp
    started_at: VirtualTime
    completed_at: VirtualTime

    @property
    def latency(self) -> VirtualTime:
        return self.completed_at - self.started_at


class OneAssetServer(Process):
    """A server owning exactly one account in the 1-asset-transfer system."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        servers: Sequence[ProcessId],
        f: int,
        initial_balances: Mapping[str, float],
    ) -> None:
        super().__init__(pid, network)
        self.servers = tuple(servers)
        self.f = f
        # Account names coincide with server ids: server s owns account s.
        self.book = AccountBook(
            balances=dict(initial_balances),
            owners={account: [account] for account in initial_balances},
        )
        if pid not in initial_balances:
            raise ConfigurationError(f"server {pid!r} has no account")
        self._counter = 1
        self._ack_received: Dict[int, Set[ProcessId]] = defaultdict(set)
        self._ack_waiters: Dict[int, SimFuture] = {}
        self._ack_sent: Set[tuple] = set()
        self._in_progress = False
        self.rb = ReliableBroadcast(self, self.servers, self._on_rb_deliver, kind=AT_RB)
        self.register_handler(AT_ACK, self._on_ack)

    # -- queries ------------------------------------------------------------------
    def balance(self) -> float:
        """This server's own account balance, from its local book."""
        return self.book.balance(self.pid)

    def balance_of(self, account: str) -> float:
        return self.book.balance(account)

    # -- the transfer operation ------------------------------------------------------
    async def transfer(self, target_account: str, amount: float) -> OneAssetOutcome:
        """Transfer ``amount`` from this server's account to ``target_account``."""
        self._ensure_alive()
        if self._in_progress:
            raise SimulationError(f"{self.pid} has a transfer in progress")
        if target_account not in self.servers:
            raise ConfigurationError(f"unknown account {target_account!r}")
        started_at = self.loop.now
        self._in_progress = True
        counter = self._counter
        self._counter += 1
        op = TransferOp(
            issuer=self.pid,
            counter=counter,
            source=self.pid,
            target=target_account,
            amount=amount,
        )
        try:
            if not self.book.can_apply(op):
                return OneAssetOutcome(
                    applied=False, op=op, started_at=started_at, completed_at=self.loop.now
                )
            self.book.apply(op)
            waiter = SimFuture(name=f"{self.pid}.at[{counter}]")
            self._ack_waiters[counter] = waiter
            needed = len(self.servers) - self.f - 1
            if len(self._ack_received[counter]) >= needed:
                waiter.set_result(None)
            self.rb.broadcast({"op": op})
            if needed > 0:
                await waiter
            return OneAssetOutcome(
                applied=True, op=op, started_at=started_at, completed_at=self.loop.now
            )
        finally:
            self._in_progress = False

    # -- dissemination ---------------------------------------------------------------
    def _on_rb_deliver(self, origin: ProcessId, payload: Dict) -> None:
        op: TransferOp = payload["op"]
        key = (op.issuer, op.counter)
        if op.issuer != self.pid:
            # Owners validated locally; replicas apply unconditionally (the
            # owner is the only process able to overdraw its own account, and
            # it never broadcasts an invalid op).
            self.book.apply(op)
            if key not in self._ack_sent:
                self._ack_sent.add(key)
                self.send(op.issuer, AT_ACK, {"counter": op.counter})

    def _on_ack(self, message: Message) -> None:
        counter = message.payload["counter"]
        self._ack_received[counter].add(message.sender)
        waiter = self._ack_waiters.get(counter)
        if waiter is not None and not waiter.done():
            if len(self._ack_received[counter]) >= len(self.servers) - self.f - 1:
                waiter.set_result(None)
