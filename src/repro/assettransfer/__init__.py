"""The asset-transfer problem (Guerraoui et al. [12]), Section VIII's comparator.

The paper relates pairwise weight reassignment to asset transfer: weights play
the role of account balances, and the restricted variant's condition C1 ("only
``s`` may give ``s``'s weight away") mirrors 1-asset transfer's single-owner
accounts.  To make the comparison executable this package implements both
sides of [12]'s dichotomy:

* :mod:`repro.assettransfer.one_asset` — consensus-free 1-owner asset
  transfer over reliable broadcast (implementable in asynchronous
  failure-prone systems);
* :mod:`repro.assettransfer.k_asset` — k-owner accounts, which require
  ordering the owners' conflicting withdrawals and are therefore built on the
  total-order (sequencer) primitive.
"""

from repro.assettransfer.accounts import AccountBook
from repro.assettransfer.one_asset import OneAssetServer
from repro.assettransfer.k_asset import KAssetReplica

__all__ = ["AccountBook", "OneAssetServer", "KAssetReplica"]
