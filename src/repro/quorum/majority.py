"""The regular majority quorum system (MQS).

Every quorum is a strict majority of the servers.  MQS is the baseline the
paper's introduction contrasts WMQS against: simple and optimally
fault-tolerant (``f < n/2``) but oblivious to server heterogeneity.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.quorum.base import QuorumSystem
from repro.types import ProcessId

__all__ = ["MajorityQuorumSystem"]


class MajorityQuorumSystem(QuorumSystem):
    """Quorums are the subsets containing a strict majority of servers."""

    def __init__(self, servers: Sequence[ProcessId]) -> None:
        super().__init__(servers)
        self._threshold = len(self.servers) // 2  # strict majority: > n/2

    def is_quorum(self, subset: Iterable[ProcessId]) -> bool:
        members = self._validate_subset(subset)
        return len(members) > len(self.servers) / 2

    def quorum_size(self) -> int:
        """The (uniform) size of a minimal majority quorum: ``floor(n/2) + 1``."""
        return len(self.servers) // 2 + 1

    def max_tolerable_failures(self) -> int:
        """The optimal crash threshold ``f = ceil(n/2) - 1``."""
        return (len(self.servers) - 1) // 2
