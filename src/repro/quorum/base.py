"""Abstract quorum-system interface.

A quorum system over a server set ``S`` is a collection of subsets of ``S``
(quorums) such that every two quorums intersect.  Protocols only ever need
the membership test :meth:`QuorumSystem.is_quorum`, so that is the abstract
core; enumeration helpers are provided for analysis and testing and may be
expensive for large ``n``.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.types import ProcessId

__all__ = ["QuorumSystem"]


class QuorumSystem:
    """Base class for quorum systems over a fixed server universe."""

    def __init__(self, servers: Sequence[ProcessId]) -> None:
        if not servers:
            raise ConfigurationError("a quorum system needs at least one server")
        if len(set(servers)) != len(servers):
            raise ConfigurationError("duplicate server ids in quorum system")
        self.servers: Tuple[ProcessId, ...] = tuple(servers)

    # -- the essential operation --------------------------------------------
    def is_quorum(self, subset: Iterable[ProcessId]) -> bool:
        """Return True if ``subset`` contains a quorum."""
        raise NotImplementedError

    # -- generic helpers ------------------------------------------------------
    def _validate_subset(self, subset: Iterable[ProcessId]) -> Set[ProcessId]:
        members = set(subset)
        unknown = members - set(self.servers)
        if unknown:
            raise ConfigurationError(f"unknown servers in subset: {sorted(unknown)}")
        return members

    def minimal_quorums(self) -> List[FrozenSet[ProcessId]]:
        """Enumerate the inclusion-minimal quorums (exponential in ``n``)."""
        minimal: List[FrozenSet[ProcessId]] = []
        for size in range(1, len(self.servers) + 1):
            for combo in itertools.combinations(self.servers, size):
                candidate = frozenset(combo)
                if not self.is_quorum(candidate):
                    continue
                if any(existing <= candidate for existing in minimal):
                    continue
                minimal.append(candidate)
        return minimal

    def all_quorums(self) -> Iterator[FrozenSet[ProcessId]]:
        """Yield every quorum (exponential in ``n``; for tests/analysis only)."""
        for size in range(1, len(self.servers) + 1):
            for combo in itertools.combinations(self.servers, size):
                candidate = frozenset(combo)
                if self.is_quorum(candidate):
                    yield candidate

    def smallest_quorum_size(self) -> int:
        """Cardinality of the smallest quorum."""
        for size in range(1, len(self.servers) + 1):
            for combo in itertools.combinations(self.servers, size):
                if self.is_quorum(frozenset(combo)):
                    return size
        raise ConfigurationError("quorum system has no quorums")

    def check_intersection(self) -> bool:
        """Verify the defining property: every two minimal quorums intersect."""
        minimal = self.minimal_quorums()
        for first, second in itertools.combinations(minimal, 2):
            if not (first & second):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} n={len(self.servers)}>"
