"""Grid quorum system (Naor & Wool [2]).

Servers are arranged in an ``rows x cols`` grid; a quorum is any subset
containing one full row plus one representative from every row ("row-cover"
variant).  Grids are mentioned in the paper's introduction as an alternative
to majority systems; they are included here for the quorum-analysis
benchmarks (load and quorum-size comparisons).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.quorum.base import QuorumSystem
from repro.types import ProcessId

__all__ = ["GridQuorumSystem"]


class GridQuorumSystem(QuorumSystem):
    """A row-cover grid quorum system.

    A subset is a quorum when it contains (a) every element of at least one
    row and (b) at least one element of every row.  Any two such quorums
    intersect: the full row of one quorum meets the row-cover of the other.
    """

    def __init__(
        self,
        servers: Sequence[ProcessId],
        cols: int = 0,
    ) -> None:
        super().__init__(servers)
        n = len(self.servers)
        if cols <= 0:
            cols = max(1, int(math.isqrt(n)))
        if cols > n:
            raise ConfigurationError(f"cols={cols} exceeds server count {n}")
        self.cols = cols
        self.rows: List[Tuple[ProcessId, ...]] = []
        for start in range(0, n, cols):
            self.rows.append(tuple(self.servers[start : start + cols]))

    def row_of(self, server: ProcessId) -> int:
        """Index of the row containing ``server``."""
        for index, row in enumerate(self.rows):
            if server in row:
                return index
        raise ConfigurationError(f"unknown server {server!r}")

    def is_quorum(self, subset: Iterable[ProcessId]) -> bool:
        members: Set[ProcessId] = self._validate_subset(subset)
        covers_all_rows = all(
            any(server in members for server in row) for row in self.rows
        )
        if not covers_all_rows:
            return False
        has_full_row = any(set(row) <= members for row in self.rows)
        return has_full_row

    def typical_quorum_size(self) -> int:
        """Size of the canonical quorum: one full row + one per other row."""
        return self.cols + max(0, len(self.rows) - 1)
