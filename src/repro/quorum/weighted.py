"""The weighted majority quorum system (WMQS) of Definition 1.

Each server carries a weight; a subset is a quorum when its total weight
exceeds half of the total weight of all servers.  The weight map is
*mutable*: the dynamic-weighted storage of Section VII re-points its quorum
system at a new weight map whenever it learns of completed weight changes, so
this class supports both an immutable construction (from a dict) and cheap
re-derivation via :meth:`with_weights`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.numerics import strictly_greater
from repro.quorum.base import QuorumSystem
from repro.types import ProcessId, Weight

__all__ = ["WeightedMajorityQuorumSystem"]


class WeightedMajorityQuorumSystem(QuorumSystem):
    """Quorums are subsets whose total weight exceeds half the total weight."""

    def __init__(self, weights: Mapping[ProcessId, Weight]) -> None:
        if not weights:
            raise ConfigurationError("WMQS needs at least one weighted server")
        for server, weight in weights.items():
            if weight < 0:
                raise ConfigurationError(
                    f"server {server!r} has negative weight {weight}"
                )
        super().__init__(tuple(weights))
        self.weights: Dict[ProcessId, Weight] = dict(weights)

    # -- construction helpers ---------------------------------------------------
    @classmethod
    def uniform(cls, servers: Sequence[ProcessId], weight: Weight = 1.0):
        """A WMQS where every server holds the same weight (equivalent to MQS)."""
        return cls({server: weight for server in servers})

    def with_weights(
        self, weights: Mapping[ProcessId, Weight]
    ) -> "WeightedMajorityQuorumSystem":
        """Return a new WMQS over the same servers with updated weights."""
        if set(weights) != set(self.servers):
            raise ConfigurationError(
                "with_weights must cover exactly the same server set"
            )
        return WeightedMajorityQuorumSystem(weights)

    # -- weights ----------------------------------------------------------------
    def total_weight(self) -> Weight:
        return sum(self.weights.values())

    def weight_of(self, subset: Iterable[ProcessId]) -> Weight:
        # Sorted order keeps the float sum independent of set iteration
        # order (which varies with the interpreter's hash seed), so quorum
        # decisions on last-ulp ties are reproducible across processes.
        members = self._validate_subset(subset)
        return sum(self.weights[server] for server in sorted(members))

    # -- quorum test -------------------------------------------------------------
    def is_quorum(self, subset: Iterable[ProcessId]) -> bool:
        members = self._validate_subset(subset)
        return strictly_greater(self.weight_of(members), self.total_weight() / 2)

    # -- analysis ----------------------------------------------------------------
    def heaviest_servers(self, count: int) -> Tuple[ProcessId, ...]:
        """The ``count`` servers with the greatest weights (ties by id)."""
        ranked = sorted(self.weights.items(), key=lambda item: (-item[1], item[0]))
        return tuple(server for server, _ in ranked[:count])

    def smallest_quorum(self) -> Tuple[ProcessId, ...]:
        """A minimum-cardinality quorum (greedy by descending weight).

        For weighted majority systems the greedy choice — keep adding the
        heaviest remaining server until the subset's weight exceeds half the
        total — yields a quorum of minimum cardinality.
        """
        ranked = sorted(self.weights.items(), key=lambda item: (-item[1], item[0]))
        chosen = []
        accumulated = 0.0
        half = self.total_weight() / 2
        for server, weight in ranked:
            chosen.append(server)
            accumulated += weight
            if strictly_greater(accumulated, half):
                return tuple(chosen)
        raise ConfigurationError("total weight is zero; no quorum exists")

    def smallest_quorum_size(self) -> int:
        return len(self.smallest_quorum())
