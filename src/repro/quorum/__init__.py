"""Quorum systems.

The paper's storage protocols are parameterised by a quorum system.  This
package provides:

* :class:`~repro.quorum.majority.MajorityQuorumSystem` — the regular MQS the
  paper uses as its baseline.
* :class:`~repro.quorum.weighted.WeightedMajorityQuorumSystem` — the WMQS of
  Definition 1, whose weights the reassignment protocols mutate.
* :class:`~repro.quorum.grid.GridQuorumSystem` and
  :class:`~repro.quorum.tree.TreeQuorumSystem` — the two non-majority quorum
  systems mentioned in the introduction, included for completeness and for
  the analysis benchmarks.
* :mod:`~repro.quorum.availability` — Property 1 (availability of a WMQS) and
  related analysis helpers.
"""

from repro.quorum.base import QuorumSystem
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.weighted import WeightedMajorityQuorumSystem
from repro.quorum.grid import GridQuorumSystem
from repro.quorum.tree import TreeQuorumSystem
from repro.quorum.availability import (
    wmqs_is_available,
    max_tolerable_failures,
    assert_wmqs_available,
    minimum_quorum_cardinality,
)

__all__ = [
    "QuorumSystem",
    "MajorityQuorumSystem",
    "WeightedMajorityQuorumSystem",
    "GridQuorumSystem",
    "TreeQuorumSystem",
    "wmqs_is_available",
    "max_tolerable_failures",
    "assert_wmqs_available",
    "minimum_quorum_cardinality",
]
