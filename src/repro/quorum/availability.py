"""Availability of weighted majority quorum systems (Property 1).

Property 1 of the paper: *a WMQS is available if the sum of the ``f`` greatest
weights is less than half of the total weight of all servers.*  Equivalently
(Inequality 2), the total weight of any ``n - f`` servers exceeds half of the
total weight, so a quorum of correct servers always exists.

These helpers are used everywhere: by the specification checkers (Integrity is
exactly "Property 1 holds at all times"), by the protocol constructors (to
validate initial weights), and by the availability benchmarks.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import IntegrityViolation
from repro.numerics import strictly_greater, strictly_less
from repro.types import ProcessId, Weight

__all__ = [
    "wmqs_is_available",
    "assert_wmqs_available",
    "max_tolerable_failures",
    "minimum_quorum_cardinality",
]


def _top_weights_sum(weights: Mapping[ProcessId, Weight], count: int) -> Weight:
    return sum(sorted(weights.values(), reverse=True)[:count])


def wmqs_is_available(weights: Mapping[ProcessId, Weight], f: int) -> bool:
    """Property 1: the ``f`` greatest weights sum to less than half the total."""
    if f < 0:
        raise ValueError(f"fault threshold must be non-negative, got f={f}")
    if f == 0:
        return True
    if f >= len(weights):
        return False
    total = sum(weights.values())
    return strictly_less(_top_weights_sum(weights, f), total / 2)


def assert_wmqs_available(weights: Mapping[ProcessId, Weight], f: int) -> None:
    """Raise :class:`~repro.errors.IntegrityViolation` if Property 1 fails."""
    if not wmqs_is_available(weights, f):
        heaviest = _top_weights_sum(weights, f)
        total = sum(weights.values())
        raise IntegrityViolation(
            f"WMQS unavailable: the {f} greatest weights sum to {heaviest}, "
            f"which is not < half of the total weight {total}"
        )


def max_tolerable_failures(weights: Mapping[ProcessId, Weight]) -> int:
    """The largest ``f`` for which the weight map satisfies Property 1."""
    f = 0
    while f + 1 < len(weights) and wmqs_is_available(weights, f + 1):
        f += 1
    return f


def minimum_quorum_cardinality(weights: Mapping[ProcessId, Weight]) -> int:
    """Size of the smallest weighted quorum under ``weights``.

    Greedy by descending weight: the fewest servers needed to exceed half of
    the total weight.
    """
    total = sum(weights.values())
    accumulated = 0.0
    for count, weight in enumerate(sorted(weights.values(), reverse=True), start=1):
        accumulated += weight
        if strictly_greater(accumulated, total / 2):
            return count
    raise IntegrityViolation("total weight is zero; no quorum exists")
