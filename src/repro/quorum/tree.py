"""Tree quorum system (Agrawal & El Abbadi [3]).

Servers are placed on a complete binary tree; a quorum is obtained by the
recursive rule "take the root and a quorum of one subtree, or quorums of both
subtrees".  Included, like grids, because the paper's introduction cites trees
as one of the classical alternatives to majority quorums; the analysis
benchmarks compare their quorum sizes against MQS/WMQS.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.quorum.base import QuorumSystem
from repro.types import ProcessId

__all__ = ["TreeQuorumSystem"]


class _Node:
    __slots__ = ("server", "left", "right")

    def __init__(self, server: ProcessId) -> None:
        self.server = server
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class TreeQuorumSystem(QuorumSystem):
    """Quorums defined by the classical tree-quorum recursion."""

    def __init__(self, servers: Sequence[ProcessId]) -> None:
        super().__init__(servers)
        self.root = self._build(list(self.servers))

    def _build(self, servers: List[ProcessId]) -> Optional[_Node]:
        if not servers:
            return None
        # Heap-style layout: servers[0] is the root, children recurse on the
        # remaining ids split evenly so the tree stays balanced.
        node = _Node(servers[0])
        rest = servers[1:]
        half = len(rest) // 2
        node.left = self._build(rest[:half])
        node.right = self._build(rest[half:])
        return node

    def _covered(self, node: Optional[_Node], members: Set[ProcessId]) -> bool:
        """The tree-quorum recursion.

        A subtree is "covered" when the subset contains a quorum of it:
        either its root plus a covered child (or the root alone for leaves),
        or both children covered.
        """
        if node is None:
            # An empty subtree is trivially covered.
            return True
        left, right = node.left, node.right
        if node.server in members:
            if left is None and right is None:
                return True
            return self._covered(left, members) or self._covered(right, members)
        if left is None or right is None:
            # Cannot bypass a missing root without two children to recurse on.
            return False
        return self._covered(left, members) and self._covered(right, members)

    def is_quorum(self, subset: Iterable[ProcessId]) -> bool:
        members = self._validate_subset(subset)
        if not members:
            return False
        return self._covered(self.root, members)
