"""The fault space of a declarative scenario, as ordinary sweep axes.

:func:`fault_axes` turns a :class:`~repro.experiments.spec.ScenarioSpec`
into a dict of dotted-path sweep axes covering its fault dimensions —
exactly the shape :meth:`~repro.experiments.sweep.Sweep.of` takes, so the
existing Latin-hypercube sampler stratifies the chaos space with no new
machinery.  Each axis value is *self-contained* (an outage carries its own
recovery, a partition window its own heal), so any combination of values
across axes is a valid, buildable schedule — the property LHS sampling
needs, since it combines axis values freely.

Two regimes:

* **benign** (``benign=True``) — every value keeps the cluster within its
  fault budget: outages recover, partitions heal with a quorum-capable
  majority (plus all clients) on one side, gray failures are mild.  A
  correct system must come through the whole benign region with zero
  oracle violations; that is the CI smoke gate.
* **aggressive** (the default) — adds the known killers: a permanent crash
  set larger than the quorum system tolerates, a partition isolating every
  client from every server, and a gray-failure set wide enough to touch
  every quorum.  These are *expected* to surface findings; the campaign
  ranks them.

The derived set sizes come from the spec's own quorum system
(:func:`~repro.quorum.availability.minimum_quorum_cardinality`), so the
axes stay sharp when weights or ``n`` change.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.spec import ScenarioSpec
from repro.quorum.availability import minimum_quorum_cardinality
from repro.types import VirtualTime, client_name

__all__ = ["fault_axes"]

#: Gray-failure multipliers: the benign prefix stays mild, the aggressive
#: tail reaches the regime where a gray node dominates every quorum round.
BENIGN_FACTORS = (2.0, 4.0)
AGGRESSIVE_FACTORS = (2.0, 4.0, 8.0, 16.0)
BENIGN_STALLS = (0.0,)
AGGRESSIVE_STALLS = (0.0, 2.0)


def fault_axes(
    spec: ScenarioSpec,
    benign: bool = False,
    times: Sequence[VirtualTime] = (4.0, 8.0, 12.0),
    outage_length: VirtualTime = 8.0,
    window_length: VirtualTime = 8.0,
) -> Dict[str, List[Any]]:
    """The sweepable fault axes of ``spec``, ready for ``Sweep.of``.

    ``times`` are the candidate injection instants (vary them to move the
    faults relative to the scenario's own schedule — e.g. past its scripted
    transfers); ``outage_length`` / ``window_length`` size the recovering
    windows.  Every axis includes the no-fault value ``()``, so the sampled
    region always contains near-baseline points and single-fault marginals.
    """
    if not times:
        raise ConfigurationError("fault_axes needs at least one injection time")
    if any(t < 0 for t in times):
        raise ConfigurationError(f"injection times must be non-negative: {times}")
    config = spec.cluster.system_config()
    servers: Tuple[str, ...] = tuple(config.servers)
    n = len(servers)
    min_quorum = minimum_quorum_cardinality(config.initial_weights)
    # The smallest set of servers that intersects *every* quorum: take this
    # many out (crash, isolate, or degrade them) and no quorum is clean.
    blocking = n - min_quorum + 1
    clients = tuple(
        client_name(index) for index in range(1, spec.cluster.client_count + 1)
    )
    times = tuple(times)

    # -- faults.outages: one recovering window per (server, time) ----------
    outages: List[Any] = [()]
    if config.f >= 1:
        for server in servers:
            for at in times:
                outages.append(((server, at, at + outage_length),))
    if not benign:
        # Permanently crash a quorum-blocking set: beyond any fault budget,
        # liveness is gone and the run must die (a captured error finding).
        outages.append(
            tuple((server, times[0], None) for server in servers[:blocking])
        )

    # -- faults.partitions: healed minority cuts (+ client isolation) ------
    partitions: List[Any] = [()]
    if n - 1 >= min_quorum:
        for index, at in enumerate(times):
            minority = servers[index % n]
            majority = tuple(s for s in servers if s != minority) + clients
            partitions.append(((at, (majority,), at + window_length),))
    if not benign:
        # All servers on one side, every client implicitly on the other:
        # operations stall for the whole window, the canonical latency bomb.
        partitions.append(((times[0], (servers,), times[0] + window_length),))

    # -- latency.degraded*: gray failures (slow-but-alive) ------------------
    degraded: List[Any] = [()]
    degraded.extend((server,) for server in servers)
    if not benign:
        # Degrade a quorum-blocking set: every quorum now waits on at least
        # one gray node, so the whole run inherits the gray latency.
        degraded.append(tuple(servers[:blocking]))

    return {
        "faults.outages": outages,
        "faults.partitions": partitions,
        "latency.degraded": degraded,
        "latency.degraded_factor": list(
            BENIGN_FACTORS if benign else AGGRESSIVE_FACTORS
        ),
        "latency.degraded_stall": list(
            BENIGN_STALLS if benign else AGGRESSIVE_STALLS
        ),
    }
