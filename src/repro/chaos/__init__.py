"""Chaos campaigns: automated worst-case search over the fault space.

The campaign engine composes three layers this repository already has into
an automated robustness tester:

* the **fault space** — every ``faults.*`` knob of a declarative scenario
  (crash/recover outages, partition windows) plus the gray-failure knobs on
  ``latency.*`` (slow-but-alive nodes), enumerated by
  :func:`~repro.chaos.space.fault_axes` as ordinary sweep axes;
* the **sweep/executor machinery** — configurations are Latin-hypercube
  sampled (:meth:`~repro.experiments.sweep.Sweep.sample_lhs`) and executed
  through :func:`~repro.experiments.executor.execute_stream` with tracing
  enabled, serially or across worker processes, with identical results;
* the **oracle stack** (:mod:`repro.chaos.oracles`) — trace invariants from
  :mod:`repro.obs.analysis`, result-level assertions (operations accounted
  for, weights conserved), and a latency-degradation detector against the
  scenario's own baseline run.

:func:`~repro.chaos.campaign.run_campaign` ties them together and ranks
every sampled configuration by severity into a deterministic JSONL report;
the worst configurations are emitted as ready-to-run ``--spec`` files.
``python -m repro chaos --scenario quickstart --sample 16 --seed 0`` is the
CLI entry point.
"""

from repro.chaos.campaign import Campaign, run_campaign
from repro.chaos.oracles import (
    LatencyDegradationOracle,
    OracleViolation,
    ResultOracle,
    RunOutcome,
    TraceInvariantOracle,
    default_oracles,
)
from repro.chaos.space import fault_axes

__all__ = [
    "Campaign",
    "run_campaign",
    "fault_axes",
    "RunOutcome",
    "OracleViolation",
    "TraceInvariantOracle",
    "ResultOracle",
    "LatencyDegradationOracle",
    "default_oracles",
]
