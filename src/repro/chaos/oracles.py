"""The pluggable oracle stack that judges every campaign run.

An *oracle* looks at one finished run — its result dict, its recorded
trace, the scenario's baseline — and reports :class:`OracleViolation`\\ s
(things that must never happen) plus a details dict (measurements worth
ranking on).  Three oracles ship by default:

* :class:`TraceInvariantOracle` — the structural and semantic trace
  invariants of :func:`repro.obs.analysis.check_trace_invariants` (span
  balance, flow pairing, quorum nesting/size, weight conservation along
  transfer spans).  Error findings are violations; warnings are not (spans
  legitimately in flight when a run stops).
* :class:`ResultOracle` — result-level accounting: a captured run error is
  a violation, completed runs must report every generated operation, and
  the surviving weight map must still sum to the configured total with no
  negative entries.
* :class:`LatencyDegradationOracle` — read/write p99 against the
  scenario's baseline.  Degradation is *ranked*, not flagged as a
  violation: a slow-but-correct system under injected faults is the
  expected finding, not a bug — campaigns surface it through the severity
  score instead.

Oracles are plain objects with a ``name`` and a ``judge(outcome)`` method,
so scenario-specific stacks can add their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.analysis import check_trace_invariants

__all__ = [
    "RunOutcome",
    "OracleViolation",
    "OracleReport",
    "TraceInvariantOracle",
    "ResultOracle",
    "LatencyDegradationOracle",
    "default_oracles",
]

#: Cap on the reported p99 ratio, so a stalled run cannot produce an
#: unbounded severity and the ranking stays dominated by violation counts.
MAX_DEGRADATION = 99.0


@dataclass(frozen=True)
class RunOutcome:
    """Everything the oracles may look at for one campaign run."""

    index: int
    run_id: str
    params: Mapping[str, Any]
    result: Mapping[str, Any]
    trace_records: Optional[Sequence[Mapping[str, Any]]] = None
    baseline: Optional[Mapping[str, Any]] = None

    @property
    def failed(self) -> bool:
        """Whether the run died (its result is a captured error)."""
        return "error" in self.result


@dataclass(frozen=True)
class OracleViolation:
    """One thing that must never happen, observed in one run."""

    oracle: str
    check: str
    message: str

    def as_dict(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "check": self.check, "message": self.message}


@dataclass
class OracleReport:
    """One oracle's verdict on one run: violations plus measurements."""

    violations: List[OracleViolation] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)


class TraceInvariantOracle:
    """Trace-invariant errors are violations; an absent trace is recorded."""

    name = "trace-invariants"

    def __init__(self, min_quorum: int = 1) -> None:
        self.min_quorum = min_quorum

    def judge(self, outcome: RunOutcome) -> OracleReport:
        report = OracleReport()
        if outcome.trace_records is None:
            report.details = {"checked": False}
            return report
        invariants = check_trace_invariants(
            outcome.trace_records, min_quorum=self.min_quorum
        )
        report.details = {
            "checked": True,
            "records": invariants.counters["records"],
            "errors": len(invariants.errors),
            "warnings": len(invariants.warnings),
        }
        report.violations = [
            OracleViolation(self.name, finding.check, finding.message)
            for finding in invariants.errors
        ]
        return report


class ResultOracle:
    """Result-level accounting: run failures, lost operations, lost weight.

    ``expected_weight`` is the configured total weight of one replica group
    (``None`` skips the conservation check, e.g. for static flavours whose
    results carry no weight map).
    """

    name = "result"

    def __init__(
        self,
        expected_weight: Optional[float] = None,
        tolerance: float = 1e-6,
    ) -> None:
        self.expected_weight = expected_weight
        self.tolerance = tolerance

    def _check_weights(
        self,
        report: OracleReport,
        label: str,
        weights: Mapping[str, float],
    ) -> None:
        for pid, weight in sorted(weights.items()):
            if weight < -self.tolerance:
                report.violations.append(OracleViolation(
                    self.name, "negative-weight",
                    f"{label}: {pid} holds negative weight {weight!r}",
                ))
        if self.expected_weight is None:
            return
        total = sum(weights.values())
        if abs(total - self.expected_weight) > self.tolerance:
            report.violations.append(OracleViolation(
                self.name, "weight-conservation",
                f"{label}: weights sum to {total!r}, "
                f"expected {self.expected_weight!r}",
            ))

    def judge(self, outcome: RunOutcome) -> OracleReport:
        report = OracleReport()
        result = outcome.result
        if outcome.failed:
            error = result["error"]
            # Resilience-layer outcomes get their own accounting: a watchdog
            # kill or a quarantined worker death is a harness event, not a
            # protocol failure, and campaign readers need to tell them apart.
            # Plain failures keep the exact legacy details/check shape.
            check = "run-failure"
            details: Dict[str, Any] = {"completed": False}
            if error.get("type") == "WatchdogTimeout":
                check = "run-timeout"
                details["timed_out"] = True
            elif error.get("quarantined"):
                check = "run-quarantined"
                details["quarantined"] = True
            elif error.get("unexpected"):
                details["unexpected"] = True
            report.violations.append(OracleViolation(
                self.name, check,
                f"{error.get('type', 'Error')}: {error.get('message', '')}",
            ))
            report.details = details
            return report
        completed = result.get("operations")
        generated = (result.get("workload") or {}).get("operations")
        report.details = {
            "completed": True,
            "operations": completed,
            "generated": generated,
        }
        if (isinstance(completed, int) and isinstance(generated, int)
                and completed != generated):
            report.violations.append(OracleViolation(
                self.name, "ops-unaccounted",
                f"run completed {completed} of {generated} generated "
                "operation(s) without reporting an error",
            ))
        weights = result.get("weights")
        if isinstance(weights, Mapping):
            self._check_weights(report, "weights", weights)
        shard_weights = result.get("shard_weights")
        if isinstance(shard_weights, Mapping):
            for shard, shard_map in sorted(shard_weights.items()):
                if isinstance(shard_map, Mapping):
                    self._check_weights(
                        report, f"shard_weights[{shard}]", shard_map
                    )
        return report


def _p99(result: Mapping[str, Any], kind: str) -> Optional[float]:
    summary = result.get(kind)
    if isinstance(summary, Mapping):
        value = summary.get("p99")
        if isinstance(value, (int, float)):
            return float(value)
    return None


class LatencyDegradationOracle:
    """p99 against the baseline run: ranked, never a violation."""

    name = "latency"

    def __init__(self, threshold: float = 2.0) -> None:
        self.threshold = threshold

    def judge(self, outcome: RunOutcome) -> OracleReport:
        report = OracleReport()
        details: Dict[str, Any] = {
            "read_p99": _p99(outcome.result, "read_latency"),
            "write_p99": _p99(outcome.result, "write_latency"),
            "degradation": None,
            "degraded": False,
        }
        report.details = details
        if outcome.failed or outcome.baseline is None:
            return report
        ratios = []
        for kind in ("read_latency", "write_latency"):
            base = _p99(outcome.baseline, kind)
            observed = _p99(outcome.result, kind)
            if base and base > 0 and observed is not None:
                ratios.append(observed / base)
        if ratios:
            degradation = min(max(ratios), MAX_DEGRADATION)
            details["degradation"] = degradation
            details["degraded"] = degradation >= self.threshold
        return report


def default_oracles(
    min_quorum: int = 1,
    expected_weight: Optional[float] = None,
    degradation_threshold: float = 2.0,
) -> Tuple[Any, ...]:
    """The standard stack: trace invariants, result accounting, latency."""
    return (
        TraceInvariantOracle(min_quorum=min_quorum),
        ResultOracle(expected_weight=expected_weight),
        LatencyDegradationOracle(threshold=degradation_threshold),
    )
