"""The campaign engine: sample the fault space, run it, rank the damage.

:func:`run_campaign` takes a registered *declarative* scenario, derives its
fault axes (:func:`~repro.chaos.space.fault_axes`), Latin-hypercube samples
``sample`` configurations, executes them — traced — through the existing
serial/parallel executor with run errors captured, and judges every run
with the oracle stack (:mod:`repro.chaos.oracles`).  The result is a
:class:`Campaign`: a ranked, deterministic report whose JSONL form is
byte-identical for any worker count and any ``PYTHONHASHSEED`` (the same
guarantee the sweep executor makes), plus ready-to-run spec files for the
worst configurations (:meth:`Campaign.write_worst_specs`).

Severity is ``100 x violations + p99-degradation`` — violations dominate
(each is worth more than any latency ratio, which is capped), degradation
breaks ties among correct-but-slow configurations, and remaining ties
resolve by sample index, so the ranking is total and stable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.chaos.oracles import RunOutcome, default_oracles
from repro.chaos.space import fault_axes
from repro.errors import ConfigurationError, ReproError
from repro.experiments.executor import run_with_stable_stack
from repro.experiments.executor import execute_run
from repro.experiments.registry import get_scenario
from repro.experiments.resilience import (
    Quarantine,
    ResiliencePolicy,
    RunJournal,
    StreamTelemetry,
    execute_stream_resilient,
    journalable,
    run_digest,
)
from repro.experiments.spec import ScenarioSpec
from repro.experiments.sweep import RunSpec, Sweep
from repro.obs import read_trace
from repro.types import VirtualTime

__all__ = ["Campaign", "run_campaign"]

ProgressCallback = Any  # (done, total) -> None, matching the executor's


@dataclass
class Campaign:
    """A finished campaign: header, ranked entries, and the base spec."""

    header: Dict[str, Any]
    entries: List[Dict[str, Any]] = field(default_factory=list)
    base_spec: Optional[ScenarioSpec] = None

    @property
    def violations(self) -> int:
        """Total oracle violations across every sampled run."""
        return sum(len(entry["violations"]) for entry in self.entries)

    @property
    def worst(self) -> Optional[Dict[str, Any]]:
        """The rank-1 entry, or ``None`` for an empty campaign."""
        return self.entries[0] if self.entries else None

    def jsonl_lines(self) -> Iterator[str]:
        """The report: one header line, then one line per entry, by rank."""
        yield json.dumps(self.header, sort_keys=True)
        for entry in self.entries:
            yield json.dumps(entry, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the JSONL report to ``path`` (canonical bytes)."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.jsonl_lines():
                handle.write(line + "\n")

    def worst_spec(self, entry: Dict[str, Any], name: str) -> ScenarioSpec:
        """The ready-to-run spec reproducing ``entry``, renamed to ``name``."""
        if self.base_spec is None:
            raise ConfigurationError("campaign carries no base spec")
        spec = self.base_spec.with_overrides(dict(entry["params"]))
        scenario = self.header["campaign"]["scenario"]
        return dataclasses.replace(
            spec,
            name=name,
            description=(
                f"chaos worst #{entry['rank']} of scenario {scenario!r} "
                f"(severity {entry['severity']:.3f}, "
                f"{len(entry['violations'])} violation(s)); "
                f"emitted by `python -m repro chaos`"
            ),
        )

    def write_worst_specs(self, out_dir: str, top: int = 3) -> List[str]:
        """Emit the ``top`` worst configurations as runnable spec files.

        Files are named ``<scenario>-chaos-<rank>.json`` with matching spec
        names, so they satisfy the example-spec convention (name == stem)
        and re-run with ``python -m repro run --spec <file>``.
        """
        os.makedirs(out_dir, exist_ok=True)
        scenario = self.header["campaign"]["scenario"]
        paths = []
        for entry in self.entries[:top]:
            name = f"{scenario}-chaos-{entry['rank']}"
            spec = self.worst_spec(entry, name)
            path = os.path.join(out_dir, f"{name}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(spec.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            paths.append(path)
        return paths

    def summary_rows(self, top: int = 10) -> List[Tuple[Any, ...]]:
        """Human-readable top rows: (rank, severity, violations, degr, id)."""
        rows = []
        for entry in self.entries[:top]:
            degradation = entry["oracles"]["latency"]["degradation"]
            rows.append((
                entry["rank"],
                f"{entry['severity']:.2f}",
                len(entry["violations"]),
                "-" if degradation is None else f"{degradation:.2f}x",
                entry["run_id"],
            ))
        return rows


def _base_spec(scenario: str) -> ScenarioSpec:
    entry = get_scenario(scenario)
    if entry.kind != "spec":
        raise ConfigurationError(
            f"chaos campaigns need a declarative (spec) scenario; "
            f"{scenario!r} is a {entry.kind} scenario — load a spec file "
            "via --spec, or pick one of the spec scenarios in `list`"
        )
    return entry.spec


def _traced(run: RunSpec, trace_path: str) -> RunSpec:
    params = run.params_dict
    params["observability.enabled"] = True
    params["observability.trace"] = True
    params["observability.trace_path"] = trace_path
    return RunSpec(scenario=run.scenario, params=tuple(sorted(params.items())))


def _read_trace_if_any(
    path: str, tolerant: bool = False
) -> Optional[List[Dict[str, Any]]]:
    # A run that died raised before run_spec wrote its trace; an absent file
    # simply means "nothing to check" for the trace oracle.  ``tolerant``
    # additionally swallows unreadable files: a watchdog can SIGKILL a
    # worker *while* it writes its trace, and the truncated file must judge
    # as "no trace" rather than kill the campaign.
    if not os.path.exists(path):
        return None
    try:
        return read_trace(path)
    except (ReproError, ValueError):
        if tolerant:
            return None
        raise


def _journal_header(
    scenario: str, sample: int, seed: int, benign: bool,
    times: Sequence[VirtualTime], outage_length: VirtualTime,
    window_length: VirtualTime, min_quorum: int,
    degradation_threshold: float,
) -> Dict[str, Any]:
    """The chaos journal header: every knob the report bytes depend on.

    A resumed campaign validates its knobs against this record, so a
    journal written by one configuration cannot silently poison the
    report of another.
    """
    return {
        "kind": "chaos",
        "version": 1,
        "campaign": {
            "scenario": scenario,
            "sample": sample,
            "seed": seed,
            "benign": benign,
            "times": list(times),
            "outage_length": outage_length,
            "window_length": window_length,
            "min_quorum": min_quorum,
            "degradation_threshold": degradation_threshold,
        },
    }


def run_campaign(
    scenario: str,
    sample: int = 16,
    seed: int = 0,
    workers: int = 1,
    benign: bool = False,
    times: Sequence[VirtualTime] = (4.0, 8.0, 12.0),
    outage_length: VirtualTime = 8.0,
    window_length: VirtualTime = 8.0,
    min_quorum: int = 1,
    degradation_threshold: float = 2.0,
    keep_traces: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    policy: Optional[ResiliencePolicy] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    quarantine_path: Optional[str] = None,
    telemetry: Optional[StreamTelemetry] = None,
) -> Campaign:
    """LHS-sample ``scenario``'s fault space, execute it, and rank the runs.

    The report is deterministic in (scenario, sample, seed, benign, times,
    window sizes, thresholds): worker count, trace directory and hash seed
    leave its bytes unchanged.  ``keep_traces`` preserves the per-run trace
    files in the given directory (by sample index) instead of a temporary
    one; ``progress`` is called with global ``(done, total)`` counts.

    ``journal_path`` journals *judged* entries (keyed by the digest of the
    untraced run spec) as they land — per-run traces live in a temporary
    directory and do not survive an interruption, so the journal records
    the oracle verdicts, not the raw traces.  ``resume=True`` reloads an
    existing journal and skips its runs (and the baseline); because every
    run and every oracle is deterministic, the resumed report is
    byte-identical to an uninterrupted one.  ``policy`` adds the per-run
    watchdog and worker retry of :mod:`repro.experiments.resilience`;
    watchdog/quarantine outcomes are reported but never journaled, so a
    resume retries them.
    """
    base = _base_spec(scenario)
    axes = fault_axes(
        base,
        benign=benign,
        times=times,
        outage_length=outage_length,
        window_length=window_length,
    )
    runs = Sweep.of(scenario, grid=axes).sample_lhs(sample, seed=seed)
    config = base.cluster.system_config()
    expected_weight = (
        sum(config.initial_weights.values())
        if base.cluster.flavour == "dynamic-weighted" else None
    )
    oracles = default_oracles(
        min_quorum=min_quorum,
        expected_weight=expected_weight,
        degradation_threshold=degradation_threshold,
    )

    policy = policy or ResiliencePolicy()
    policy.validate()
    telemetry = telemetry if telemetry is not None else StreamTelemetry()
    quarantine = Quarantine(quarantine_path)
    journal: Optional[RunJournal] = None
    if journal_path is not None:
        journal = RunJournal(
            journal_path,
            _journal_header(
                scenario, sample, seed, benign, times, outage_length,
                window_length, min_quorum, degradation_threshold,
            ),
            resume=resume,
        )
    resilient = journal is not None or policy.needs_pool
    # Watchdog kills can truncate a trace mid-write; judge those as
    # "no trace" instead of failing the whole campaign.
    tolerant = policy.needs_pool
    total = len(runs)
    done = 0

    def tick() -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total)

    trace_dir = keep_traces or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(trace_dir, exist_ok=True)
    try:
        # -- baseline: the un-faulted scenario, traced and judged -----------
        baseline_record = journal.get("baseline") if journal else None
        if baseline_record is not None:
            baseline_result = baseline_record["result"]
            baseline_violations = baseline_record["violations"]
            baseline_trace_records = baseline_record["trace_records"]
        else:
            baseline_path = os.path.join(trace_dir, "baseline.jsonl")
            # Stable-stack execution everywhere: recursion-limited trace
            # tails (weight-gain refresh churn) otherwise depend on the
            # caller's stack depth, which would break the serial==parallel
            # byte-identity of the report and its reproducibility from
            # tests vs the CLI.
            baseline_result = run_with_stable_stack(
                execute_run, _traced(RunSpec(scenario=scenario), baseline_path)
            ).result
            baseline_records = _read_trace_if_any(baseline_path)
            baseline_outcome = RunOutcome(
                index=-1,
                run_id=scenario,
                params={},
                result=baseline_result,
                trace_records=baseline_records,
            )
            baseline_violations = [
                violation.as_dict()
                for oracle in oracles
                for violation in oracle.judge(baseline_outcome).violations
            ]
            baseline_trace_records = len(baseline_records or ())
            if journal is not None:
                journal.record("baseline", {
                    "result": baseline_result,
                    "violations": baseline_violations,
                    "trace_records": baseline_trace_records,
                })

        # -- the sampled fault space, traced, errors captured ---------------
        # Journaled runs are skipped (their judged entries are replayed);
        # fresh runs execute through the resilient stream and are judged —
        # and journaled — as each one completes, so an interruption at any
        # point loses at most the in-flight runs.
        entries = []
        pending: List[Tuple[int, RunSpec]] = []
        for index, run in enumerate(runs):
            record = journal.get(run_digest(run)) if journal else None
            if record is not None:
                telemetry.resumed += 1
                entries.append(record["entry"])
                tick()
            else:
                pending.append((index, run))

        index_map = [index for index, _ in pending]
        traced_pending = [
            _traced(run, os.path.join(trace_dir, f"{index:04d}.jsonl"))
            for index, run in pending
        ]
        for sub_index, result in execute_stream_resilient(
            traced_pending, workers=workers,
            capture_errors=True, stable_stack=True,
            policy=policy, quarantine=quarantine, telemetry=telemetry,
        ):
            index = index_map[sub_index]
            run = runs[index]
            records = _read_trace_if_any(
                os.path.join(trace_dir, f"{index:04d}.jsonl"),
                tolerant=tolerant,
            )
            outcome = RunOutcome(
                index=index,
                run_id=run.run_id,
                params=run.params_dict,
                result=result.result,
                trace_records=records,
                baseline=baseline_result,
            )
            violations = []
            oracle_details: Dict[str, Any] = {}
            for oracle in oracles:
                report = oracle.judge(outcome)
                violations.extend(report.violations)
                oracle_details[oracle.name] = report.details
            degradation = oracle_details["latency"]["degradation"]
            severity = 100.0 * len(violations) + (degradation or 0.0)
            entry = {
                "index": index,
                "run_id": run.run_id,
                "params": run.params_dict,
                "severity": severity,
                "violations": [v.as_dict() for v in violations],
                "oracles": oracle_details,
            }
            entries.append(entry)
            if journal is not None and journalable(result):
                journal.record(run_digest(run), {"entry": entry})
            tick()
    finally:
        if keep_traces is None:
            shutil.rmtree(trace_dir, ignore_errors=True)
        quarantine.close()
        if journal is not None:
            journal.close()

    entries.sort(key=lambda entry: (-entry["severity"], entry["index"]))
    for rank, entry in enumerate(entries, 1):
        entry["rank"] = rank

    degraded = sum(
        1 for entry in entries if entry["oracles"]["latency"]["degraded"]
    )
    failed = sum(
        1 for entry in entries if not entry["oracles"]["result"]["completed"]
    )
    campaign_block = {
        "scenario": scenario,
        "sample": sample,
        "seed": seed,
        "benign": benign,
        "times": list(times),
        "outage_length": outage_length,
        "window_length": window_length,
        "min_quorum": min_quorum,
        "degradation_threshold": degradation_threshold,
        "axes": {path: list(values) for path, values in axes.items()},
        "runs": len(entries),
        "violations": sum(len(entry["violations"]) for entry in entries),
        "degraded": degraded,
        "failed": failed,
    }
    if resilient:
        # Only when resilience is active, so legacy reports keep their
        # bytes.  ``telemetry.as_dict()`` excludes the resumed count: a
        # resumed report must be byte-identical to an uninterrupted one.
        campaign_block["resilience"] = {
            **policy.as_dict(), **telemetry.as_dict(),
        }
    header = {
        "campaign": campaign_block,
        "baseline": {
            "run_id": scenario,
            "read_p99": (baseline_result.get("read_latency") or {}).get("p99"),
            "write_p99": (baseline_result.get("write_latency") or {}).get("p99"),
            "operations": baseline_result.get("operations"),
            "violations": baseline_violations,
            "trace_records": baseline_trace_records,
        },
    }
    return Campaign(header=header, entries=entries, base_spec=base)
