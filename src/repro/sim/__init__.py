"""Simulation and experiment harness.

* :mod:`repro.sim.cluster` — wire up a loop, a network, servers and clients
  for any of the storage variants in one call.
* :mod:`repro.sim.workload` — seeded read/write workload generators.
* :mod:`repro.sim.failures` — crash and slowdown schedules.
* :mod:`repro.sim.metrics` — latency summaries (mean, percentiles).
* :mod:`repro.sim.runner` — run a workload against a cluster and collect a
  :class:`~repro.sim.runner.RunReport`.
"""

from repro.sim.cluster import (
    Cluster,
    ReassignmentFleet,
    build_dynamic_cluster,
    build_reassignment_fleet,
    build_static_cluster,
)
from repro.sim.workload import Operation, Workload, uniform_workload
from repro.sim.failures import FailureSchedule, CrashEvent
from repro.sim.metrics import LatencySummary, summarize
from repro.sim.runner import RunReport, run_workload

__all__ = [
    "Cluster",
    "ReassignmentFleet",
    "build_dynamic_cluster",
    "build_reassignment_fleet",
    "build_static_cluster",
    "Operation",
    "Workload",
    "uniform_workload",
    "FailureSchedule",
    "CrashEvent",
    "LatencySummary",
    "summarize",
    "RunReport",
    "run_workload",
]
