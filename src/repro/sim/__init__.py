"""Simulation and experiment harness.

* :mod:`repro.sim.cluster` — wire up a loop, a network, servers and clients
  for any of the storage variants in one call; ``build_sharded_cluster``
  scales any flavour out across key-hashed shards behind keyed clients.
* :mod:`repro.sim.workload` — seeded read/write workload generators.
* :mod:`repro.sim.failures` — crash and slowdown schedules.
* :mod:`repro.sim.metrics` — latency summaries (mean, percentiles) and
  per-shard load/imbalance statistics.
* :mod:`repro.sim.runner` — run a workload against a cluster and collect a
  :class:`~repro.sim.runner.RunReport` (with a per-shard breakdown when the
  cluster is sharded).
"""

from repro.sim.cluster import (
    Cluster,
    ReassignmentFleet,
    ShardGroup,
    ShardedCluster,
    build_dynamic_cluster,
    build_reassignment_fleet,
    build_sharded_cluster,
    build_static_cluster,
)
from repro.sim.workload import Operation, Workload, uniform_workload
from repro.sim.failures import FailureSchedule, CrashEvent
from repro.sim.metrics import (
    ImbalanceSummary,
    LatencySummary,
    ShardLoadSummary,
    imbalance_summary,
    summarize,
    summarize_shard_loads,
)
from repro.sim.runner import RunReport, run_workload

__all__ = [
    "Cluster",
    "ReassignmentFleet",
    "ShardGroup",
    "ShardedCluster",
    "build_dynamic_cluster",
    "build_reassignment_fleet",
    "build_sharded_cluster",
    "build_static_cluster",
    "Operation",
    "Workload",
    "uniform_workload",
    "FailureSchedule",
    "CrashEvent",
    "ImbalanceSummary",
    "LatencySummary",
    "ShardLoadSummary",
    "imbalance_summary",
    "summarize",
    "summarize_shard_loads",
    "RunReport",
    "run_workload",
]
