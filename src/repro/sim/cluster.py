"""Cluster builders: one call to wire up a loop, network, servers and clients.

Three storage flavours are supported, matching the benchmark matrix:

* ``build_dynamic_cluster`` — the paper's dynamic-weighted storage
  (:mod:`repro.core.storage`) whose servers also run the reassignment
  protocol;
* ``build_static_cluster`` — classical ABD over a static quorum system
  (majority or static-weighted), the baselines of experiment E6.

Both return a :class:`Cluster`, a small bag of handles the runner and the
examples operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.protocol import ReassignmentServer
from repro.core.spec import SystemConfig
from repro.core.storage import DynamicWeightedStorageClient, DynamicWeightedStorageServer
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.network import Network
from repro.net.simloop import SimLoop
from repro.quorum.base import QuorumSystem
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.weighted import WeightedMajorityQuorumSystem
from repro.storage.abd import StaticQuorumStorageClient, StaticQuorumStorageServer
from repro.types import ProcessId, client_name

__all__ = [
    "Cluster",
    "ReassignmentFleet",
    "build_dynamic_cluster",
    "build_static_cluster",
    "build_reassignment_fleet",
]

StorageClient = Union[DynamicWeightedStorageClient, StaticQuorumStorageClient]
StorageServer = Union[DynamicWeightedStorageServer, StaticQuorumStorageServer]


@dataclass
class Cluster:
    """Handles to a wired-up simulated deployment."""

    loop: SimLoop
    network: Network
    config: SystemConfig
    servers: Dict[ProcessId, StorageServer]
    clients: Dict[ProcessId, StorageClient]
    flavour: str

    def server(self, pid: ProcessId) -> StorageServer:
        return self.servers[pid]

    def client(self, pid: ProcessId) -> StorageClient:
        return self.clients[pid]

    def any_client(self) -> StorageClient:
        return next(iter(self.clients.values()))


@dataclass
class ReassignmentFleet:
    """A loop/network/servers bundle for pure weight-reassignment experiments.

    This is the setup every protocol-level benchmark needs (no storage, no
    clients): a deterministic loop, a network, and one
    :class:`~repro.core.protocol.ReassignmentServer` per configured server.
    """

    loop: SimLoop
    network: Network
    config: SystemConfig
    servers: Dict[ProcessId, "ReassignmentServer"]

    def server(self, pid: ProcessId) -> "ReassignmentServer":
        return self.servers[pid]


def build_reassignment_fleet(
    config: SystemConfig,
    latency: Optional[LatencyModel] = None,
) -> ReassignmentFleet:
    """Wire up a fleet of reassignment servers (Algorithms 3/4 only)."""
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    servers = {pid: ReassignmentServer(pid, network, config) for pid in config.servers}
    return ReassignmentFleet(loop=loop, network=network, config=config, servers=servers)


def build_dynamic_cluster(
    config: SystemConfig,
    latency: Optional[LatencyModel] = None,
    client_count: int = 2,
) -> Cluster:
    """A cluster running the paper's dynamic-weighted atomic storage."""
    if client_count < 1:
        raise ConfigurationError("need at least one client")
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    servers: Dict[ProcessId, DynamicWeightedStorageServer] = {
        pid: DynamicWeightedStorageServer(pid, network, config) for pid in config.servers
    }
    clients: Dict[ProcessId, DynamicWeightedStorageClient] = {}
    for index in range(1, client_count + 1):
        pid = client_name(index)
        clients[pid] = DynamicWeightedStorageClient(pid, network, config)
    return Cluster(
        loop=loop,
        network=network,
        config=config,
        servers=servers,
        clients=clients,
        flavour="dynamic-weighted",
    )


def build_static_cluster(
    config: SystemConfig,
    latency: Optional[LatencyModel] = None,
    client_count: int = 2,
    weighted: bool = False,
) -> Cluster:
    """A cluster running classical ABD over a static quorum system.

    With ``weighted=False`` the quorum system is the plain majority system;
    with ``weighted=True`` it is a static WMQS built from the config's initial
    weights (the WHEAT-style baseline).
    """
    if client_count < 1:
        raise ConfigurationError("need at least one client")
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    servers: Dict[ProcessId, StaticQuorumStorageServer] = {
        pid: StaticQuorumStorageServer(pid, network) for pid in config.servers
    }
    quorum_system: QuorumSystem
    if weighted:
        quorum_system = WeightedMajorityQuorumSystem(config.initial_weights)
    else:
        quorum_system = MajorityQuorumSystem(config.servers)
    clients: Dict[ProcessId, StaticQuorumStorageClient] = {}
    for index in range(1, client_count + 1):
        pid = client_name(index)
        clients[pid] = StaticQuorumStorageClient(pid, network, quorum_system)
    return Cluster(
        loop=loop,
        network=network,
        config=config,
        servers=servers,
        clients=clients,
        flavour="static-weighted" if weighted else "static-majority",
    )
