"""Cluster builders: one call to wire up a loop, network, servers and clients.

Three single-register storage flavours are supported, matching the benchmark
matrix:

* ``build_dynamic_cluster`` — the paper's dynamic-weighted storage
  (:mod:`repro.core.storage`) whose servers also run the reassignment
  protocol;
* ``build_static_cluster`` — classical ABD over a static quorum system
  (majority or static-weighted), the baselines of experiment E6.

Both return a :class:`Cluster`, a small bag of handles the runner and the
examples operate on.  ``build_sharded_cluster`` scales any flavour out by
key: it wires N independent replica groups (one per shard) onto a *single*
loop and network, and hands every logical client a keyed
:class:`~repro.storage.sharded.ShardedStore` facade — the
:class:`ShardedCluster` it returns duck-types as a :class:`Cluster` for the
workload runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.protocol import ReassignmentServer
from repro.core.spec import SystemConfig
from repro.core.storage import DynamicWeightedStorageClient, DynamicWeightedStorageServer
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.network import Network
from repro.net.simloop import SimLoop
from repro.quorum.base import QuorumSystem
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.weighted import WeightedMajorityQuorumSystem
from repro.storage.abd import StaticQuorumStorageClient, StaticQuorumStorageServer
from repro.storage.sharded import (
    ShardedStore,
    base_process_name,
    shard_config,
    shard_factory,
    shard_process_name,
)
from repro.types import ProcessId, client_name

__all__ = [
    "Cluster",
    "ReassignmentFleet",
    "ShardGroup",
    "ShardedCluster",
    "build_dynamic_cluster",
    "build_static_cluster",
    "build_sharded_cluster",
    "build_reassignment_fleet",
]

StorageClient = Union[DynamicWeightedStorageClient, StaticQuorumStorageClient]
StorageServer = Union[DynamicWeightedStorageServer, StaticQuorumStorageServer]


@dataclass
class Cluster:
    """Handles to a wired-up simulated deployment."""

    loop: SimLoop
    network: Network
    config: SystemConfig
    servers: Dict[ProcessId, StorageServer]
    clients: Dict[ProcessId, StorageClient]
    flavour: str

    def server(self, pid: ProcessId) -> StorageServer:
        return self.servers[pid]

    def client(self, pid: ProcessId) -> StorageClient:
        return self.clients[pid]

    def any_client(self) -> StorageClient:
        return next(iter(self.clients.values()))


@dataclass
class ReassignmentFleet:
    """A loop/network/servers bundle for pure weight-reassignment experiments.

    This is the setup every protocol-level benchmark needs (no storage, no
    clients): a deterministic loop, a network, and one
    :class:`~repro.core.protocol.ReassignmentServer` per configured server.
    """

    loop: SimLoop
    network: Network
    config: SystemConfig
    servers: Dict[ProcessId, "ReassignmentServer"]

    def server(self, pid: ProcessId) -> "ReassignmentServer":
        return self.servers[pid]


def build_reassignment_fleet(
    config: SystemConfig,
    latency: Optional[LatencyModel] = None,
) -> ReassignmentFleet:
    """Wire up a fleet of reassignment servers (Algorithms 3/4 only)."""
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    servers = {pid: ReassignmentServer(pid, network, config) for pid in config.servers}
    return ReassignmentFleet(loop=loop, network=network, config=config, servers=servers)


def build_dynamic_cluster(
    config: SystemConfig,
    latency: Optional[LatencyModel] = None,
    client_count: int = 2,
) -> Cluster:
    """A cluster running the paper's dynamic-weighted atomic storage."""
    if client_count < 1:
        raise ConfigurationError("need at least one client")
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    servers: Dict[ProcessId, DynamicWeightedStorageServer] = {
        pid: DynamicWeightedStorageServer(pid, network, config) for pid in config.servers
    }
    clients: Dict[ProcessId, DynamicWeightedStorageClient] = {}
    for index in range(1, client_count + 1):
        pid = client_name(index)
        clients[pid] = DynamicWeightedStorageClient(pid, network, config)
    return Cluster(
        loop=loop,
        network=network,
        config=config,
        servers=servers,
        clients=clients,
        flavour="dynamic-weighted",
    )


def build_static_cluster(
    config: SystemConfig,
    latency: Optional[LatencyModel] = None,
    client_count: int = 2,
    weighted: bool = False,
) -> Cluster:
    """A cluster running classical ABD over a static quorum system.

    With ``weighted=False`` the quorum system is the plain majority system;
    with ``weighted=True`` it is a static WMQS built from the config's initial
    weights (the WHEAT-style baseline).
    """
    if client_count < 1:
        raise ConfigurationError("need at least one client")
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    servers: Dict[ProcessId, StaticQuorumStorageServer] = {
        pid: StaticQuorumStorageServer(pid, network) for pid in config.servers
    }
    quorum_system: QuorumSystem
    if weighted:
        quorum_system = WeightedMajorityQuorumSystem(config.initial_weights)
    else:
        quorum_system = MajorityQuorumSystem(config.servers)
    clients: Dict[ProcessId, StaticQuorumStorageClient] = {}
    for index in range(1, client_count + 1):
        pid = client_name(index)
        clients[pid] = StaticQuorumStorageClient(pid, network, quorum_system)
    return Cluster(
        loop=loop,
        network=network,
        config=config,
        servers=servers,
        clients=clients,
        flavour="static-weighted" if weighted else "static-majority",
    )


@dataclass
class ShardGroup:
    """One shard's replica group: its config and its server instances.

    ``config`` uses shard-qualified names (``s1#2``); :meth:`server` accepts
    either the qualified or the canonical (``s1``) name for convenience.
    """

    index: int
    config: SystemConfig
    servers: Dict[ProcessId, object]

    def server(self, pid: ProcessId) -> object:
        if pid in self.servers:
            return self.servers[pid]
        return self.servers[shard_process_name(pid, self.index)]

    def local_weights(self) -> Dict[ProcessId, float]:
        """The shard's current weight map, keyed by canonical server names.

        Reads one surviving server's local view (dynamic-weighted flavour
        only); static flavours report the initial weights unchanged.
        """
        for server in self.servers.values():
            weights = getattr(server, "local_weights", None)
            if weights is None:
                break
            if not server.network.is_crashed(server.pid):  # type: ignore[attr-defined]
                return {
                    base_process_name(pid): weight
                    for pid, weight in sorted(weights().items())
                }
        return {
            base_process_name(pid): weight
            for pid, weight in sorted(self.config.initial_weights.items())
        }


@dataclass
class ShardedCluster:
    """Handles to a key-sharded deployment sharing one loop and network.

    Duck-types as :class:`Cluster` for the workload runner: ``loop``,
    ``network``, ``flavour``, ``config`` and ``clients`` carry the same
    meaning, but each value in ``clients`` is a keyed
    :class:`~repro.storage.sharded.ShardedStore` facade, and the server side
    is grouped per shard in ``shards``.
    """

    loop: SimLoop
    network: Network
    config: SystemConfig  # the per-shard template, canonical server names
    shards: List[ShardGroup]
    clients: Dict[ProcessId, ShardedStore]
    flavour: str

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard(self, index: int) -> ShardGroup:
        return self.shards[index]

    def server(self, shard: int, pid: ProcessId) -> object:
        """The server ``pid`` (canonical or qualified name) of ``shard``."""
        return self.shards[shard].server(pid)

    def client(self, pid: ProcessId) -> ShardedStore:
        return self.clients[pid]

    def any_client(self) -> ShardedStore:
        return next(iter(self.clients.values()))

    def shard_weights(self) -> Dict[int, Dict[ProcessId, float]]:
        """Current per-shard weight maps (canonical server names)."""
        return {group.index: group.local_weights() for group in self.shards}


def build_sharded_cluster(
    config: SystemConfig,
    shards: int,
    latency: Optional[LatencyModel] = None,
    client_count: int = 2,
    flavour: str = "dynamic-weighted",
) -> ShardedCluster:
    """Wire up ``shards`` independent replica groups behind keyed clients.

    ``config`` is the per-shard template (canonical ``s1..sn`` names); every
    shard gets a renamed copy (``s1#k``) so its weights, change sets and
    reassignment state evolve independently.  All shards share one
    :class:`SimLoop` and :class:`Network`, so operations against different
    shards interleave in a single coherent virtual timeline and one latency
    model (which may slow individual shard servers by their qualified names)
    governs the whole deployment.

    Every logical client ``c1..cN`` owns one sub-client per shard
    (``c1#0``, ``c1#1``, ...) wrapped in a
    :class:`~repro.storage.sharded.ShardedStore`; the runner routes each
    operation's key through it.

    Process ids are shard-qualified even with ``shards=1``, so latency
    models and failure schedules targeting this builder's processes must use
    qualified names (``s1#0``) — or go through the spec layer, which resolves
    canonical names via
    :func:`~repro.storage.sharded.expand_process_names` and routes
    ``shards == 1`` to the unsharded builders.
    """
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")
    if client_count < 1:
        raise ConfigurationError("need at least one client")
    factory = shard_factory(flavour)
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    groups: List[ShardGroup] = []
    for index in range(shards):
        sharded = shard_config(config, index)
        groups.append(
            ShardGroup(index=index, config=sharded,
                       servers=factory.build_servers(sharded, network))
        )
    clients: Dict[ProcessId, ShardedStore] = {}
    for client_index in range(1, client_count + 1):
        pid = client_name(client_index)
        sub_clients = [
            factory.build_client(
                shard_process_name(pid, group.index), network, group.config
            )
            for group in groups
        ]
        clients[pid] = ShardedStore(pid, sub_clients)
    return ShardedCluster(
        loop=loop,
        network=network,
        config=config,
        shards=groups,
        clients=clients,
        flavour=flavour,
    )
