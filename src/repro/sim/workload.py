"""Seeded read/write workload generation."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.types import ProcessId, VirtualTime

__all__ = ["Operation", "Workload", "uniform_workload"]


@dataclass(frozen=True)
class Operation:
    """One client operation: a read, or a write of ``value``."""

    client: ProcessId
    kind: str  # "read" | "write"
    value: Optional[str]
    issue_after: VirtualTime  # think time before issuing, relative to the previous op


@dataclass
class Workload:
    """A per-client sequence of operations (clients run their sequences concurrently)."""

    operations: List[Operation] = field(default_factory=list)

    def for_client(self, client: ProcessId) -> List[Operation]:
        return [op for op in self.operations if op.client == client]

    def clients(self) -> Sequence[ProcessId]:
        seen = []
        for op in self.operations:
            if op.client not in seen:
                seen.append(op.client)
        return tuple(seen)

    def counts(self) -> dict:
        reads = sum(1 for op in self.operations if op.kind == "read")
        writes = len(self.operations) - reads
        return {"reads": reads, "writes": writes, "total": len(self.operations)}


def uniform_workload(
    clients: Sequence[ProcessId],
    operations_per_client: int,
    read_ratio: float = 0.5,
    mean_think_time: VirtualTime = 1.0,
    seed: int = 0,
) -> Workload:
    """A uniformly random mix of reads and writes with exponential think times.

    The first operation of the first client is always a write, so reads never
    observe the "unwritten" initial value.
    """
    if not clients:
        raise ConfigurationError("need at least one client")
    if operations_per_client < 1:
        raise ConfigurationError("need at least one operation per client")
    if not 0.0 <= read_ratio <= 1.0:
        raise ConfigurationError("read_ratio must be within [0, 1]")
    rng = random.Random(seed)
    operations: List[Operation] = []
    value_counter = 0
    for client_index, client in enumerate(clients):
        for op_index in range(operations_per_client):
            force_write = client_index == 0 and op_index == 0
            is_read = (not force_write) and rng.random() < read_ratio
            think = rng.expovariate(1.0 / mean_think_time) if mean_think_time > 0 else 0.0
            if is_read:
                operations.append(
                    Operation(client=client, kind="read", value=None, issue_after=think)
                )
            else:
                value_counter += 1
                operations.append(
                    Operation(
                        client=client,
                        kind="write",
                        value=f"value-{client}-{value_counter}",
                        issue_after=think,
                    )
                )
    return Workload(operations=operations)
