"""Seeded read/write workload generation.

:class:`Operation` supports two timing models: closed-loop (``issue_after``,
a think time relative to the previous operation's completion) and open-loop
(``issue_at``, an absolute virtual time that does not bend when the system
slows down).  ``key`` names the logical datum an operation touches; the
single-register stores treat it as workload metadata (popularity skew shapes
*when* operations contend, not *where* they land), while keyed backends can
route on it directly.

:func:`uniform_workload` is the original closed-loop uniform mix; richer
composable generators (zipfian keys, Poisson arrivals, phases, traces) live
in :mod:`repro.workloads`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.types import ProcessId, VirtualTime

__all__ = ["Operation", "Workload", "uniform_workload"]


@dataclass(frozen=True)
class Operation:
    """One client operation: a read, or a write of ``value``.

    Exactly one timing field is meaningful: with ``issue_at`` set the
    operation is open-loop (issue at that absolute virtual time, or
    immediately if the client is already past it); otherwise ``issue_after``
    is a closed-loop think time relative to the previous operation.

    ``batch_id`` / ``batch_index`` tag batch membership: a *logical* operation
    touching ``keys_per_op > 1`` keys expands into that many physical
    operations sharing one ``batch_id`` (unique per client), numbered by
    ``batch_index``.  Only the ``batch_index == 0`` operation carries the
    arrival timing; the remainder issue immediately after it.  Untagged
    operations (``batch_id is None``) are their own logical operation —
    statistics code must not treat their zero think time as an arrival
    measurement when they belong to a batch, which is exactly what
    :func:`repro.workloads.stats.workload_stats` uses these fields for.
    """

    client: ProcessId
    kind: str  # "read" | "write"
    value: Optional[str]
    issue_after: VirtualTime = 0.0  # think time relative to the previous op
    key: Optional[str] = None  # logical datum touched (workload metadata)
    issue_at: Optional[VirtualTime] = None  # absolute issue time (open-loop)
    batch_id: Optional[int] = None  # logical-operation id (per client)
    batch_index: int = 0  # position within the logical operation's batch


@dataclass
class Workload:
    """A per-client sequence of operations (clients run their sequences concurrently).

    Per-client access goes through a single-pass index built lazily on first
    use and refreshed when the operation count changes, so ``for_client`` /
    ``clients`` stay O(total operations) overall instead of re-scanning the
    whole list once per client.
    """

    operations: List[Operation] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index: Optional[Dict[ProcessId, List[Operation]]] = None
        self._indexed_count = -1

    def _by_client(self) -> Dict[ProcessId, List[Operation]]:
        if self._index is None or self._indexed_count != len(self.operations):
            index: Dict[ProcessId, List[Operation]] = {}
            for op in self.operations:
                index.setdefault(op.client, []).append(op)
            self._index = index
            self._indexed_count = len(self.operations)
        return self._index

    def for_client(self, client: ProcessId) -> List[Operation]:
        return list(self._by_client().get(client, ()))

    def clients(self) -> Sequence[ProcessId]:
        # dict preserves insertion order, so clients come out in first-seen order.
        return tuple(self._by_client())

    def counts(self) -> dict:
        reads = sum(1 for op in self.operations if op.kind == "read")
        return {"reads": reads, "writes": len(self.operations) - reads,
                "total": len(self.operations)}


def uniform_workload(
    clients: Sequence[ProcessId],
    operations_per_client: int,
    read_ratio: float = 0.5,
    mean_think_time: VirtualTime = 1.0,
    seed: int = 0,
) -> Workload:
    """A uniformly random mix of reads and writes with exponential think times.

    The first operation of the first client is always a write, so reads never
    observe the "unwritten" initial value.
    """
    if not clients:
        raise ConfigurationError("need at least one client")
    if operations_per_client < 1:
        raise ConfigurationError("need at least one operation per client")
    if not 0.0 <= read_ratio <= 1.0:
        raise ConfigurationError("read_ratio must be within [0, 1]")
    rng = random.Random(seed)
    operations: List[Operation] = []
    value_counter = 0
    for client_index, client in enumerate(clients):
        for op_index in range(operations_per_client):
            force_write = client_index == 0 and op_index == 0
            is_read = (not force_write) and rng.random() < read_ratio
            think = rng.expovariate(1.0 / mean_think_time) if mean_think_time > 0 else 0.0
            if is_read:
                operations.append(
                    Operation(client=client, kind="read", value=None, issue_after=think)
                )
            else:
                value_counter += 1
                operations.append(
                    Operation(
                        client=client,
                        kind="write",
                        value=f"value-{client}-{value_counter}",
                        issue_after=think,
                    )
                )
    return Workload(operations=operations)
