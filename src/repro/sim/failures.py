"""Failure schedules: crashes at given virtual times.

Slowdowns are expressed through :class:`repro.net.latency.SlowdownLatency`
(they are a property of the links, not an event), so this module only deals
with crash-stop events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.simloop import SimLoop
from repro.types import ProcessId, VirtualTime

__all__ = ["CrashEvent", "FailureSchedule"]


@dataclass(frozen=True)
class CrashEvent:
    """Crash ``process`` at virtual time ``at``."""

    process: ProcessId
    at: VirtualTime


@dataclass
class FailureSchedule:
    """A set of crash events that can be armed on a network."""

    events: List[CrashEvent] = field(default_factory=list)

    def crash(self, process: ProcessId, at: VirtualTime) -> "FailureSchedule":
        """Add a crash event (fluent style)."""
        if at < 0:
            raise ConfigurationError("crash times must be non-negative")
        self.events.append(CrashEvent(process=process, at=at))
        return self

    def crashed_by(self, time: VirtualTime) -> Sequence[ProcessId]:
        return tuple(event.process for event in self.events if event.at <= time)

    def arm(self, loop: SimLoop, network: Network) -> None:
        """Schedule every crash event on the loop."""
        for event in self.events:
            loop.call_at(event.at, lambda pid=event.process: network.crash(pid))

    def max_simultaneous_crashes(self) -> int:
        return len({event.process for event in self.events})
