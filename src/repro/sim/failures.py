"""Failure schedules: crashes, recoveries and partition windows in virtual time.

A :class:`FailureSchedule` is the runtime form of the declarative ``faults``
spec section: a set of timed fault-injection events that :meth:`FailureSchedule.
arm` schedules on the simulation loop before a run starts.

Three event kinds are supported:

* :class:`CrashEvent` — crash-stop a process at a virtual time;
* :class:`RecoverEvent` — un-crash it later (the crash-recovery model:
  the process rejoins with its state intact, traffic during the outage was
  dropped);
* :class:`PartitionWindow` — split the processes into groups at ``at`` and
  heal at ``heal_at`` (or never, when ``heal_at`` is ``None``); messages
  crossing the boundary are held and released in order on heal, so links
  stay reliable.

Slowdowns are expressed through :class:`repro.net.latency.SlowdownLatency`
(they are a property of the links, not an event), so they stay out of this
module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.net.simloop import SimLoop
from repro.types import ProcessId, VirtualTime

__all__ = [
    "CrashEvent",
    "RecoverEvent",
    "PartitionWindow",
    "FailureSchedule",
    "windows_overlap",
]


def windows_overlap(
    first_at: VirtualTime,
    first_heal_at: Optional[VirtualTime],
    second_at: VirtualTime,
    second_heal_at: Optional[VirtualTime],
) -> bool:
    """Whether two ``[at, heal_at)`` windows are live at the same time.

    ``heal_at=None`` means the window never closes.  The single source of
    the overlap rule: both the runtime :class:`PartitionWindow` and the
    declarative ``PartitionSpec`` section delegate here, so the spec-level
    validation and the schedule-level enforcement cannot drift.
    """
    first_end = float("inf") if first_heal_at is None else first_heal_at
    second_end = float("inf") if second_heal_at is None else second_heal_at
    return first_at < second_end and second_at < first_end


@dataclass(frozen=True)
class CrashEvent:
    """Crash ``process`` at virtual time ``at``."""

    process: ProcessId
    at: VirtualTime


@dataclass(frozen=True)
class RecoverEvent:
    """Un-crash ``process`` at virtual time ``at`` (crash-recovery model)."""

    process: ProcessId
    at: VirtualTime


@dataclass(frozen=True)
class PartitionWindow:
    """Partition the network into ``groups`` during ``[at, heal_at)``.

    Processes not listed in any group form an implicit extra group (so
    clients omitted from every group are cut off from all of them).  An
    open-ended window (``heal_at is None``) never heals.
    """

    groups: Tuple[Tuple[ProcessId, ...], ...]
    at: VirtualTime
    heal_at: Optional[VirtualTime] = None

    def overlaps(self, other: "PartitionWindow") -> bool:
        """Whether two windows are live at the same time (heal() is global)."""
        return windows_overlap(self.at, self.heal_at, other.at, other.heal_at)


@dataclass
class FailureSchedule:
    """A set of timed fault-injection events that can be armed on a network."""

    events: List[CrashEvent] = field(default_factory=list)
    recoveries: List[RecoverEvent] = field(default_factory=list)
    partitions: List[PartitionWindow] = field(default_factory=list)

    def crash(self, process: ProcessId, at: VirtualTime) -> "FailureSchedule":
        """Add a crash event (fluent style)."""
        if at < 0:
            raise ConfigurationError("crash times must be non-negative")
        self.events.append(CrashEvent(process=process, at=at))
        return self

    def recover(self, process: ProcessId, at: VirtualTime) -> "FailureSchedule":
        """Add a recovery event (fluent style)."""
        if at < 0:
            raise ConfigurationError("recovery times must be non-negative")
        self.recoveries.append(RecoverEvent(process=process, at=at))
        return self

    def outage(
        self,
        process: ProcessId,
        at: VirtualTime,
        until: Optional[VirtualTime] = None,
    ) -> "FailureSchedule":
        """Add a crash at ``at`` with a matching recovery at ``until``.

        ``until=None`` is a permanent crash.  An outage is the self-contained
        form a single sweep axis can carry: unlike independent crash and
        recovery lists, one ``(process, at, until)`` triple is always a valid
        timeline, which is what lets chaos campaigns sample fault windows as
        one Latin-hypercube dimension.
        """
        if until is not None and until <= at:
            raise ConfigurationError(
                f"outage until={until} must be after at={at}"
            )
        self.crash(process, at)
        if until is not None:
            self.recover(process, until)
        return self

    def partition_window(
        self,
        groups: Iterable[Iterable[ProcessId]],
        at: VirtualTime,
        heal_at: Optional[VirtualTime] = None,
    ) -> "FailureSchedule":
        """Add a partition window (fluent style).

        Windows must not overlap in time: :meth:`Network.heal` removes *the*
        partition, so two live windows would heal each other.
        """
        if at < 0:
            raise ConfigurationError("partition times must be non-negative")
        if heal_at is not None and heal_at <= at:
            raise ConfigurationError(
                f"partition heal_at={heal_at} must be after at={at}"
            )
        window = PartitionWindow(
            groups=tuple(tuple(group) for group in groups), at=at, heal_at=heal_at
        )
        if not window.groups:
            raise ConfigurationError("a partition window needs at least one group")
        for existing in self.partitions:
            if window.overlaps(existing):
                raise ConfigurationError(
                    f"partition windows overlap: [{existing.at}, "
                    f"{existing.heal_at}) and [{window.at}, {window.heal_at})"
                )
        self.partitions.append(window)
        return self

    def crashed_by(self, time: VirtualTime) -> Sequence[ProcessId]:
        """Processes crashed at or before ``time`` and not yet recovered.

        Crash and recovery events are replayed in time order (a crash at the
        same instant as a recovery wins), matching what :meth:`arm` produces
        on the simulation — so crash → recover → crash leaves the process
        down.
        """
        # Replay: recoveries sort before crashes at equal times, so a
        # same-instant crash is applied last and wins.
        timeline = sorted(
            [(event.at, 0, event.process) for event in self.recoveries
             if event.at <= time]
            + [(event.at, 1, event.process) for event in self.events
               if event.at <= time]
        )
        down = set()
        for _, is_crash, process in timeline:
            if is_crash:
                down.add(process)
            else:
                down.discard(process)
        reported = []
        for event in self.events:
            if event.at <= time and event.process in down:
                reported.append(event.process)
                down.discard(event.process)  # report each process once
        return tuple(reported)

    def arm(self, loop: SimLoop, network: Network) -> None:
        """Schedule every fault-injection event on the loop.

        Events are scheduled in chronological order with recoveries before
        crashes (and heals before partitions) at equal times, so same-time
        loop events — which run in scheduling order — resolve exactly the
        way :meth:`crashed_by` replays them: a same-instant crash+recover
        leaves the process down, and a window healing at the instant the
        next one starts cannot tear the new partition down.
        """
        fates = sorted(
            [(event.at, 0, event.process) for event in self.recoveries]
            + [(event.at, 1, event.process) for event in self.events],
            key=lambda fate: fate[:2],
        )
        for at, is_crash, process in fates:
            if is_crash:
                loop.call_at(at, lambda pid=process: network.crash(pid))
            else:
                loop.call_at(at, lambda pid=process: network.recover(pid))
        boundaries = []
        for window in self.partitions:
            boundaries.append((window.at, 1, window.groups))
            if window.heal_at is not None:
                boundaries.append((window.heal_at, 0, ()))
        for at, is_partition, groups in sorted(boundaries, key=lambda b: b[:2]):
            if is_partition:
                loop.call_at(at, lambda g=groups: network.partition(g))
            else:
                loop.call_at(at, network.heal)

    def max_simultaneous_crashes(self) -> int:
        """Peak number of distinct processes down at once (recoveries counted)."""
        times = sorted(
            {event.at for event in self.events}
            | {event.at for event in self.recoveries}
        )
        return max((len(set(self.crashed_by(at))) for at in times), default=0)
