"""Latency summaries and per-shard load statistics for the runner and benchmarks.

Two families of metrics live here:

* :class:`LatencySummary` / :func:`summarize` / :func:`percentile` — the
  latency statistics every run reports, sharded or not;
* :class:`ShardLoadSummary` / :class:`ImbalanceSummary` and their builders
  :func:`summarize_shard_loads` / :func:`imbalance_summary` — the per-shard
  breakdown a key-sharded run adds: how many operations each shard served,
  its latency summaries, and how far the load distribution sits from the
  uniform ideal (hottest-shard share, max/mean ratio, variance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "LatencySummary",
    "percentile",
    "summarize",
    "ShardLoadSummary",
    "ImbalanceSummary",
    "summarize_shard_loads",
    "imbalance_summary",
]


def _percentile_sorted(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile over an already-sorted sample list."""
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1])."""
    if not samples:
        raise ConfigurationError("cannot take a percentile of no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must be within [0, 1]")
    return _percentile_sorted(sorted(samples), fraction)


@dataclass(frozen=True)
class LatencySummary:
    """Mean / median / p95 / p99 / max of a latency sample set."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    maximum: float

    def as_row(self) -> str:
        return (
            f"n={self.count:5d}  mean={self.mean:8.3f}  median={self.median:8.3f}  "
            f"p95={self.p95:8.3f}  p99={self.p99:8.3f}  max={self.maximum:8.3f}"
        )

    def as_dict(self) -> Dict[str, float]:
        """The JSON-serialisable form every result dict uses (``max`` key)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(samples: Iterable[float]) -> LatencySummary:
    """Summarise a collection of latency samples.

    The samples are sorted exactly once and every percentile reads the same
    sorted list (the naive form re-sorts per percentile).  The mean is summed
    in the *original* sample order before sorting, so results stay
    bit-identical to historical baselines (float addition is order-sensitive).
    """
    values: List[float] = list(samples)
    if not values:
        raise ConfigurationError("cannot summarise an empty sample set")
    count = len(values)
    total = sum(values)
    values.sort()
    return LatencySummary(
        count=count,
        mean=total / count,
        median=_percentile_sorted(values, 0.5),
        p95=_percentile_sorted(values, 0.95),
        p99=_percentile_sorted(values, 0.99),
        maximum=values[-1],
    )


# ---------------------------------------------------------------------------
# Per-shard load statistics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardLoadSummary:
    """What one shard served during a run: op counts and latency summaries."""

    shard: int
    operations: int
    reads: int
    writes: int
    read_latency: Optional[LatencySummary]
    write_latency: Optional[LatencySummary]

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable view (used by the declarative result dicts)."""
        return {
            "shard": self.shard,
            "operations": self.operations,
            "reads": self.reads,
            "writes": self.writes,
            "read_latency": self.read_latency.as_dict() if self.read_latency else None,
            "write_latency": self.write_latency.as_dict() if self.write_latency else None,
        }


@dataclass(frozen=True)
class ImbalanceSummary:
    """How far a per-shard load distribution sits from the uniform ideal.

    ``hottest_share`` is the fraction of all operations the most loaded
    shard served; under perfectly uniform routing it approaches
    ``1 / shards`` (the ``fair_share``), and under skewed keys it grows
    towards the hottest key's traffic share.  ``imbalance_ratio`` is the
    classical max/mean load factor (1.0 = perfectly balanced), and
    ``load_variance`` / ``load_cv`` quantify the spread across shards
    (population variance and coefficient of variation of per-shard counts).
    """

    shards: int
    total_operations: int
    max_load: int
    mean_load: float
    hottest_shard: int
    hottest_share: float
    fair_share: float
    imbalance_ratio: float
    load_variance: float
    load_cv: float

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable view (used by the declarative result dicts)."""
        return {
            "shards": self.shards,
            "total_operations": self.total_operations,
            "max_load": self.max_load,
            "mean_load": self.mean_load,
            "hottest_shard": self.hottest_shard,
            "hottest_share": self.hottest_share,
            "fair_share": self.fair_share,
            "imbalance_ratio": self.imbalance_ratio,
            "load_variance": self.load_variance,
            "load_cv": self.load_cv,
        }


def imbalance_summary(loads: Sequence[int]) -> ImbalanceSummary:
    """Summarise a per-shard operation-count vector (index = shard id).

    Zero-operation runs are legal (e.g. a workload truncated by
    ``max_time``): every share degrades to 0 and the ratios to 1.0/0.0, so
    callers never divide by zero.

    Ties for the hottest shard resolve to the *lowest* index: the key is
    ``(loads[index], -index)``, so among equal loads the largest ``-index``
    — i.e. the smallest shard id — wins.  This keeps ``hottest_shard``
    deterministic for flat load vectors (``[5, 5, 5]`` → shard 0), which
    reports and baselines rely on.
    """
    if not loads:
        raise ConfigurationError("need at least one shard to summarise")
    shards = len(loads)
    total = sum(loads)
    mean = total / shards
    max_load = max(loads)
    hottest = max(range(shards), key=lambda index: (loads[index], -index))
    variance = sum((load - mean) ** 2 for load in loads) / shards
    return ImbalanceSummary(
        shards=shards,
        total_operations=total,
        max_load=max_load,
        mean_load=mean,
        hottest_shard=hottest,
        hottest_share=max_load / total if total else 0.0,
        fair_share=1.0 / shards,
        imbalance_ratio=max_load / mean if mean else 1.0,
        load_variance=variance,
        load_cv=(variance ** 0.5) / mean if mean else 0.0,
    )


def summarize_shard_loads(
    placements: Iterable[Tuple[int, str, float]],
    shards: int,
) -> Tuple[Tuple[ShardLoadSummary, ...], ImbalanceSummary]:
    """Build the per-shard breakdown from ``(shard, kind, latency)`` samples.

    ``placements`` is one entry per completed operation (the runner extracts
    them from the sharded clients' histories); shards that served nothing
    still appear with zero counts, so load vectors across runs line up
    index-for-index.
    """
    if shards < 1:
        raise ConfigurationError(f"need at least one shard, got {shards}")
    reads: List[List[float]] = [[] for _ in range(shards)]
    writes: List[List[float]] = [[] for _ in range(shards)]
    for shard, kind, latency in placements:
        if not 0 <= shard < shards:
            raise ConfigurationError(
                f"operation placed on shard {shard}, but only {shards} shard(s) exist"
            )
        (reads if kind == "read" else writes)[shard].append(latency)
    summaries = tuple(
        ShardLoadSummary(
            shard=shard,
            operations=len(reads[shard]) + len(writes[shard]),
            reads=len(reads[shard]),
            writes=len(writes[shard]),
            read_latency=summarize(reads[shard]) if reads[shard] else None,
            write_latency=summarize(writes[shard]) if writes[shard] else None,
        )
        for shard in range(shards)
    )
    loads = [summary.operations for summary in summaries]
    return summaries, imbalance_summary(loads)
