"""Latency summaries used by the runner and the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError

__all__ = ["LatencySummary", "percentile", "summarize"]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1])."""
    if not samples:
        raise ConfigurationError("cannot take a percentile of no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must be within [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class LatencySummary:
    """Mean / median / p95 / p99 / max of a latency sample set."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    maximum: float

    def as_row(self) -> str:
        return (
            f"n={self.count:5d}  mean={self.mean:8.3f}  median={self.median:8.3f}  "
            f"p95={self.p95:8.3f}  p99={self.p99:8.3f}  max={self.maximum:8.3f}"
        )


def summarize(samples: Iterable[float]) -> LatencySummary:
    """Summarise a collection of latency samples."""
    values: List[float] = list(samples)
    if not values:
        raise ConfigurationError("cannot summarise an empty sample set")
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        median=percentile(values, 0.5),
        p95=percentile(values, 0.95),
        p99=percentile(values, 0.99),
        maximum=max(values),
    )
