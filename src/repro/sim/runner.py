"""Run a workload against a cluster and collect metrics.

The runner is shard-aware: against a plain :class:`~repro.sim.cluster.
Cluster` it drives the single register exactly as before, while against a
:class:`~repro.sim.cluster.ShardedCluster` (whose clients are keyed
:class:`~repro.storage.sharded.ShardedStore` facades) it threads every
operation's ``key`` through to the owning shard and extends the
:class:`RunReport` with a per-shard load/latency breakdown plus an
:class:`~repro.sim.metrics.ImbalanceSummary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.sim.cluster import Cluster, ShardedCluster
from repro.sim.failures import FailureSchedule
from repro.sim.metrics import (
    ImbalanceSummary,
    LatencySummary,
    ShardLoadSummary,
    summarize,
    summarize_shard_loads,
)
from repro.sim.workload import Workload
from repro.net.simloop import gather
from repro.types import ProcessId, VirtualTime

__all__ = ["RunReport", "run_workload"]


@dataclass
class RunReport:
    """The outcome of one workload run.

    ``shards`` and ``imbalance`` are populated only for sharded runs: one
    :class:`~repro.sim.metrics.ShardLoadSummary` per shard (including shards
    that served nothing) and the load-imbalance summary over the per-shard
    operation counts.
    """

    flavour: str
    duration: VirtualTime
    read_latency: Optional[LatencySummary]
    write_latency: Optional[LatencySummary]
    messages_sent: int
    restarts: int
    operations: int
    shards: Optional[Tuple[ShardLoadSummary, ...]] = None
    imbalance: Optional[ImbalanceSummary] = None

    def describe(self) -> str:
        """A human-readable multi-line summary (used by the examples)."""
        lines = [
            f"cluster flavour : {self.flavour}",
            f"virtual duration: {self.duration:.2f}",
            f"operations      : {self.operations} ({self.restarts} restarts)",
            f"messages sent   : {self.messages_sent}",
        ]
        if self.read_latency is None and self.write_latency is None:
            lines.append("latency         : (no completed operations)")
        if self.read_latency is not None:
            lines.append(f"read  latency   : {self.read_latency.as_row()}")
        if self.write_latency is not None:
            lines.append(f"write latency   : {self.write_latency.as_row()}")
        if self.shards is not None and self.imbalance is not None:
            lines.append(
                f"shards          : {self.imbalance.shards} "
                f"(hottest #{self.imbalance.hottest_shard} served "
                f"{self.imbalance.hottest_share:.0%}, fair share "
                f"{self.imbalance.fair_share:.0%}, max/mean "
                f"{self.imbalance.imbalance_ratio:.2f})"
            )
            for shard in self.shards:
                lines.append(
                    f"  shard {shard.shard:3d}     : {shard.operations:5d} ops "
                    f"({shard.reads} reads / {shard.writes} writes)"
                )
        return "\n".join(lines)


def run_workload(
    cluster: Union[Cluster, ShardedCluster],
    workload: Workload,
    failures: Optional[FailureSchedule] = None,
    max_time: Optional[VirtualTime] = None,
) -> RunReport:
    """Execute ``workload`` on ``cluster`` and summarise per-kind latencies.

    Every client executes its operation sequence concurrently (operations
    within one client stay sequential, matching the paper's "processes are
    sequential" model).  Crash events from ``failures`` are armed before the
    run starts.

    Operations carrying an absolute ``issue_at`` are driven open-loop: the
    client sleeps until that virtual time (measured from the run's start) and
    issues immediately if it is already late — arrival times do not stretch
    when the store slows down, only queueing delay does.

    Keyed clients (``client.keyed`` is true, e.g. the sharded store facade)
    receive each operation's ``key`` so they can route it; single-register
    clients ignore keys, which then only shape contention timing.
    """
    if max_time is not None and max_time <= 0:
        raise ConfigurationError(f"max_time must be positive, got {max_time}")
    unknown = set(workload.clients()) - set(cluster.clients)
    if unknown:
        raise ConfigurationError(f"workload references unknown clients: {sorted(unknown)}")
    if failures is not None:
        failures.arm(cluster.loop, cluster.network)

    started_at = cluster.loop.now
    cluster.network.reset_stats()

    async def run_client(client_pid: ProcessId) -> None:
        client = cluster.clients[client_pid]
        keyed = getattr(client, "keyed", False)
        for operation in workload.for_client(client_pid):
            if operation.issue_at is not None:
                delay = started_at + operation.issue_at - cluster.loop.now
                if delay > 0:
                    await cluster.loop.sleep(delay)
            elif operation.issue_after > 0:
                await cluster.loop.sleep(operation.issue_after)
            if operation.kind == "read":
                if keyed:
                    await client.read(key=operation.key)
                else:
                    await client.read()
            else:
                if keyed:
                    await client.write(operation.value, key=operation.key)
                else:
                    await client.write(operation.value)

    tasks = [run_client(client_pid) for client_pid in workload.clients()]
    cluster.loop.run_until_complete(gather(cluster.loop, tasks), max_time=max_time)

    read_samples: List[float] = []
    write_samples: List[float] = []
    restarts = 0
    operations = 0
    placements: List[Tuple[int, str, float]] = []
    for client in cluster.clients.values():
        for record in client.history:
            operations += 1
            restarts += record.restarts
            if record.kind == "read":
                read_samples.append(record.latency)
            else:
                write_samples.append(record.latency)
        for entry in getattr(client, "sharded_history", ()):
            placements.append((entry.shard, entry.record.kind, entry.record.latency))

    shard_summaries: Optional[Tuple[ShardLoadSummary, ...]] = None
    imbalance: Optional[ImbalanceSummary] = None
    shard_count = getattr(cluster, "shard_count", None)
    if shard_count is not None:
        shard_summaries, imbalance = summarize_shard_loads(placements, shard_count)

    return RunReport(
        flavour=cluster.flavour,
        duration=cluster.loop.now - started_at,
        read_latency=summarize(read_samples) if read_samples else None,
        write_latency=summarize(write_samples) if write_samples else None,
        messages_sent=cluster.network.messages_sent,
        restarts=restarts,
        operations=operations,
        shards=shard_summaries,
        imbalance=imbalance,
    )
