"""Run a workload against a cluster, wire monitoring, and collect metrics.

The runner is shard-aware: against a plain :class:`~repro.sim.cluster.
Cluster` it drives the single register exactly as before, while against a
:class:`~repro.sim.cluster.ShardedCluster` (whose clients are keyed
:class:`~repro.storage.sharded.ShardedStore` facades) it threads every
operation's ``key`` through to the owning shard and extends the
:class:`RunReport` with a per-shard load/latency breakdown plus an
:class:`~repro.sim.metrics.ImbalanceSummary`.

:func:`install_monitoring` is the runtime half of the declarative
``MonitoringSpec`` section: it builds the probe → policy → controller
feedback loop out of the existing :class:`~repro.monitoring.monitor.
LatencyMonitor` / :mod:`~repro.monitoring.policy` /
:class:`~repro.monitoring.controller.WeightController` objects — one
independent loop per shard, or one global machine-level loop — and returns
a :class:`MonitoringHarness` the result dict reports from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.monitoring.controller import WeightController
from repro.monitoring.loop import PolicyFn, install_monitoring_control
from repro.monitoring.monitor import (
    PING,
    LatencyMonitor,
    install_probe_responder,
)
from repro.monitoring.policy import proportional_inverse_latency_weights
from repro.net.process import Process
from repro.sim.cluster import Cluster, ShardedCluster
from repro.sim.failures import FailureSchedule
from repro.sim.metrics import (
    ImbalanceSummary,
    LatencySummary,
    ShardLoadSummary,
    summarize,
    summarize_shard_loads,
)
from repro.sim.workload import Workload
from repro.net.simloop import gather
from repro.storage.sharded import base_process_name, shard_process_name
from repro.types import ProcessId, VirtualTime, Weight

__all__ = ["RunReport", "run_workload", "MonitoringHarness", "install_monitoring"]


@dataclass
class RunReport:
    """The outcome of one workload run.

    ``shards`` and ``imbalance`` are populated only for sharded runs: one
    :class:`~repro.sim.metrics.ShardLoadSummary` per shard (including shards
    that served nothing) and the load-imbalance summary over the per-shard
    operation counts.
    """

    flavour: str
    duration: VirtualTime
    read_latency: Optional[LatencySummary]
    write_latency: Optional[LatencySummary]
    messages_sent: int
    restarts: int
    operations: int
    shards: Optional[Tuple[ShardLoadSummary, ...]] = None
    imbalance: Optional[ImbalanceSummary] = None
    #: Snapshot of the ambient observer's metrics registry at the end of the
    #: run (see :mod:`repro.obs`); ``None`` when observability is disabled.
    metrics: Optional[Dict[str, Any]] = None

    def describe(self) -> str:
        """A human-readable multi-line summary (used by the examples)."""
        lines = [
            f"cluster flavour : {self.flavour}",
            f"virtual duration: {self.duration:.2f}",
            f"operations      : {self.operations} ({self.restarts} restarts)",
            f"messages sent   : {self.messages_sent}",
        ]
        if self.read_latency is None and self.write_latency is None:
            lines.append("latency         : (no completed operations)")
        if self.read_latency is not None:
            lines.append(f"read  latency   : {self.read_latency.as_row()}")
        if self.write_latency is not None:
            lines.append(f"write latency   : {self.write_latency.as_row()}")
        if self.shards is not None and self.imbalance is not None:
            lines.append(
                f"shards          : {self.imbalance.shards} "
                f"(hottest #{self.imbalance.hottest_shard} served "
                f"{self.imbalance.hottest_share:.0%}, fair share "
                f"{self.imbalance.fair_share:.0%}, max/mean "
                f"{self.imbalance.imbalance_ratio:.2f})"
            )
            for shard in self.shards:
                lines.append(
                    f"  shard {shard.shard:3d}     : {shard.operations:5d} ops "
                    f"({shard.reads} reads / {shard.writes} writes)"
                )
        return "\n".join(lines)


@dataclass
class MonitoringHarness:
    """The installed monitoring loop(s): controllers grouped by shard index.

    Single-register clusters use the single group ``0``.  The harness is
    what a declarative run's ``monitoring`` result block reports from.
    """

    controllers: Dict[int, List[WeightController]]
    rounds: int

    def transfers_attempted(self) -> Dict[int, int]:
        """Controller transfers attempted, per shard index."""
        return {
            index: sum(
                1
                for controller in controllers
                for step in controller.reports
                if step.attempted
            )
            for index, controllers in sorted(self.controllers.items())
        }

    def rounds_completed(self) -> int:
        """Control rounds that actually executed (every controller steps once
        per round, so the longest report list counts the completed rounds —
        fewer than ``rounds`` when the run ended before the loop finished)."""
        return max(
            (
                len(controller.reports)
                for controllers in self.controllers.values()
                for controller in controllers
            ),
            default=0,
        )

    def as_dict(self, sharded: bool = False) -> Dict[str, Any]:
        """JSON-serialisable summary for the run result dict."""
        by_shard = self.transfers_attempted()
        summary: Dict[str, Any] = {
            "rounds": self.rounds,
            "rounds_completed": self.rounds_completed(),
            "transfers_attempted": sum(by_shard.values()),
        }
        if sharded:
            summary["transfers_attempted_by_shard"] = {
                str(index): count for index, count in by_shard.items()
            }
        return summary


def install_monitoring(
    cluster: Union[Cluster, ShardedCluster],
    *,
    interval: VirtualTime,
    rounds: int,
    window: int = 32,
    ewma_alpha: float = 0.3,
    tolerance: Weight = 0.05,
    max_step: Weight = 0.3,
    scope: str = "per-shard",
    prober: ProcessId = "mon",
    policy: PolicyFn = proportional_inverse_latency_weights,
) -> MonitoringHarness:
    """Wire the probe/policy/controller loop(s) into ``cluster`` and start them.

    On a single-register cluster one loop runs under the prober name as
    given.  On a sharded cluster ``scope`` selects the topology:

    * ``per-shard`` — one fully independent loop per shard (prober
      ``mon#k``, own monitor, own controllers; nothing shared across
      shards), the wiring the ``sharded-hotspot-reassignment`` scenario
      pioneered;
    * ``global`` — one prober and one *machine-level* monitor: each round
      pings every shard's instances, folds each canonical machine's mean
      instance latency into the monitor, and drives every shard's
      controllers with the same canonical target map.

    Must be called before the workload starts so the control task's position
    in the event order is deterministic.
    """
    shard_groups = getattr(cluster, "shards", None)
    if shard_groups is None:
        controllers = install_monitoring_control(
            cluster.loop,
            cluster.network,
            cluster.servers,
            cluster.config,
            prober_pid=prober,
            rounds=rounds,
            interval=interval,
            tolerance=tolerance,
            max_step=max_step,
            window=window,
            ewma_alpha=ewma_alpha,
            policy=policy,
        )
        return MonitoringHarness(controllers={0: controllers}, rounds=rounds)
    if scope == "per-shard":
        return MonitoringHarness(
            controllers={
                group.index: install_monitoring_control(
                    cluster.loop,
                    cluster.network,
                    group.servers,
                    group.config,
                    prober_pid=f"{prober}#{group.index}",
                    rounds=rounds,
                    interval=interval,
                    tolerance=tolerance,
                    max_step=max_step,
                    window=window,
                    ewma_alpha=ewma_alpha,
                    policy=policy,
                )
                for group in shard_groups
            },
            rounds=rounds,
        )
    if scope != "global":
        raise ConfigurationError(
            f"unknown monitoring scope {scope!r}; expected per-shard or global"
        )
    return _install_global_monitoring(
        cluster,
        interval=interval,
        rounds=rounds,
        window=window,
        ewma_alpha=ewma_alpha,
        tolerance=tolerance,
        max_step=max_step,
        prober=prober,
        policy=policy,
    )


def _install_global_monitoring(
    cluster: ShardedCluster,
    *,
    interval: VirtualTime,
    rounds: int,
    window: int,
    ewma_alpha: float,
    tolerance: Weight,
    max_step: Weight,
    prober: ProcessId,
    policy: PolicyFn,
) -> MonitoringHarness:
    """One machine-level monitor driving every shard's controllers."""
    loop = cluster.loop
    canonical = cluster.config  # the per-shard template with canonical names
    for group in cluster.shards:
        for server in group.servers.values():
            install_probe_responder(server)
    prober_process = Process(prober, cluster.network)
    monitor = LatencyMonitor(canonical.servers, window=window, ewma_alpha=ewma_alpha)
    controllers = {
        group.index: [
            WeightController(server, tolerance=tolerance, max_step=max_step)
            for server in group.servers.values()
        ]
        for group in cluster.shards
    }
    instance_names = tuple(
        pid for group in cluster.shards for pid in group.config.servers
    )

    async def control_loop() -> None:
        obs = cluster.network.obs
        for index in range(rounds):
            await loop.sleep(interval)
            if obs is not None:
                obs.control_round(prober, index, loop.now)
            started = loop.now
            # Wait for every instance still alive — re-counted on each
            # reply, exactly like LatencyMonitor.probe: a slowed machine's
            # late replies ARE the signal (a short timeout would blind the
            # monitor to them), while a crashed instance's replies never
            # come (a fixed-count wait would stall the loop forever).
            collector = prober_process.request_all(instance_names, PING, {})
            await collector.wait_until(
                lambda replies: len(replies) >= sum(
                    1
                    for pid in instance_names
                    if not cluster.network.is_crashed(pid)
                ),
                name="alive-replies",
            )
            samples: Dict[ProcessId, List[VirtualTime]] = {}
            for reply in collector.responses:
                machine = base_process_name(reply.sender)
                samples.setdefault(machine, []).append(reply.delivered_at - started)
            for machine in sorted(samples):
                values = samples[machine]
                monitor.record(machine, sum(values) / len(values))
            canonical_targets = policy(monitor.summary(default=1.0), canonical)
            for group in cluster.shards:
                targets = {
                    shard_process_name(pid, group.index): weight
                    for pid, weight in canonical_targets.items()
                }
                for controller in controllers[group.index]:
                    controller.set_targets(targets)
                    await controller.step()

    loop.create_task(control_loop(), name=f"monitoring-control:{prober}")
    return MonitoringHarness(controllers=controllers, rounds=rounds)


def run_workload(
    cluster: Union[Cluster, ShardedCluster],
    workload: Workload,
    failures: Optional[FailureSchedule] = None,
    max_time: Optional[VirtualTime] = None,
) -> RunReport:
    """Execute ``workload`` on ``cluster`` and summarise per-kind latencies.

    Every client executes its operation sequence concurrently (operations
    within one client stay sequential, matching the paper's "processes are
    sequential" model).  Crash events from ``failures`` are armed before the
    run starts.

    Operations carrying an absolute ``issue_at`` are driven open-loop: the
    client sleeps until that virtual time (measured from the run's start) and
    issues immediately if it is already late — arrival times do not stretch
    when the store slows down, only queueing delay does.

    Keyed clients (``client.keyed`` is true, e.g. the sharded store facade)
    receive each operation's ``key`` so they can route it; single-register
    clients ignore keys, which then only shape contention timing.
    """
    if max_time is not None and max_time <= 0:
        raise ConfigurationError(f"max_time must be positive, got {max_time}")
    unknown = set(workload.clients()) - set(cluster.clients)
    if unknown:
        raise ConfigurationError(f"workload references unknown clients: {sorted(unknown)}")
    if failures is not None:
        failures.arm(cluster.loop, cluster.network)

    started_at = cluster.loop.now
    cluster.network.reset_stats()

    async def run_client(client_pid: ProcessId) -> None:
        client = cluster.clients[client_pid]
        keyed = getattr(client, "keyed", False)
        for operation in workload.for_client(client_pid):
            if operation.issue_at is not None:
                delay = started_at + operation.issue_at - cluster.loop.now
                if delay > 0:
                    await cluster.loop.sleep(delay)
            elif operation.issue_after > 0:
                await cluster.loop.sleep(operation.issue_after)
            if operation.kind == "read":
                if keyed:
                    await client.read(key=operation.key)
                else:
                    await client.read()
            else:
                if keyed:
                    await client.write(operation.value, key=operation.key)
                else:
                    await client.write(operation.value)

    tasks = [run_client(client_pid) for client_pid in workload.clients()]
    cluster.loop.run_until_complete(gather(cluster.loop, tasks), max_time=max_time)

    read_samples: List[float] = []
    write_samples: List[float] = []
    restarts = 0
    operations = 0
    placements: List[Tuple[int, str, float]] = []
    for client in cluster.clients.values():
        for record in client.history:
            operations += 1
            restarts += record.restarts
            if record.kind == "read":
                read_samples.append(record.latency)
            else:
                write_samples.append(record.latency)
        for entry in getattr(client, "sharded_history", ()):
            placements.append((entry.shard, entry.record.kind, entry.record.latency))

    shard_summaries: Optional[Tuple[ShardLoadSummary, ...]] = None
    imbalance: Optional[ImbalanceSummary] = None
    shard_count = getattr(cluster, "shard_count", None)
    if shard_count is not None:
        shard_summaries, imbalance = summarize_shard_loads(placements, shard_count)

    # The observer the cluster captured at construction time (if any); the
    # registry keeps accumulating afterwards, this is a point-in-time copy.
    obs = cluster.network.obs
    metrics_snapshot = (
        obs.metrics.as_dict() if obs is not None and obs.metrics is not None else None
    )

    return RunReport(
        flavour=cluster.flavour,
        duration=cluster.loop.now - started_at,
        read_latency=summarize(read_samples) if read_samples else None,
        write_latency=summarize(write_samples) if write_samples else None,
        messages_sent=cluster.network.messages_sent,
        restarts=restarts,
        operations=operations,
        shards=shard_summaries,
        imbalance=imbalance,
        metrics=metrics_snapshot,
    )
