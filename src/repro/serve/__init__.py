"""repro.serve — the experiment lab as a multi-user HTTP service.

Three layers, stdlib only:

* :mod:`repro.serve.schemas` — typed request bodies on the Spec v2 section
  protocol (strict unknown-key rejection, dotted-path validation errors);
* :mod:`repro.serve.service` — the transport-free job store and scheduler
  running jobs on the resilient executor with per-job run journals, so a
  restarted server resumes interrupted jobs byte-identically;
* :mod:`repro.serve.routes` / :mod:`repro.serve.app` — the endpoint table
  and the ``ThreadingHTTPServer`` front end streaming results as chunked
  JSONL, byte-identical to the CLI's ``--jsonl`` sink.

:mod:`repro.serve.client` is the matching stdlib client used by tests, CI
and ``python -m repro.serve.client``.  It is deliberately *not* re-exported
here: the client must stay importable (and ``-m``-runnable) without pulling
in the server stack.
"""

from repro.serve.app import ExperimentHandler, ExperimentServer, serve
from repro.serve.routes import Response, dispatch
from repro.serve.schemas import JobRequest, error_payload
from repro.serve.service import (
    ExperimentService,
    Job,
    JobStateError,
    QueueFullError,
    UnknownJobError,
)

__all__ = [
    "ExperimentHandler",
    "ExperimentServer",
    "ExperimentService",
    "Job",
    "JobRequest",
    "JobStateError",
    "QueueFullError",
    "Response",
    "UnknownJobError",
    "dispatch",
    "error_payload",
    "serve",
]
