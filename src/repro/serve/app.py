"""The stdlib HTTP front end: ThreadingHTTPServer over the dispatch table.

No framework — :class:`ExperimentHandler` reads the body, hands
``(method, path, body)`` to :func:`~repro.serve.routes.dispatch`, and writes
either a JSON document (Content-Length) or a chunked
``application/x-ndjson`` stream whose bytes are exactly the job's
``results.jsonl``.  Threading matters here: results streaming blocks until
the job finishes, so each connection needs its own handler thread while the
service's job workers execute in the background.

:func:`serve` wires in the PR 9 interrupt contract: SIGINT/SIGTERM become a
graceful shutdown that leaves running jobs resumable by the next
``python -m repro serve`` on the same jobs directory.
"""

from __future__ import annotations

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.experiments.resilience import GracefulInterrupt, interruptible
from repro.serve.routes import Response, dispatch
from repro.serve.service import ExperimentService

__all__ = ["ExperimentServer", "ExperimentHandler", "serve"]


class ExperimentHandler(BaseHTTPRequestHandler):
    """One request: read body, dispatch, serialise the Response."""

    protocol_version = "HTTP/1.1"
    server: "ExperimentServer"

    def _handle(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        response = dispatch(self.server.service, method, self.path, body)
        try:
            if response.stream is not None:
                self._write_stream(response)
            else:
                self._write_json(response)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def _write_json(self, response: Response) -> None:
        data = (
            json.dumps(response.payload, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _write_stream(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        assert response.stream is not None
        for chunk in response.stream:
            if not chunk:
                continue
            self.wfile.write(f"{len(chunk):X}\r\n".encode("ascii"))
            self.wfile.write(chunk)
            self.wfile.write(b"\r\n")
        self.wfile.write(b"0\r\n\r\n")

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._handle("POST")

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)


class ExperimentServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        address: "tuple[str, int]",
        service: ExperimentService,
        quiet: bool = False,
    ) -> None:
        super().__init__(address, ExperimentHandler)
        self.service = service
        self.quiet = quiet


def serve(
    host: str,
    port: int,
    service: ExperimentService,
    quiet: bool = False,
    ready: Optional["object"] = None,
) -> int:
    """Run the HTTP server until interrupted; returns the process exit code.

    SIGINT/SIGTERM stop the listener and shut the service down gracefully:
    in-flight jobs keep their journals and a restart on the same jobs
    directory resumes them.  ``ready``, when given, must have a ``set()``
    method (a :class:`threading.Event`) and is signalled once the socket is
    bound — used by tests that boot the server on a background thread.
    """
    server = ExperimentServer((host, port), service, quiet=quiet)
    try:
        service.start()
        bound_host, bound_port = server.server_address[:2]
        print(
            f"serving experiments on http://{bound_host}:{bound_port} "
            f"(jobs dir: {service.jobs_dir})",
            file=sys.stderr,
        )
        if ready is not None:
            ready.set()  # type: ignore[attr-defined]
        with interruptible():
            server.serve_forever(poll_interval=0.1)
    except GracefulInterrupt as signal:
        print(
            f"received {signal.signal_name}; shutting down "
            "(running jobs stay resumable)",
            file=sys.stderr,
        )
    finally:
        server.server_close()
        service.shutdown()
    return 0
