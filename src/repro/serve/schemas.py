"""Typed request/response schemas for the serving layer.

The request side reuses the Spec v2 section protocol
(:class:`~repro.experiments.sections.SpecSection`): :class:`JobRequest` is a
frozen dataclass whose :meth:`~repro.experiments.sections.SpecSection.
from_dict` rejects unknown keys — a typo'd field in a ``POST /jobs`` body
fails with a 400 naming the key, exactly like a typo'd spec-file key fails
the CLI — and whose ``_validate`` raises dotted-``path`` errors the routes
render uniformly with ``POST /specs/validate``.

The response side is deliberately plain: responses are dicts assembled by
the service (:meth:`~repro.serve.service.Job.payload`) and serialised by the
routes, with :func:`error_payload` as the one shared error shape
(``{"message", "type", "path"}``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.sections import SpecSection

__all__ = ["JobRequest", "JOB_KINDS", "SAMPLE_METHODS", "error_payload"]

JOB_KINDS = ("run", "sweep")
SAMPLE_METHODS = ("uniform", "lhs")


@dataclass(frozen=True)
class JobRequest(SpecSection):
    """One ``POST /jobs`` body: what to run and how to expand it.

    Exactly one of ``scenario`` (a registered name) or ``spec`` (an inline
    :meth:`~repro.experiments.spec.ScenarioSpec.to_dict` object — the
    "uploaded spec file") selects the scenario.  ``kind="run"`` executes the
    single point described by ``params``; ``kind="sweep"`` expands ``grid``
    / ``seeds`` / ``sample`` exactly like ``python -m repro sweep`` does, so
    the streamed results are byte-identical to the CLI's ``--jsonl`` sink.

    ``workers`` / ``run_timeout`` / ``retry`` override the server's
    defaults per job (``None`` inherits them).
    """

    kind: str = "run"
    scenario: Optional[str] = None
    spec: Optional[Dict[str, Any]] = None
    params: Dict[str, Any] = dataclasses.field(default_factory=dict)
    grid: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seeds: Optional[Tuple[int, ...]] = None
    sample: Optional[int] = None
    sample_seed: int = 0
    sample_method: str = "uniform"
    workers: Optional[int] = None
    run_timeout: Optional[float] = None
    retry: Optional[int] = None

    def _validate(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ConfigurationError(
                f"unknown job kind {self.kind!r}; expected run or sweep",
                path="kind",
            )
        if (self.scenario is None) == (self.spec is None):
            raise ConfigurationError(
                "give exactly one of 'scenario' (a registered name) or "
                "'spec' (an inline spec object)",
                path="scenario",
            )
        if self.spec is not None and not isinstance(self.spec, Mapping):
            raise ConfigurationError(
                f"'spec' must be a spec object, got {self.spec!r}", path="spec"
            )
        if not isinstance(self.params, Mapping):
            raise ConfigurationError(
                f"'params' must be a parameter mapping, got {self.params!r}",
                path="params",
            )
        if not isinstance(self.grid, Mapping):
            raise ConfigurationError(
                f"'grid' must map axis names to value lists, got {self.grid!r}",
                path="grid",
            )
        for axis in sorted(self.grid):
            values = self.grid[axis]
            if isinstance(values, (str, bytes)) or not isinstance(
                values, Sequence
            ):
                raise ConfigurationError(
                    f"grid axis {axis!r} must be a list of values, "
                    f"got {values!r}",
                    path=f"grid.{axis}",
                )
        if self.kind == "run" and (
            self.grid or self.seeds is not None or self.sample is not None
        ):
            raise ConfigurationError(
                "a run job takes 'params' only; use kind='sweep' for "
                "grid/seeds/sample",
                path="kind",
            )
        if self.sample is not None and self.sample < 1:
            raise ConfigurationError(
                f"sample size must be at least 1, got {self.sample}",
                path="sample",
            )
        if self.sample_method not in SAMPLE_METHODS:
            raise ConfigurationError(
                f"unknown sample method {self.sample_method!r}; "
                "expected uniform or lhs",
                path="sample_method",
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}", path="workers"
            )
        if self.run_timeout is not None and self.run_timeout <= 0:
            raise ConfigurationError(
                f"run_timeout must be positive, got {self.run_timeout!r}",
                path="run_timeout",
            )
        if self.retry is not None and self.retry < 1:
            raise ConfigurationError(
                f"retry must be >= 1, got {self.retry}", path="retry"
            )


def error_payload(error: BaseException) -> Dict[str, Any]:
    """The one error shape every endpoint renders.

    ``path`` is the dotted section path structured validation errors carry
    (:attr:`~repro.errors.ConfigurationError.path`); ``None`` when the
    error has no location.
    """
    return {
        "message": str(error),
        "type": type(error).__name__,
        "path": getattr(error, "path", None),
    }
