"""The experiment service: a job store plus scheduler over the resilient executor.

This is the serving layer's core and it is transport-free — no HTTP in this
module.  :class:`ExperimentService` owns a jobs directory; each submitted
:class:`~repro.serve.schemas.JobRequest` becomes a :class:`Job` with its own
subdirectory holding a :class:`~repro.experiments.resilience.RunJournal` and
a ``results.jsonl`` written with the exact
:func:`~repro.experiments.results.write_jsonl_line` sink the CLI uses, so a
job's results are byte-identical to the equivalent ``python -m repro run`` /
``sweep --jsonl`` invocation.  The server is a transport, not new execution
semantics.

Durability mirrors the PR 9 resume contract: the store appends job events to
``jobs.jsonl``; a restarted service replays the log, re-expands each job's
runs deterministically from its request, and re-enqueues every non-terminal
job.  Because those jobs re-execute against their existing run journal,
already-completed runs stream back from the journal in input order and the
rewritten ``results.jsonl`` comes out byte-identical to an uninterrupted
execution (single-worker jobs; parallel jobs are value-identical under
:func:`~repro.experiments.results.compare_payloads`).
"""

from __future__ import annotations

import collections
import dataclasses
import json
import os
import threading
import time
from contextlib import closing
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.experiments.registry import get_scenario, register_spec, scenario_names
from repro.experiments.resilience import (
    Quarantine,
    ResiliencePolicy,
    RunJournal,
    StreamTelemetry,
    execute_stream_resilient,
)
from repro.experiments.results import write_jsonl_line
from repro.experiments.spec import ScenarioSpec
from repro.experiments.sweep import RunSpec, Sweep, expand_grid
from repro.obs.metrics import MetricsRegistry
from repro.serve.schemas import JobRequest

__all__ = [
    "ExperimentService",
    "Job",
    "JobStateError",
    "QueueFullError",
    "UnknownJobError",
    "JOB_STATES",
    "TERMINAL_STATES",
    "expand_runs",
    "resolve_scenario",
]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class QueueFullError(ReproError):
    """The submission queue is at its configured limit (HTTP 503)."""


class UnknownJobError(ReproError):
    """No job with the requested id exists (HTTP 404)."""


class JobStateError(ReproError):
    """The job is in a state that forbids the operation (HTTP 409)."""


def resolve_scenario(request: JobRequest) -> str:
    """Resolve the request's scenario, registering an inline spec if given.

    Inline specs are validated exactly like spec files
    (:func:`~repro.experiments.spec.load_spec_file`) and registered under
    their own name with ``replace=True`` — resubmitting the same spec (or a
    revised one under the same name) is an update, not a conflict, matching
    the CLI's ``--spec`` semantics.
    """
    scenario_names()  # load the builtin catalogue before any registration
    if request.spec is not None:
        spec = ScenarioSpec.from_dict(request.spec).validate()
        register_spec(spec, tags=("serve-job",), replace=True)
        return spec.name
    return get_scenario(request.scenario).name


def check_parameters(request: JobRequest, scenario: str) -> None:
    """Reject params/grid axes the scenario does not declare, with paths."""
    known = set(get_scenario(scenario).defaults)
    for key in sorted(request.params):
        if key not in known:
            raise ConfigurationError(
                f"scenario {scenario!r} has no parameter {key!r}; "
                f"sweepable: {', '.join(sorted(known)) or '(none)'}",
                path=f"params.{key}",
            )
    for axis in sorted(request.grid):
        if axis not in known:
            raise ConfigurationError(
                f"scenario {scenario!r} has no parameter {axis!r}; "
                f"sweepable: {', '.join(sorted(known)) or '(none)'}",
                path=f"grid.{axis}",
            )
    if request.seeds is not None and "seed" not in known:
        raise ConfigurationError(
            f"scenario {scenario!r} has no 'seed' parameter",
            path="seeds",
        )


def expand_runs(request: JobRequest, scenario: str) -> List[RunSpec]:
    """Expand a request into concrete runs, exactly as the CLI would.

    ``kind="run"`` is the single point of ``params``; ``kind="sweep"``
    builds the same :class:`~repro.experiments.sweep.Sweep` the ``sweep``
    subcommand does (``seeds`` becomes a ``seed`` axis, ``sample`` draws
    from the grid), so run order — and therefore the JSONL byte stream —
    matches the CLI.
    """
    base = dict(request.params)
    if request.kind == "run":
        return [RunSpec(scenario, tuple(sorted(base.items())))]
    grid: Dict[str, Any] = {axis: list(values) for axis, values in request.grid.items()}
    if request.seeds is not None:
        grid["seed"] = list(request.seeds)
    if request.sample is not None:
        sweep = Sweep.of(scenario, grid=grid, base=base)
        return sweep.sample(
            request.sample, seed=request.sample_seed, method=request.sample_method
        )
    return expand_grid(scenario, grid=grid, base=base)


@dataclasses.dataclass
class Job:
    """One submitted request plus its execution state and on-disk home."""

    id: str
    request: JobRequest
    scenario: str
    runs: List[RunSpec]
    directory: str
    state: str = "queued"
    done_runs: int = 0
    error: Optional[str] = None
    telemetry: StreamTelemetry = dataclasses.field(default_factory=StreamTelemetry)
    cancel_event: threading.Event = dataclasses.field(default_factory=threading.Event)
    started_event: threading.Event = dataclasses.field(default_factory=threading.Event)
    finished_event: threading.Event = dataclasses.field(default_factory=threading.Event)

    @property
    def results_path(self) -> str:
        return os.path.join(self.directory, "results.jsonl")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, "journal.jsonl")

    def payload(self) -> Dict[str, Any]:
        """The job's status object as every endpoint renders it."""
        return {
            "id": self.id,
            "state": self.state,
            "kind": self.request.kind,
            "scenario": self.scenario,
            "total": len(self.runs),
            "done": self.done_runs,
            "error": self.error,
            "resilience": {
                "resumed": self.telemetry.resumed,
                **self.telemetry.as_dict(),
            },
        }


class ExperimentService:
    """Job store + scheduler: multi-user submissions over one warm pool.

    ``workers`` is the default per-job executor parallelism;
    ``job_concurrency`` is how many jobs execute at once (each on its own
    worker thread).  ``queue_limit`` bounds *queued* (not running) jobs —
    beyond it submissions fail fast with :class:`QueueFullError` instead of
    accepting unbounded backlog.
    """

    def __init__(
        self,
        jobs_dir: str,
        workers: int = 1,
        job_concurrency: int = 1,
        queue_limit: int = 64,
        run_timeout: Optional[float] = None,
        retry: int = 1,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if job_concurrency < 1:
            raise ConfigurationError(
                f"job_concurrency must be >= 1, got {job_concurrency}"
            )
        if queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        self.jobs_dir = jobs_dir
        self.workers = workers
        self.job_concurrency = job_concurrency
        self.queue_limit = queue_limit
        self.run_timeout = run_timeout
        self.retry = retry
        self.metrics = MetricsRegistry()
        self._jobs: "collections.OrderedDict[str, Job]" = collections.OrderedDict()
        self._queue: "collections.deque[Job]" = collections.deque()
        # Re-entrant: metrics refreshes call job_counts() while holding the
        # queue condition, which shares this lock.
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._threads: List[threading.Thread] = []
        self._stop = False
        self._next_id = 1
        os.makedirs(self.jobs_dir, exist_ok=True)
        self._events_path = os.path.join(self.jobs_dir, "jobs.jsonl")
        self._load()
        self._events = open(self._events_path, "a", encoding="utf-8")

    # -- durability --------------------------------------------------------------

    def _load(self) -> None:
        """Replay the jobs event log; re-enqueue every non-terminal job.

        Runs are re-expanded from each request — expansion is deterministic,
        so a resumed job executes the same run list in the same order, and
        its run journal replays completed runs without re-executing them.
        A partial final line (the previous process died mid-append) is
        dropped, same as the run journal's loader.
        """
        if not os.path.exists(self._events_path):
            return
        jobs: "collections.OrderedDict[str, Job]" = collections.OrderedDict()
        with open(self._events_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    break  # partial final line from a killed process
                if "job" in event:
                    record = event["job"]
                    request = JobRequest.from_dict(record["request"]).validate()
                    scenario = resolve_scenario(request)
                    jobs[record["id"]] = Job(
                        id=record["id"],
                        request=request,
                        scenario=scenario,
                        runs=expand_runs(request, scenario),
                        directory=os.path.join(self.jobs_dir, record["id"]),
                    )
                elif "state" in event:
                    record = event["state"]
                    job = jobs.get(record["id"])
                    if job is not None:
                        job.state = record["state"]
                        job.done_runs = record.get("done", job.done_runs)
                        job.error = record.get("error")
        for job in jobs.values():
            number = int(job.id.rsplit("-", 1)[-1])
            self._next_id = max(self._next_id, number + 1)
            if job.state in TERMINAL_STATES:
                job.started_event.set()
                job.finished_event.set()
            else:
                job.state = "queued"
                job.done_runs = 0
                self._queue.append(job)
                self.metrics.counter("serve.jobs_resumed").inc()
            self._jobs[job.id] = job

    def _log_event(self, event: Dict[str, Any]) -> None:
        self._events.write(json.dumps(event, sort_keys=True) + "\n")
        self._events.flush()
        os.fsync(self._events.fileno())

    def _log_state(self, job: Job) -> None:
        self._log_event({
            "state": {
                "id": job.id,
                "state": job.state,
                "done": job.done_runs,
                "error": job.error,
            }
        })

    # -- submission / queries ----------------------------------------------------

    def submit(self, request: JobRequest) -> Job:
        """Validate, expand and enqueue one request; returns the new job."""
        request.validate()
        scenario = resolve_scenario(request)
        check_parameters(request, scenario)
        runs = expand_runs(request, scenario)
        with self._wake:
            if self._stop:
                raise JobStateError("the service is shutting down")
            if len(self._queue) >= self.queue_limit:
                raise QueueFullError(
                    f"job queue is full ({self.queue_limit} queued); retry later"
                )
            job_id = f"job-{self._next_id:06d}"
            self._next_id += 1
            job = Job(
                id=job_id,
                request=request,
                scenario=scenario,
                runs=runs,
                directory=os.path.join(self.jobs_dir, job_id),
            )
            os.makedirs(job.directory, exist_ok=True)
            self._log_event({
                "job": {
                    "id": job.id,
                    "request": request.to_dict(),
                    "scenario": scenario,
                    "total": len(runs),
                }
            })
            self._jobs[job.id] = job
            self._queue.append(job)
            self.metrics.counter("serve.jobs_submitted").inc()
            self._wake.notify()
        return job

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def job_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs():
            counts[job.state] += 1
        return counts

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job immediately or signal a running one to stop.

        A cancelled sweep keeps its journal: the completed runs stay
        journaled, so resubmitting (or resuming) the job re-streams them
        without re-executing.
        """
        job = self.job(job_id)
        with self._wake:
            if job.state in TERMINAL_STATES:
                raise JobStateError(
                    f"job {job_id!r} is already {job.state}; cannot cancel"
                )
            job.cancel_event.set()
            if job.state == "queued":
                try:
                    self._queue.remove(job)
                except ValueError:
                    pass
                job.state = "cancelled"
                self._log_state(job)
                self.metrics.counter("serve.jobs_cancelled").inc()
                job.started_event.set()
                job.finished_event.set()
        return job

    # -- execution ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn the job worker threads (idempotent)."""
        if self._threads:
            return
        for number in range(self.job_concurrency):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-job-worker-{number}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._stop:
                    self._wake.wait()
                if self._stop:
                    return
                job = self._queue.popleft()
                if job.cancel_event.is_set() or job.state in TERMINAL_STATES:
                    continue
                job.state = "running"
                self._log_state(job)
                self.metrics.gauge("serve.jobs_running").set(
                    self.job_counts()["running"]
                )
            started = time.monotonic()
            try:
                completed = self._execute(job)
            except Exception as error:  # noqa: BLE001 - job isolation boundary
                with self._wake:
                    job.state = "failed"
                    job.error = f"{type(error).__name__}: {error}"
                    self._log_state(job)
                    self.metrics.counter("serve.jobs_failed").inc()
            else:
                with self._wake:
                    if job.cancel_event.is_set() and not completed:
                        job.state = "cancelled"
                        self._log_state(job)
                        self.metrics.counter("serve.jobs_cancelled").inc()
                    elif self._stop and not completed:
                        # Graceful shutdown mid-job: leave the state
                        # "running" with no terminal event so a restarted
                        # service re-enqueues and resumes it.
                        pass
                    else:
                        job.state = "done"
                        self._log_state(job)
                        self.metrics.counter("serve.jobs_completed").inc()
            finally:
                with self._lock:
                    self.metrics.histogram("serve.job_wall_seconds").observe(
                        time.monotonic() - started
                    )
                    self.metrics.gauge("serve.jobs_running").set(
                        self.job_counts()["running"]
                    )
                job.started_event.set()
                job.finished_event.set()

    def _execute(self, job: Job) -> bool:
        """Run one job through the resilient executor; True iff it completed.

        ``results.jsonl`` is rewritten from scratch on every execution; with
        the run journal replaying completed runs first in input order, a
        resumed single-worker job produces the same bytes an uninterrupted
        one would.
        """
        request = job.request
        policy = ResiliencePolicy(
            run_timeout=(
                request.run_timeout
                if request.run_timeout is not None
                else self.run_timeout
            ),
            max_attempts=request.retry if request.retry is not None else self.retry,
        )
        workers = request.workers if request.workers is not None else self.workers
        journal = RunJournal(
            job.journal_path,
            header={
                "kind": "serve-job",
                "version": 1,
                "id": job.id,
                "scenario": job.scenario,
                "request": request.to_dict(),
            },
            resume=True,
        )
        quarantine = Quarantine(job.journal_path + ".quarantine.jsonl")
        completed = False
        with closing(journal), closing(quarantine):
            stream = execute_stream_resilient(
                job.runs,
                workers=workers,
                capture_errors=True,
                policy=policy,
                journal=journal,
                quarantine=quarantine,
                telemetry=job.telemetry,
            )
            with open(job.results_path, "w", encoding="utf-8") as handle:
                job.started_event.set()
                with closing(stream):
                    for _, result in stream:
                        write_jsonl_line(result, handle)
                        job.done_runs += 1
                        self.metrics.counter("serve.runs_completed").inc()
                        if job.cancel_event.is_set() or self._stop:
                            break
            if job.done_runs >= len(job.runs):
                completed = True
                journal.record_summary({
                    "summary": {
                        "id": job.id,
                        "total": len(job.runs),
                        "resilience": job.telemetry.as_dict(),
                    }
                })
        return completed

    # -- results streaming -------------------------------------------------------

    def stream_results(self, job_id: str) -> Iterator[bytes]:
        """Yield a job's results.jsonl incrementally until the job finishes.

        Chunks are raw file bytes — the HTTP layer forwards them as a
        chunked ``application/x-ndjson`` body, so what a client receives is
        exactly what :func:`~repro.experiments.results.write_jsonl_line`
        wrote.  For a finished job this just streams the file.
        """
        job = self.job(job_id)
        while not job.started_event.wait(0.05):
            if job.finished_event.is_set():
                break
        if not os.path.exists(job.results_path):
            return
        with open(job.results_path, "rb") as handle:
            while True:
                chunk = handle.read(65536)
                if chunk:
                    yield chunk
                    continue
                if job.finished_event.is_set():
                    tail = handle.read()
                    if tail:
                        yield tail
                    return
                job.finished_event.wait(0.05)

    # -- metrics -----------------------------------------------------------------

    def metrics_payload(self) -> Dict[str, Any]:
        """The obs registry snapshot with queue/state gauges refreshed."""
        counts = self.job_counts()
        with self._lock:
            depth = len(self._queue)
        self.metrics.gauge("serve.queue_depth").set(depth)
        for state in JOB_STATES:
            self.metrics.gauge(f"serve.jobs_{state}").set(counts[state])
        return self.metrics.as_dict()

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop accepting and executing; leave running jobs resumable.

        In-flight jobs notice ``_stop`` after their current run, keep their
        journal, and are re-enqueued by the next service constructed on the
        same jobs directory.
        """
        with self._wake:
            self._stop = True
            self._wake.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        self._events.close()
