"""Transport-free request routing for the serving layer.

:func:`dispatch` maps ``(method, path, body)`` onto the
:class:`~repro.serve.service.ExperimentService` API and returns a
:class:`Response` — either a JSON payload or a byte-chunk stream.  Keeping
the routing out of the HTTP handler means the whole endpoint surface is
testable in-process without sockets, and the handler stays a thin
serialisation shim.

Error mapping is uniform: every failure renders as
``{"error": {"message", "type", "path"}}`` with 400 for validation errors,
404 for unknown jobs/routes, 405 for a known path with the wrong method,
409 for state conflicts, and 503 when the submission queue is full.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.experiments.registry import catalogue_payload
from repro.experiments.spec import ScenarioSpec
from repro.serve.schemas import JobRequest, error_payload
from repro.serve.service import (
    ExperimentService,
    JobStateError,
    QueueFullError,
    UnknownJobError,
)

__all__ = ["Response", "dispatch"]


@dataclass
class Response:
    """One endpoint result: a JSON payload or a chunked byte stream."""

    status: int
    payload: Optional[Any] = None
    stream: Optional[Iterator[bytes]] = None
    content_type: str = "application/json"


def _error(status: int, error: BaseException) -> Response:
    return Response(status, payload={"error": error_payload(error)})


# -- endpoint handlers ---------------------------------------------------------


def _get_healthz(service: ExperimentService, body: Any) -> Response:
    return Response(200, payload={"ok": True, "jobs": service.job_counts()})


def _get_metrics(service: ExperimentService, body: Any) -> Response:
    return Response(200, payload=service.metrics_payload())


def _get_scenarios(service: ExperimentService, body: Any) -> Response:
    return Response(200, payload=catalogue_payload())


def _post_validate(service: ExperimentService, body: Any) -> Response:
    """Validate an inline spec; validation failures are a 200 with details.

    The endpoint's *job* is judging specs, so a bad spec is a successful
    judgement — ``{"ok": false, "errors": [...]}`` with dotted paths —
    while a non-object body is still a 400.
    """
    if not isinstance(body, dict):
        raise ConfigurationError(
            f"expected a spec object, got {type(body).__name__}"
        )
    try:
        spec = ScenarioSpec.from_dict(body).validate()
    except ConfigurationError as error:
        return Response(
            200, payload={"ok": False, "errors": [error_payload(error)]}
        )
    return Response(
        200,
        payload={
            "ok": True,
            "name": spec.name,
            "sweepable": sorted(spec.flatten()),
        },
    )


def _post_jobs(service: ExperimentService, body: Any) -> Response:
    if not isinstance(body, dict):
        raise ConfigurationError(
            f"expected a job request object, got {type(body).__name__}"
        )
    job = service.submit(JobRequest.from_dict(body))
    return Response(201, payload=job.payload())


def _get_jobs(service: ExperimentService, body: Any) -> Response:
    return Response(200, payload=[job.payload() for job in service.jobs()])


def _get_job(service: ExperimentService, body: Any, job_id: str) -> Response:
    return Response(200, payload=service.job(job_id).payload())


def _get_results(service: ExperimentService, body: Any, job_id: str) -> Response:
    service.job(job_id)  # 404 before committing to a stream
    return Response(
        200,
        stream=service.stream_results(job_id),
        content_type="application/x-ndjson",
    )


def _post_cancel(service: ExperimentService, body: Any, job_id: str) -> Response:
    return Response(200, payload=service.cancel(job_id).payload())


_ROUTES: List[Tuple[str, "re.Pattern[str]", Callable[..., Response]]] = [
    ("GET", re.compile(r"^/healthz$"), _get_healthz),
    ("GET", re.compile(r"^/metrics$"), _get_metrics),
    ("GET", re.compile(r"^/scenarios$"), _get_scenarios),
    ("POST", re.compile(r"^/specs/validate$"), _post_validate),
    ("POST", re.compile(r"^/jobs$"), _post_jobs),
    ("GET", re.compile(r"^/jobs$"), _get_jobs),
    ("GET", re.compile(r"^/jobs/(?P<job_id>[^/]+)$"), _get_job),
    ("GET", re.compile(r"^/jobs/(?P<job_id>[^/]+)/results$"), _get_results),
    ("POST", re.compile(r"^/jobs/(?P<job_id>[^/]+)/cancel$"), _post_cancel),
]


def dispatch(
    service: ExperimentService,
    method: str,
    path: str,
    body: Optional[bytes] = None,
) -> Response:
    """Route one request; never raises — failures become error responses."""
    path = path.split("?", 1)[0]
    parsed: Any = None
    if body:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            return _error(400, ConfigurationError(f"invalid JSON body: {error}"))
    allowed: List[str] = []
    for route_method, pattern, handler in _ROUTES:
        match = pattern.match(path)
        if match is None:
            continue
        if route_method != method:
            allowed.append(route_method)
            continue
        try:
            return handler(service, parsed, **match.groupdict())
        except UnknownJobError as error:
            return _error(404, error)
        except JobStateError as error:
            return _error(409, error)
        except QueueFullError as error:
            return _error(503, error)
        except (ConfigurationError, ReproError) as error:
            return _error(400, error)
    if allowed:
        return _error(
            405,
            ConfigurationError(
                f"method {method} not allowed for {path}; "
                f"allowed: {', '.join(sorted(set(allowed)))}"
            ),
        )
    return _error(404, ConfigurationError(f"no route for {method} {path}"))
