"""A minimal stdlib client for the experiment service, plus a tiny CLI.

:class:`ServeClient` wraps :class:`http.client.HTTPConnection` with the
endpoint surface tests and CI need: health, catalogue, spec validation, job
submission, polling, cancellation and results download.  Results are
returned as the raw chunked-body bytes — reading the stream blocks until
the job reaches a terminal state, which is exactly the synchronisation CI
wants before ``cmp``-gating the file against a direct CLI run.

``python -m repro.serve.client`` exposes the same surface for shell use::

    python -m repro.serve.client --url http://127.0.0.1:8123 health
    python -m repro.serve.client submit --spec examples/specs/quickstart.json \\
        --sweep --seeds 0,1 --results served.jsonl
"""

from __future__ import annotations

import argparse
import ast
import http.client
import json
import sys
import time
import urllib.parse
from typing import Any, Dict, List, Optional

from repro.errors import ReproError

__all__ = ["ServeClient", "ServeClientError", "main"]

DEFAULT_URL = "http://127.0.0.1:8123"


class ServeClientError(ReproError):
    """A non-2xx response; carries the HTTP status and the error's path."""

    def __init__(
        self, message: str, status: int = 0, path: Optional[str] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.path = path


class ServeClient:
    """One server endpoint; a fresh connection per request (thread-safe)."""

    def __init__(self, base_url: str = DEFAULT_URL, timeout: float = 60.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("", "http"):
            raise ServeClientError(
                f"only http:// endpoints are supported, got {base_url!r}"
            )
        netloc = parsed.netloc or parsed.path
        self.host = netloc.rsplit(":", 1)[0] if ":" in netloc else netloc
        self.port = int(netloc.rsplit(":", 1)[1]) if ":" in netloc else 80
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: Optional[Any] = None
    ) -> "http.client.HTTPResponse":
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection.request(method, path, body=payload, headers=headers)
        return connection.getresponse()

    def _json(self, method: str, path: str, body: Optional[Any] = None) -> Any:
        response = self._request(method, path, body)
        try:
            data = response.read()
        finally:
            response.close()
        try:
            document = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ServeClientError(
                f"non-JSON response from {method} {path}: {error}",
                status=response.status,
            ) from error
        if response.status >= 400:
            detail = document.get("error", {}) if isinstance(document, dict) else {}
            raise ServeClientError(
                detail.get("message", f"{method} {path} failed"),
                status=response.status,
                path=detail.get("path"),
            )
        return document

    # -- endpoint surface --------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._json("GET", "/metrics")

    def scenarios(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/scenarios")

    def validate_spec(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        return self._json("POST", "/specs/validate", body=spec)

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._json("POST", "/jobs", body=request)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/jobs")

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def results_bytes(self, job_id: str) -> bytes:
        """The job's complete results.jsonl; blocks until the job finishes."""
        response = self._request("GET", f"/jobs/{job_id}/results")
        try:
            if response.status >= 400:
                data = response.read()
                detail = {}
                try:
                    detail = json.loads(data.decode("utf-8")).get("error", {})
                except (json.JSONDecodeError, UnicodeDecodeError):
                    pass
                raise ServeClientError(
                    detail.get("message", f"results fetch failed for {job_id}"),
                    status=response.status,
                    path=detail.get("path"),
                )
            return response.read()
        finally:
            response.close()

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] in ("done", "failed", "cancelled"):
                return payload
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} still {payload['state']!r} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll)


# -- command line --------------------------------------------------------------


def _parse_value(text: str) -> Any:
    """`--p key=value` values: Python literals when possible, else strings."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _build_request(args: argparse.Namespace) -> Dict[str, Any]:
    request: Dict[str, Any] = {"kind": "sweep" if args.sweep else "run"}
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            request["spec"] = json.load(handle)
    else:
        request["scenario"] = args.scenario
    params = {}
    for item in args.param or []:
        key, _, value = item.partition("=")
        params[key] = _parse_value(value)
    if params:
        request["params"] = params
    grid = {}
    for item in args.grid or []:
        axis, _, values = item.partition("=")
        grid[axis] = [_parse_value(value) for value in values.split(",")]
    if grid:
        request["grid"] = grid
    if args.seeds:
        request["seeds"] = [int(seed) for seed in args.seeds.split(",")]
    if args.sample is not None:
        request["sample"] = args.sample
        request["sample_seed"] = args.sample_seed
        request["sample_method"] = args.sample_method
    if args.workers is not None:
        request["workers"] = args.workers
    return request


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="Talk to a running `python -m repro serve` instance.",
    )
    parser.add_argument("--url", default=DEFAULT_URL, help="server base URL")
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="request/wait timeout"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("health", help="server liveness and job counts")
    commands.add_parser("scenarios", help="the scenario catalogue")
    commands.add_parser("jobs", help="list all jobs")
    commands.add_parser("metrics", help="the server metrics snapshot")

    validate = commands.add_parser("validate", help="validate a spec file")
    validate.add_argument("spec", help="path to a JSON spec file")

    submit = commands.add_parser("submit", help="submit a run or sweep job")
    what = submit.add_mutually_exclusive_group(required=True)
    what.add_argument("--scenario", help="a registered scenario name")
    what.add_argument("--spec", help="path to a JSON spec file to upload")
    submit.add_argument("--sweep", action="store_true", help="submit a sweep")
    submit.add_argument(
        "-p", "--param", action="append", metavar="KEY=VALUE",
        help="fixed parameter (repeatable)",
    )
    submit.add_argument(
        "--grid", action="append", metavar="AXIS=V1,V2,...",
        help="sweep axis values (repeatable)",
    )
    submit.add_argument("--seeds", help="comma-separated seed axis")
    submit.add_argument("--sample", type=int, help="sample n grid points")
    submit.add_argument("--sample-seed", type=int, default=0)
    submit.add_argument(
        "--sample-method", choices=("uniform", "lhs"), default="uniform"
    )
    submit.add_argument("--workers", type=int, help="per-job executor workers")
    submit.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    submit.add_argument(
        "--results", metavar="PATH",
        help="stream results to PATH (implies --wait)",
    )

    job = commands.add_parser("job", help="one job's status")
    job.add_argument("id")
    results = commands.add_parser("results", help="download a job's results")
    results.add_argument("id")
    results.add_argument("--output", "-o", help="write to a file, not stdout")
    cancel = commands.add_parser("cancel", help="cancel a job")
    cancel.add_argument("id")
    return parser


def _print(document: Any) -> None:
    print(json.dumps(document, indent=2, sort_keys=True))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    client = ServeClient(args.url, timeout=args.timeout)
    try:
        if args.command == "health":
            _print(client.health())
        elif args.command == "scenarios":
            _print(client.scenarios())
        elif args.command == "jobs":
            _print(client.jobs())
        elif args.command == "metrics":
            _print(client.metrics())
        elif args.command == "validate":
            with open(args.spec, "r", encoding="utf-8") as handle:
                verdict = client.validate_spec(json.load(handle))
            _print(verdict)
            return 0 if verdict.get("ok") else 1
        elif args.command == "submit":
            job = client.submit(_build_request(args))
            if args.results or args.wait:
                if args.results:
                    data = client.results_bytes(job["id"])
                    with open(args.results, "wb") as handle:
                        handle.write(data)
                job = client.wait(job["id"], timeout=args.timeout)
                _print(job)
                return 0 if job["state"] == "done" else 1
            _print(job)
        elif args.command == "job":
            _print(client.job(args.id))
        elif args.command == "results":
            data = client.results_bytes(args.id)
            if args.output:
                with open(args.output, "wb") as handle:
                    handle.write(data)
            else:
                sys.stdout.buffer.write(data)
        elif args.command == "cancel":
            _print(client.cancel(args.id))
    except (ReproError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
