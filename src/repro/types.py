"""Shared type aliases and small value objects used across the library.

The paper's system model (Section II) distinguishes *servers* (a finite set
``S`` of ``n`` processes, at most ``f`` of which may crash) from *clients*
(an unbounded set ``Pi``).  Throughout the code base both are identified by a
:class:`ProcessId`, a plain string such as ``"s1"`` or ``"c3"``.  Weights are
plain floats (the paper allows arbitrary reals subject to the Integrity
properties).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Identifier of a process (server or client).  Servers conventionally use
#: ``s1 .. sn`` and clients ``c1 .. ck`` but any unique string is accepted.
ProcessId = str

#: A server weight (voting power).  The paper allows any real value subject to
#: the Integrity / RP-Integrity constraints.
Weight = float

#: Virtual time used by the simulation kernel, in abstract "milliseconds".
VirtualTime = float


@dataclass(frozen=True, order=True)
class Tag:
    """Timestamp/process-id pair ordering written values (footnote 3).

    A tag ``tg1`` is smaller than ``tg2`` if its timestamp is smaller, or the
    timestamps are equal and its writer id is smaller.  ``Tag`` instances are
    immutable and totally ordered, which is exactly the comparison rule the
    ABD-style read/write protocols rely on.
    """

    ts: int
    pid: ProcessId

    def next_for(self, writer: ProcessId) -> "Tag":
        """Return the tag a writer with id ``writer`` should use after this tag."""
        return Tag(ts=self.ts + 1, pid=writer)

    @staticmethod
    def zero() -> "Tag":
        """The initial tag associated with the register's initial value."""
        return Tag(ts=0, pid="")

    def as_tuple(self) -> Tuple[int, ProcessId]:
        return (self.ts, self.pid)


def server_name(index: int) -> ProcessId:
    """Canonical name of the ``index``-th server (1-based), e.g. ``s1``."""
    if index < 1:
        raise ValueError(f"server indices are 1-based, got {index}")
    return f"s{index}"


def client_name(index: int) -> ProcessId:
    """Canonical name of the ``index``-th client (1-based), e.g. ``c1``."""
    if index < 1:
        raise ValueError(f"client indices are 1-based, got {index}")
    return f"c{index}"


def server_set(n: int) -> Tuple[ProcessId, ...]:
    """The canonical server set ``(s1, ..., sn)``."""
    if n < 1:
        raise ValueError(f"need at least one server, got n={n}")
    return tuple(server_name(i) for i in range(1, n + 1))
