"""The probe → policy → controller feedback loop.

:func:`install_monitoring_control` wires one complete monitoring loop over a
set of servers and starts it: every ``interval`` a dedicated prober pings the
servers, a :class:`~repro.monitoring.monitor.LatencyMonitor` folds the reply
latencies into its EWMA summary, the configured policy turns the summary into
target weights, and each server's :class:`~repro.monitoring.controller.
WeightController` takes one RP-Integrity-preserving step towards them.

This is the loop the ``hotspot-shift-monitoring`` and
``sharded-hotspot-reassignment`` scenarios always ran; it now lives here so
the declarative :class:`~repro.experiments.spec.MonitoringSpec` section and
imperative scenarios share one implementation (and one event ordering — the
checked-in baselines depend on it).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping

from repro.core.spec import SystemConfig
from repro.monitoring.controller import WeightController
from repro.monitoring.monitor import LatencyMonitor, install_probe_responder
from repro.monitoring.policy import proportional_inverse_latency_weights
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimLoop
from repro.types import ProcessId, VirtualTime, Weight

__all__ = ["PolicyFn", "install_monitoring_control"]

# A policy maps the monitor's latency summary plus the system config to
# target weights (see repro.monitoring.policy for the built-in schemes).
PolicyFn = Callable[[Mapping[ProcessId, VirtualTime], SystemConfig], Dict[ProcessId, Weight]]


def install_monitoring_control(
    loop: SimLoop,
    network: Network,
    servers: Mapping[ProcessId, Any],
    config: SystemConfig,
    prober_pid: ProcessId,
    rounds: int,
    interval: VirtualTime,
    tolerance: Weight,
    max_step: Weight,
    window: int = 32,
    ewma_alpha: float = 0.3,
    policy: PolicyFn = proportional_inverse_latency_weights,
) -> List[WeightController]:
    """Wire one probe/policy/controller loop over ``servers`` and start it.

    Every ``interval`` the prober pings the servers, ``policy`` turns the
    monitor's EWMA summary into target weights, and each server's
    :class:`WeightController` takes one step towards them (``tolerance``
    dead-bands negligible deficits, ``max_step`` caps the weight moved per
    step).  Returns the controllers so callers can inspect the attempted
    transfers.
    """
    for server in servers.values():
        install_probe_responder(server)
    prober = Process(prober_pid, network)
    monitor = LatencyMonitor(config.servers, window=window, ewma_alpha=ewma_alpha)
    controllers = [
        WeightController(server, tolerance=tolerance, max_step=max_step)
        for server in servers.values()
    ]

    async def control_loop() -> None:
        obs = network.obs
        for index in range(rounds):
            await loop.sleep(interval)
            if obs is not None:
                obs.control_round(prober_pid, index, loop.now)
            await monitor.probe(prober)
            targets = policy(monitor.summary(default=1.0), config)
            for controller in controllers:
                controller.set_targets(targets)
                await controller.step()

    loop.create_task(control_loop(), name=f"monitoring-control:{prober_pid}")
    return controllers
