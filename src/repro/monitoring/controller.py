"""Driving ``transfer`` towards policy targets.

The controller closes the loop between monitoring and the paper's protocol:
given target weights (from :mod:`repro.monitoring.policy`), each server
periodically compares its *own* current weight with its target and, if it has
excess weight, transfers the excess to the most under-weighted server —
respecting C1 (a server only gives away its own weight) and C2 (never dip to
the RP-Integrity bound).

Because of the restrictions the paper proves necessary, convergence is only
*eventual and approximate*: a server below its target cannot pull weight from
others; it must wait for over-weighted servers to push.  ``tolerance`` stops
the controller from chasing negligible differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.protocol import ReassignmentServer, TransferOutcome
from repro.errors import ConfigurationError
from repro.numerics import strictly_greater
from repro.types import ProcessId, VirtualTime, Weight

__all__ = ["WeightController"]


@dataclass
class ControllerReport:
    """What one controller step did (used by tests and benchmarks)."""

    at: VirtualTime
    attempted: bool
    outcome: Optional[TransferOutcome] = None
    target: Optional[ProcessId] = None
    delta: Weight = 0.0


class WeightController:
    """Per-server controller issuing RP-Integrity-preserving transfers."""

    def __init__(
        self,
        server: ReassignmentServer,
        tolerance: Weight = 0.05,
        max_step: Optional[Weight] = None,
    ) -> None:
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        self.server = server
        self.tolerance = tolerance
        self.max_step = max_step
        self.targets: Dict[ProcessId, Weight] = dict(server.config.initial_weights)
        self.reports: List[ControllerReport] = []

    # -- configuration -----------------------------------------------------------
    def set_targets(self, targets: Mapping[ProcessId, Weight]) -> None:
        """Install new target weights (typically produced by a policy)."""
        if set(targets) != set(self.server.config.servers):
            raise ConfigurationError("targets must cover exactly the server set")
        self.targets = dict(targets)

    # -- one control step ------------------------------------------------------------
    def _excess(self) -> Weight:
        return self.server.weight() - self.targets[self.server.pid]

    def _neediest_server(self) -> Optional[ProcessId]:
        """The server whose locally-known weight is furthest below its target."""
        deficits = []
        weights = self.server.local_weights()
        for server in self.server.config.servers:
            if server == self.server.pid:
                continue
            deficit = self.targets[server] - weights[server]
            if deficit > self.tolerance:
                deficits.append((deficit, server))
        if not deficits:
            return None
        deficits.sort(reverse=True)
        return deficits[0][1]

    async def step(self) -> ControllerReport:
        """Perform at most one transfer towards the targets."""
        excess = self._excess()
        target = self._neediest_server()
        if excess <= self.tolerance or target is None:
            report = ControllerReport(at=self.server.loop.now, attempted=False)
            self.reports.append(report)
            return report

        delta = min(
            excess,
            self.targets[target] - self.server.local_weights()[target],
        )
        if self.max_step is not None:
            delta = min(delta, self.max_step)
        # Never dip to the RP-Integrity bound: cap at what C2 allows.
        allowance = self.server.weight() - self.server.config.rp_min_weight
        delta = min(delta, allowance * 0.99)
        if delta <= 0 or not strictly_greater(delta, 0.0):
            report = ControllerReport(at=self.server.loop.now, attempted=False)
            self.reports.append(report)
            return report

        outcome = await self.server.transfer(target, delta)
        report = ControllerReport(
            at=self.server.loop.now,
            attempted=True,
            outcome=outcome,
            target=target,
            delta=delta,
        )
        self.reports.append(report)
        return report

    async def run(self, rounds: int, interval: VirtualTime = 5.0) -> None:
        """Run ``rounds`` control steps spaced ``interval`` apart."""
        for _ in range(rounds):
            await self.step()
            await self.server.loop.sleep(interval)

    # -- convergence metric --------------------------------------------------------
    def distance_to_targets(self) -> Weight:
        """L1 distance between the locally-known weights and the targets."""
        weights = self.server.local_weights()
        return sum(
            abs(weights[server] - self.targets[server])
            for server in self.server.config.servers
        )
