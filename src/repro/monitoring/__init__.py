"""Monitoring and weight-assignment policies.

The paper assumes weights are "assigned in accordance with ... access latency
or request processing capacity, as determined by a monitoring system [9],
[10]" and that servers invoke ``transfer`` "based on the information provided
by a monitoring system".  This package supplies that missing piece:

* :mod:`repro.monitoring.monitor` — collects per-server latency samples
  (either passively from client operation telemetry or by active probing).
* :mod:`repro.monitoring.policy` — turns latency summaries into *target
  weights*: proportional inverse-latency weights and a WHEAT-style binary
  ``wmin``/``wmax`` scheme, both clipped so Property 1 / RP-Integrity remain
  satisfiable.
* :mod:`repro.monitoring.controller` — drives the paper's ``transfer``
  operation towards the targets, respecting C1/C2 (each server only ever
  gives its *own* weight away, and only down to the RP-Integrity bound).
* :mod:`repro.monitoring.loop` — wires monitor + policy + controllers into
  one running feedback loop (the form the declarative ``MonitoringSpec``
  section and the catalogue scenarios both build).
"""

from repro.monitoring.monitor import LatencyMonitor, install_probe_responder
from repro.monitoring.policy import (
    proportional_inverse_latency_weights,
    wheat_style_weights,
    clip_to_rp_integrity,
)
from repro.monitoring.controller import WeightController
from repro.monitoring.loop import install_monitoring_control

__all__ = [
    "LatencyMonitor",
    "install_probe_responder",
    "proportional_inverse_latency_weights",
    "wheat_style_weights",
    "clip_to_rp_integrity",
    "WeightController",
    "install_monitoring_control",
]
