"""Weight-assignment policies.

Policies translate a latency summary into *target weights* whose total equals
the system's initial total weight (pairwise reassignment cannot change the
total).  Two schemes are provided:

* :func:`proportional_inverse_latency_weights` — weight proportional to
  ``1 / latency``, the natural "faster servers get more voting power" rule;
* :func:`wheat_style_weights` — the binary scheme of WHEAT [20]: the ``u``
  fastest servers get ``wmax`` and the rest ``wmin``.

Both are passed through :func:`clip_to_rp_integrity`, which projects the
targets into the region where every server keeps strictly more than
``W_{S,0} / (2(n-f))`` — otherwise the controller could never reach them with
RP-Integrity-preserving transfers.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError
from repro.types import ProcessId, VirtualTime, Weight

__all__ = [
    "proportional_inverse_latency_weights",
    "wheat_style_weights",
    "clip_to_rp_integrity",
]


def clip_to_rp_integrity(
    targets: Mapping[ProcessId, Weight],
    config: SystemConfig,
    margin: float = 0.05,
) -> Dict[ProcessId, Weight]:
    """Project target weights into the RP-Integrity-feasible region.

    Every server is guaranteed at least ``(1 + margin) * W_{S,0}/(2(n-f))``;
    the weight clipped away is removed proportionally from the servers above
    the floor, so the total is preserved.
    """
    if set(targets) != set(config.servers):
        raise ConfigurationError("targets must cover exactly the server set")
    floor = config.rp_min_weight * (1.0 + margin)
    total = config.total_initial_weight
    if floor * config.n >= total:
        raise ConfigurationError("margin too large: floors exceed the total weight")

    clipped = {server: max(weight, floor) for server, weight in targets.items()}
    excess = sum(clipped.values()) - total
    if excess <= 0:
        # Numerically the total can only grow through clipping; if it did not,
        # the targets were already feasible.
        return dict(clipped)
    # Remove the excess proportionally from the headroom above the floor.
    headroom = {server: clipped[server] - floor for server in clipped}
    total_headroom = sum(headroom.values())
    result = {}
    for server in clipped:
        share = headroom[server] / total_headroom if total_headroom else 0.0
        result[server] = clipped[server] - excess * share
    return result


def proportional_inverse_latency_weights(
    latencies: Mapping[ProcessId, VirtualTime],
    config: SystemConfig,
    margin: float = 0.05,
) -> Dict[ProcessId, Weight]:
    """Targets proportional to ``1 / latency``, normalised to the initial total."""
    if set(latencies) != set(config.servers):
        raise ConfigurationError("latencies must cover exactly the server set")
    inverse = {
        server: 1.0 / max(latency, 1e-6) for server, latency in latencies.items()
    }
    scale = config.total_initial_weight / sum(inverse.values())
    raw = {server: value * scale for server, value in inverse.items()}
    return clip_to_rp_integrity(raw, config, margin=margin)


def wheat_style_weights(
    latencies: Mapping[ProcessId, VirtualTime],
    config: SystemConfig,
    extra_servers: int = 1,
    margin: float = 0.05,
) -> Dict[ProcessId, Weight]:
    """WHEAT-style binary weights: the fastest servers get ``wmax``, others ``wmin``.

    WHEAT deploys ``2f + 1 + extra_servers`` replicas and gives ``wmax`` to
    ``n - 2f`` of them; here we keep the server set fixed and simply give the
    ``n - 2f`` fastest servers the large weight, scaled so the total matches
    the initial total weight.
    """
    if set(latencies) != set(config.servers):
        raise ConfigurationError("latencies must cover exactly the server set")
    n, f = config.n, config.f
    fast_count = max(1, n - 2 * f)
    ranked = sorted(config.servers, key=lambda server: latencies[server])
    fast = set(ranked[:fast_count])
    # WHEAT's wmax/wmin ratio: wmax = 1 + delta, wmin = 1, with delta chosen so
    # that f wmax-servers can be replaced by 2f wmin-servers; delta = f / (n - 2f)
    # keeps Property 1 tight.  Scale to the initial total weight afterwards.
    delta = f / fast_count if fast_count else 0.0
    raw = {
        server: (1.0 + delta) if server in fast else 1.0 for server in config.servers
    }
    scale = config.total_initial_weight / sum(raw.values())
    scaled = {server: weight * scale for server, weight in raw.items()}
    return clip_to_rp_integrity(scaled, config, margin=margin)
