"""Latency monitoring.

A :class:`LatencyMonitor` accumulates round-trip latency samples per server
and summarises them (mean / exponentially weighted moving average).  Samples
can come from two sources:

* **passive** — protocol clients report the per-server reply latencies they
  observe during normal operations;
* **active** — :meth:`LatencyMonitor.probe` sends a no-op ping to every
  server and records the reply times (the way AWARE-style monitoring [10]
  measures links).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.net.process import Process
from repro.types import ProcessId, VirtualTime

__all__ = ["LatencyMonitor", "install_probe_responder"]

PING = "MON_PING"
PONG = "MON_PONG"


def install_probe_responder(process: Process) -> None:
    """Make ``process`` answer monitoring pings (servers call this once)."""
    process.register_handler(PING, lambda message: process.reply(message, PONG, {}))


class LatencyMonitor:
    """Sliding-window latency statistics for a set of servers."""

    def __init__(
        self,
        servers: Sequence[ProcessId],
        window: int = 32,
        ewma_alpha: float = 0.3,
    ) -> None:
        if window < 1:
            raise ConfigurationError("window must be at least 1")
        if not 0 < ewma_alpha <= 1:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        self.servers = tuple(servers)
        self.window = window
        self.ewma_alpha = ewma_alpha
        self._samples: Dict[ProcessId, Deque[VirtualTime]] = defaultdict(
            lambda: deque(maxlen=window)
        )
        self._ewma: Dict[ProcessId, Optional[VirtualTime]] = {
            server: None for server in self.servers
        }

    # -- feeding samples ---------------------------------------------------------
    def record(self, server: ProcessId, latency: VirtualTime) -> None:
        """Record one round-trip latency sample for ``server``."""
        if latency < 0:
            raise ConfigurationError("latency samples must be non-negative")
        self._samples[server].append(latency)
        previous = self._ewma.get(server)
        if previous is None:
            self._ewma[server] = latency
        else:
            self._ewma[server] = (
                self.ewma_alpha * latency + (1 - self.ewma_alpha) * previous
            )

    def record_many(self, samples: Mapping[ProcessId, VirtualTime]) -> None:
        for server, latency in samples.items():
            self.record(server, latency)

    # -- active probing ---------------------------------------------------------------
    async def probe(self, prober: Process, timeout: Optional[VirtualTime] = None) -> Dict[ProcessId, VirtualTime]:
        """Ping every server from ``prober`` and record the reply latencies.

        The probe waits only for the servers still alive — the count is
        re-evaluated on every reply, so a crash landing mid-probe unblocks
        the wait as soon as the next reply arrives (a crashed server's
        replies never come, while a slowed server's late replies *are* the
        signal, so neither a full wait nor a short timeout would do).
        Crashed or partitioned servers simply contribute no sample.
        Residual edge: a crash whose victim held the *only* outstanding
        reply stalls the probe until ``timeout`` (if given) fires — pass a
        timeout when probing under crash faults.
        """
        started = prober.loop.now
        network = prober.network
        collector = prober.request_all(self.servers, PING, {})
        waiter = collector.wait_until(
            lambda replies: len(replies) >= sum(
                1 for server in self.servers if not network.is_crashed(server)
            ),
            name="alive-replies",
        )
        if timeout is not None:
            waiter = prober.loop.timeout(waiter, timeout)
        try:
            await waiter
        except Exception:
            # Partial probes are fine; use whatever replies arrived.
            pass
        observed: Dict[ProcessId, VirtualTime] = {}
        for reply in collector.responses:
            latency = reply.delivered_at - started
            observed[reply.sender] = latency
            self.record(reply.sender, latency)
        return observed

    # -- summaries ------------------------------------------------------------------
    def mean(self, server: ProcessId) -> Optional[VirtualTime]:
        samples = self._samples.get(server)
        if not samples:
            return None
        return sum(samples) / len(samples)

    def ewma(self, server: ProcessId) -> Optional[VirtualTime]:
        return self._ewma.get(server)

    def summary(self, default: VirtualTime = 1.0) -> Dict[ProcessId, VirtualTime]:
        """EWMA latency per server, substituting ``default`` when unsampled."""
        result = {}
        for server in self.servers:
            value = self._ewma.get(server)
            result[server] = default if value is None else value
        return result

    def sample_count(self, server: ProcessId) -> int:
        return len(self._samples.get(server, ()))
