"""Single-decree Paxos (the synod protocol) over the simulated network.

The paper's impossibility results mean the *unrestricted* weight-reassignment
problem needs consensus; this module provides that consensus for the
partially-synchronous baselines (e.g. the consensus-based reassignment of
related work [10]).  Plain FLP-style asynchrony cannot guarantee Paxos
termination, so proposers retry with growing, seeded backoff — the simulated
analogue of partial synchrony / an eventual leader.

Every node plays all three roles (proposer, acceptor, learner):

* phase 1 (prepare/promise): a proposer picks a ballot ``(round, pid)`` and
  asks a majority of acceptors to promise not to accept lower ballots,
  learning the highest-ballot value any of them has accepted;
* phase 2 (accept/accepted): it then asks the majority to accept either that
  value or, if none, its own proposal;
* decision: once a majority accepts one ballot, the proposer broadcasts the
  decision and every node learns it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.consensus.spec import ConsensusResult
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimFuture
from repro.types import ProcessId

__all__ = ["PaxosNode"]

PREPARE = "PAXOS_PREPARE"
PROMISE = "PAXOS_PROMISE"
ACCEPT = "PAXOS_ACCEPT"
ACCEPTED = "PAXOS_ACCEPTED"
DECIDE = "PAXOS_DECIDE"

Ballot = Tuple[int, ProcessId]


@dataclass
class _AcceptorState:
    promised: Ballot = (0, "")
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Any = None


class PaxosNode(Process):
    """A combined proposer/acceptor/learner for one consensus instance."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        participants: Sequence[ProcessId],
        seed: int = 0,
    ) -> None:
        if pid not in participants:
            raise ConfigurationError(f"{pid!r} is not a participant")
        super().__init__(pid, network)
        self.participants = tuple(participants)
        self.majority = len(self.participants) // 2 + 1
        self._acceptor = _AcceptorState()
        self._round = 0
        # Seed from a string so the RNG stream is stable across interpreter
        # runs (tuple hashes are randomised by PYTHONHASHSEED).
        self._rng = random.Random(f"{seed}:{pid}")
        self.decided_value: Any = None
        self.decided = SimFuture(name=f"{pid}.decided")
        self.register_handler(PREPARE, self._on_prepare)
        self.register_handler(ACCEPT, self._on_accept)
        self.register_handler(DECIDE, self._on_decide)

    # -- acceptor role ------------------------------------------------------
    def _on_prepare(self, message: Message) -> None:
        ballot: Ballot = message.payload["ballot"]
        if ballot > self._acceptor.promised:
            self._acceptor.promised = ballot
            self.reply(
                message,
                PROMISE,
                {
                    "ok": True,
                    "ballot": ballot,
                    "accepted_ballot": self._acceptor.accepted_ballot,
                    "accepted_value": self._acceptor.accepted_value,
                },
            )
        else:
            self.reply(
                message,
                PROMISE,
                {"ok": False, "ballot": ballot, "promised": self._acceptor.promised},
            )

    def _on_accept(self, message: Message) -> None:
        ballot: Ballot = message.payload["ballot"]
        if ballot >= self._acceptor.promised:
            self._acceptor.promised = ballot
            self._acceptor.accepted_ballot = ballot
            self._acceptor.accepted_value = message.payload["value"]
            self.reply(message, ACCEPTED, {"ok": True, "ballot": ballot})
        else:
            self.reply(message, ACCEPTED, {"ok": False, "ballot": ballot})

    # -- learner role ----------------------------------------------------------
    def _on_decide(self, message: Message) -> None:
        self._learn(message.payload["value"])

    def _learn(self, value: Any) -> None:
        if not self.decided.done():
            self.decided_value = value
            self.decided.set_result(value)

    # -- proposer role -----------------------------------------------------------
    async def propose(self, value: Any) -> ConsensusResult:
        """Drive the synod protocol until a decision is learned."""
        proposed = value
        while not self.decided.done():
            self._round += 1
            ballot: Ballot = (self._round, self.pid)

            # Phase 1: prepare / promise.
            prepare = self.request_all(self.participants, PREPARE, {"ballot": ballot})
            replies = await prepare.wait_for_count(self.majority)
            positive = [reply for reply in replies if reply.payload["ok"]]
            if len(positive) < self.majority:
                await self._backoff(replies)
                continue

            # Adopt the highest-ballot accepted value, if any.
            accepted = [
                (reply.payload["accepted_ballot"], reply.payload["accepted_value"])
                for reply in positive
                if reply.payload["accepted_ballot"] is not None
            ]
            chosen = max(accepted)[1] if accepted else value

            # Phase 2: accept / accepted.
            accept = self.request_all(
                self.participants, ACCEPT, {"ballot": ballot, "value": chosen}
            )
            replies = await accept.wait_for_count(self.majority)
            positive = [reply for reply in replies if reply.payload["ok"]]
            if len(positive) < self.majority:
                await self._backoff(replies)
                continue

            # Decision: tell everyone (including self).
            self._learn(chosen)
            self.send_to_all(
                [p for p in self.participants if p != self.pid], DECIDE, {"value": chosen}
            )

        decided = await self.decided
        return ConsensusResult(
            process=self.pid,
            proposed=proposed,
            decided=decided,
            decided_at=self.loop.now,
        )

    async def _backoff(self, replies: List[Message]) -> None:
        """Adopt a higher round and back off for a random (seeded) delay."""
        for reply in replies:
            promised = reply.payload.get("promised")
            if promised is not None:
                self._round = max(self._round, promised[0])
        await self.loop.sleep(self._rng.uniform(1.0, 5.0) * (1 + self._round / 10))
