"""Consensus substrate.

The paper's negative results say weight reassignment *requires* consensus; the
positive baseline protocols from related work ([10], [22], [27]) therefore
need a consensus (or total-order) primitive to run on.  This package provides:

* :mod:`repro.consensus.spec` — the consensus interface and its properties.
* :mod:`repro.consensus.paxos` — single-decree Paxos (synod) over the
  simulated network, used where genuine quorum-based agreement is wanted.
* :mod:`repro.consensus.sequencer` — a total-order broadcast built around a
  sequencer process, the simplest consensus-equivalent primitive; the
  consensus-based reassignment baseline and the k-owner asset transfer are
  built on it.
"""

from repro.consensus.spec import ConsensusResult
from repro.consensus.paxos import PaxosNode
from repro.consensus.sequencer import Sequencer, TotalOrderClient

__all__ = ["ConsensusResult", "PaxosNode", "Sequencer", "TotalOrderClient"]
