"""Consensus: definitions and execution-level checkers.

The paper (Section II) uses the standard single-value consensus definition:

* **Agreement** — all correct processes decide the same value.
* **Validity** — if all correct processes propose the same value ``v`` they
  decide ``v`` (our implementations satisfy the stronger "the decided value
  was proposed by some process").
* **Termination** — all correct processes eventually decide.

This module holds the small data structures and trace checkers shared by the
Paxos implementation, the sequencer, and the reduction tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.types import ProcessId, VirtualTime

__all__ = [
    "ConsensusResult",
    "check_agreement",
    "check_validity",
    "check_termination",
]


@dataclass(frozen=True)
class ConsensusResult:
    """The decision reached by one process in one consensus instance."""

    process: ProcessId
    proposed: Any
    decided: Any
    decided_at: VirtualTime


def check_agreement(results: Iterable[ConsensusResult]) -> bool:
    """All decided values are identical."""
    decided = [result.decided for result in results]
    return all(value == decided[0] for value in decided) if decided else True


def check_validity(results: Iterable[ConsensusResult]) -> bool:
    """Every decided value was proposed by some participant."""
    results = list(results)
    proposals = {repr(result.proposed) for result in results}
    return all(repr(result.decided) in proposals for result in results)


def check_termination(
    results: Sequence[ConsensusResult], correct: Iterable[ProcessId]
) -> bool:
    """Every correct participant produced a decision."""
    deciders = {result.process for result in results}
    return all(process in deciders for process in correct)
