"""Total-order broadcast via a sequencer.

Several baselines (the consensus-based reassignment protocol of related work
[10], the k-owner asset transfer of [12]) only need commands to be applied in
the *same order everywhere*.  The simplest consensus-equivalent primitive that
achieves this is a sequencer: clients submit commands to a distinguished
process, which stamps them with consecutive sequence numbers and reliably
broadcasts them; replicas apply commands in sequence-number order.

A sequencer is of course a single point of failure — which is precisely the
point: the paper proves that the unrestricted problems cannot avoid this kind
of "consensus-like power".  The benchmark harness uses the sequencer in
failure-free runs (to compare latencies and semantics), and the tests use it
to demonstrate that crashing the sequencer blocks the consensus-based
baseline while the paper's consensus-free protocol keeps making progress.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimFuture
from repro.types import ProcessId

__all__ = ["Sequencer", "TotalOrderClient"]

SUBMIT = "SEQ_SUBMIT"
ORDERED = "SEQ_ORDERED"
ORDERED_ACK = "SEQ_ORDERED_ACK"


class Sequencer(Process):
    """The ordering process: stamps submitted commands and broadcasts them."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        replicas: Sequence[ProcessId],
    ) -> None:
        super().__init__(pid, network)
        self.replicas = tuple(replicas)
        self._next_seq = itertools.count(1)
        self.ordered_log: List[Dict[str, Any]] = []
        self.register_handler(SUBMIT, self._on_submit)

    def _on_submit(self, message: Message) -> None:
        sequence = next(self._next_seq)
        entry = {
            "seq": sequence,
            "command": message.payload["command"],
            "submitter": message.sender,
            "submit_id": message.payload["submit_id"],
        }
        self.ordered_log.append(entry)
        for replica in self.replicas:
            self.send(replica, ORDERED, dict(entry))


class TotalOrderClient:
    """Per-replica endpoint: submit commands and apply the ordered stream.

    ``apply`` is called exactly once per command, in sequence order, on every
    replica that stays correct.  :meth:`submit` resolves once the *local*
    replica has applied the submitted command, returning ``apply``'s result.
    """

    def __init__(
        self,
        process: Process,
        sequencer: ProcessId,
        apply: Callable[[ProcessId, Any], Any],
    ) -> None:
        self.process = process
        self.sequencer = sequencer
        self.apply = apply
        self._applied_up_to = 0
        self._pending: Dict[int, Dict[str, Any]] = {}
        self._waiting: Dict[int, SimFuture] = {}
        self._submit_ids = itertools.count(1)
        process.register_handler(ORDERED, self._on_ordered)

    # -- submitting --------------------------------------------------------------
    def submit(self, command: Any) -> SimFuture:
        """Submit ``command``; the future resolves with the local apply result."""
        submit_id = next(self._submit_ids)
        future = SimFuture(name=f"{self.process.pid}.submit[{submit_id}]")
        self._waiting[submit_id] = future
        self.process.send(
            self.sequencer, SUBMIT, {"command": command, "submit_id": submit_id}
        )
        return future

    # -- applying ------------------------------------------------------------------
    def _on_ordered(self, message: Message) -> None:
        entry = message.payload
        self._pending[entry["seq"]] = entry
        while self._applied_up_to + 1 in self._pending:
            self._applied_up_to += 1
            ready = self._pending.pop(self._applied_up_to)
            result = self.apply(ready["submitter"], ready["command"])
            if ready["submitter"] == self.process.pid:
                waiter = self._waiting.pop(ready["submit_id"], None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(result)

    @property
    def applied_count(self) -> int:
        return self._applied_up_to
