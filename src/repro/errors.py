"""Exception hierarchy for the ``repro`` library.

All library-specific exceptions derive from :class:`ReproError`, so callers
can catch a single base class.  Errors are split along the package structure:
simulation-kernel errors, configuration errors, and protocol-level violations
raised by the specification checkers (used heavily by the test-suite).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters.

    ``path`` optionally locates the offending value as a dotted section path
    (``workload.keys.zipf_s``, ``faults.crashes[0]``); spec validation
    attaches it so the CLI and the serving layer can render errors uniformly
    without parsing it back out of the message.  ``str(error)`` stays the
    bare message either way.
    """

    def __init__(self, message: str = "", path: "str | None" = None) -> None:
        super().__init__(message)
        self.path = path


class SimulationError(ReproError):
    """The simulation kernel reached an invalid state."""


class DeadlockError(SimulationError):
    """The simulation ran out of events while tasks were still pending.

    Raised by :meth:`repro.net.simloop.SimLoop.run` when asked to run a task
    to completion but no further events can make progress — the asynchronous
    equivalent of a deadlock (for instance, waiting for a quorum of replies
    when too many servers have crashed).
    """


class SimTimeoutError(SimulationError):
    """A virtual-time deadline elapsed before the awaited future resolved."""


class CrashedProcessError(SimulationError):
    """An operation was invoked on a process that has already crashed."""


class WorkerError(ReproError):
    """A worker process reported an exception that could not be re-raised.

    The resilient executor ships exceptions from worker processes back to
    the parent as pickled objects; when an exception does not pickle, the
    parent raises this carrier with the original type name and message.
    """


class SpecViolation(ReproError):
    """A safety property from the paper's problem definitions was violated.

    The specification checkers in :mod:`repro.core.spec` raise this error when
    a trace violates Integrity, P-Integrity, RP-Integrity or one of the
    Validity properties.  The protocol implementations never raise it during
    normal operation; it exists so tests and property-based verifiers can
    assert that executions stay within the specification.
    """


class IntegrityViolation(SpecViolation):
    """Integrity / P-Integrity / RP-Integrity (Definitions 3-5) was violated."""


class ValidityViolation(SpecViolation):
    """Validity-I / Validity-II (and their P-/RP- variants) was violated."""


class AtomicityViolation(SpecViolation):
    """A register history is not linearizable (Definition 6)."""


class TransferRejected(ReproError):
    """A ``transfer`` invocation was aborted (a zero-weight change was created).

    This is not an error condition of the protocol — the paper's RP-Validity-I
    explicitly allows null transfers — but the high-level
    :class:`repro.monitoring.controller.WeightController` treats it as a
    signal that the requested reassignment is not currently possible.
    """


class UnknownProcessError(ConfigurationError):
    """A message was addressed to a process the network does not know about."""
