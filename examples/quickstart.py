#!/usr/bin/env python3
"""Quickstart: a dynamic-weighted atomic register in a few lines.

Builds a 5-server cluster (tolerating f = 1 crash), writes and reads the
register, reassigns voting power with the paper's restricted pairwise
protocol, and shows that the client's view of the weights follows along.

Run with:  python examples/quickstart.py
"""

from repro import SystemConfig, build_dynamic_cluster
from repro.net.latency import UniformLatency


def main() -> None:
    config = SystemConfig.uniform(5, f=1)
    cluster = build_dynamic_cluster(
        config, latency=UniformLatency(0.5, 1.5, seed=7), client_count=2
    )
    writer = cluster.client("c1")
    reader = cluster.client("c2")
    servers = cluster.servers

    async def scenario() -> None:
        print(f"initial weights       : {config.initial_weights}")
        print(f"RP-Integrity bound    : {config.rp_min_weight:.3f}")

        await writer.write("hello, weighted world")
        print(f"reader sees           : {await reader.read()!r}")

        # s1 hands a quarter of its voting power to s2 (Algorithm 4).
        outcome = await servers["s1"].transfer("s2", 0.25)
        print(f"transfer effective?   : {outcome.effective} "
              f"(took {outcome.latency:.2f} time units)")

        # A rejected transfer: s1 cannot dip below the RP-Integrity bound.
        rejected = await servers["s1"].transfer("s3", 5.0)
        print(f"oversized transfer    : effective={rejected.effective} (null change)")

        await writer.write("value after reweighting")
        print(f"reader sees           : {await reader.read()!r}")
        print(f"reader's weight view  : {reader.observed_weights()}")

    cluster.loop.run_until_complete(scenario())
    print(f"virtual time elapsed  : {cluster.loop.now:.2f}")
    print(f"messages exchanged    : {cluster.network.messages_sent}")


if __name__ == "__main__":
    main()
