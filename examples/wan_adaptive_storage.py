#!/usr/bin/env python3
"""Adaptive geo-replicated storage: monitoring-driven weight reassignment.

The scenario the paper's introduction motivates: a storage system replicated
across heterogeneous wide-area sites.  A latency monitor probes the servers,
a policy computes inverse-latency target weights, and per-server controllers
move voting power towards the targets using the paper's consensus-free
``transfer`` operation — all while clients keep reading and writing.

Halfway through the run the fastest site slows down by 10x; the monitor picks
it up, the controllers shift the weight away from it, and client latency
recovers without any reconfiguration or consensus.

Run with:  python examples/wan_adaptive_storage.py
"""

from repro import SystemConfig, build_dynamic_cluster
from repro.monitoring import (
    LatencyMonitor,
    WeightController,
    install_probe_responder,
    proportional_inverse_latency_weights,
)
from repro.net.latency import PerLinkLatency, SlowdownLatency
from repro.net.process import Process
from repro.sim.metrics import summarize


SITES = {
    "s1": "frankfurt",
    "s2": "frankfurt",
    "s3": "london",
    "s4": "paris",
    "s5": "sydney",
}

# One-way latencies from the client's site (Frankfurt) to each server.
# London (s3) and Paris (s4) are moderately close; Sydney (s5) is far away.
CLIENT_RTT_ONE_WAY = {"s1": 1.0, "s2": 1.0, "s3": 5.0, "s4": 6.0, "s5": 40.0}


def build_latency_model():
    table = {}
    for server, one_way in CLIENT_RTT_ONE_WAY.items():
        for client in ("c1", "monitor"):
            table[(client, server)] = one_way
            table[(server, client)] = one_way
    # Server-to-server latencies: symmetric, derived from the same geography.
    for a, la in CLIENT_RTT_ONE_WAY.items():
        for b, lb in CLIENT_RTT_ONE_WAY.items():
            if a != b:
                table[(a, b)] = max(abs(la - lb), 1.0)
    base = PerLinkLatency(table, default=1.0, jitter=0.05, seed=3)
    # After t=300, the Frankfurt servers degrade by 10x (e.g. an overloaded AZ).
    return SlowdownLatency(base, slow=["s1", "s2"], factor=10.0, start_at=300.0)


def main() -> None:
    config = SystemConfig.uniform(5, f=1)
    cluster = build_dynamic_cluster(config, latency=build_latency_model(), client_count=1)
    client = cluster.client("c1")
    loop, network = cluster.loop, cluster.network

    for server in cluster.servers.values():
        install_probe_responder(server)
    monitor_process = Process("monitor", network)
    monitor = LatencyMonitor(config.servers)
    controllers = {
        pid: WeightController(server, tolerance=0.05)
        for pid, server in cluster.servers.items()
    }

    phases = {"healthy (t<300)": [], "degraded, adapting (300-700)": [], "adapted (t>700)": []}

    def phase_bucket():
        if loop.now < 300.0:
            return phases["healthy (t<300)"]
        if loop.now < 700.0:
            return phases["degraded, adapting (300-700)"]
        return phases["adapted (t>700)"]

    async def client_loop() -> None:
        await client.write("initial")
        for index in range(140):
            bucket = phase_bucket()
            if index % 3 == 0:
                await client.write(f"v{index}")
            else:
                await client.read()
            bucket.append(client.history[-1].latency)
            await loop.sleep(4.0)

    async def adaptation_loop() -> None:
        for _ in range(70):
            await loop.sleep(15.0)
            observed = await monitor.probe(monitor_process, timeout=500.0)
            if len(observed) < len(config.servers):
                continue
            targets = proportional_inverse_latency_weights(monitor.summary(), config)
            for controller in controllers.values():
                controller.set_targets(targets)
                await controller.step()

    from repro.net.simloop import gather

    loop.run_until_complete(gather(loop, [client_loop(), adaptation_loop()]))

    print("=== adaptive geo-replicated storage ===")
    final_weights = cluster.servers["s3"].local_weights()
    print("final weights (server view of s3):")
    for server, weight in sorted(final_weights.items()):
        marker = "  <- slowed at t=300" if server in ("s1", "s2") else ""
        print(f"    {server}: {weight:.3f}{marker}")
    for phase, samples in phases.items():
        if samples:
            print(f"client latency, {phase:<30}: {summarize(samples).as_row()}")
    print("(the controllers move voting power away from the degraded Frankfurt "
          "servers using only the consensus-free transfer operation)")


if __name__ == "__main__":
    main()
