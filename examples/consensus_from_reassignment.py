#!/usr/bin/env python3
"""The impossibility argument, executed: consensus from weight reassignment.

Runs Algorithm 1 (consensus from the unrestricted weight reassignment
problem) and Algorithm 2 (consensus from pairwise weight reassignment)
against linearizable oracle services, with every server proposing a different
value, and shows that Agreement, Validity and Termination hold — which is the
paper's proof that neither problem can be solved without consensus-level
power in an asynchronous failure-prone system.

Run with:  python examples/consensus_from_reassignment.py
"""

from repro import SimLoop, gather
from repro.core.reductions import (
    OraclePairwiseReassignment,
    OracleWeightReassignment,
    algorithm1_propose,
    algorithm2_propose,
    algorithm_config,
)
from repro.net.registers import SWMRRegisterArray


def run_algorithm1(n: int, f: int) -> None:
    loop = SimLoop()
    config = algorithm_config(n, f)
    registers = SWMRRegisterArray(config.servers)
    oracle = OracleWeightReassignment(loop, config)

    proposals = {i: f"proposal-of-s{i}" for i in range(1, n + 1)}
    decisions = loop.run_until_complete(
        gather(
            loop,
            [
                algorithm1_propose(loop, config, registers, oracle, i, proposals[i])
                for i in range(1, n + 1)
            ],
        )
    )
    effective = [
        record
        for record in oracle.trace
        if any(change.delta != 0 for change in record.created)
    ]
    print(f"Algorithm 1 (n={n}, f={f})")
    print(f"  proposals            : {list(proposals.values())}")
    print(f"  decisions            : {sorted(set(decisions))}")
    print(f"  effective reassigns  : {len(effective)} (must be exactly 1)")
    print(f"  agreement holds      : {len(set(decisions)) == 1}")
    print()


def run_algorithm2(n: int, f: int) -> None:
    loop = SimLoop()
    config = algorithm_config(n, f)
    registers = SWMRRegisterArray(config.servers)
    oracle = OraclePairwiseReassignment(loop, config)

    proposals = {i: f"proposal-of-s{i}" for i in range(1, n + 1)}
    decisions = loop.run_until_complete(
        gather(
            loop,
            [
                algorithm2_propose(loop, config, registers, oracle, i, proposals[i])
                for i in range(1, n + 1)
            ],
        )
    )
    totals = {round(sum(r.weights_after.values()), 6) for r in oracle.trace}
    print(f"Algorithm 2 (n={n}, f={f})")
    print(f"  decisions            : {sorted(set(decisions))}")
    print(f"  decided proposer in F: {decisions[0] in [proposals[i] for i in range(1, f + 1)]}")
    print(f"  total weight constant: {totals == {float(n)}}")
    print(f"  agreement holds      : {len(set(decisions)) == 1}")
    print()


def main() -> None:
    print("=== Theorem 1: consensus <= weight reassignment ===\n")
    for n, f in [(4, 1), (7, 2), (10, 3)]:
        run_algorithm1(n, f)
    print("=== Theorem 2: consensus <= pairwise weight reassignment ===\n")
    for n, f in [(7, 2), (10, 3)]:
        run_algorithm2(n, f)
    print("Both reductions decide a single proposed value on every run, i.e. they")
    print("solve consensus — so neither problem is implementable in an")
    print("asynchronous failure-prone system (Corollary 1).")


if __name__ == "__main__":
    main()
