#!/usr/bin/env python3
"""A step-by-step walkthrough of the paper's Fig. 1 / Example 2 scenario.

Seven servers, f = 2, everyone starts with weight 1.  Three transfers move
weight onto s1, s2 and s3 until those three servers alone form a weighted
quorum; two further transfers (the red box in Fig. 1) would push their
sources to the RP-Integrity bound and are therefore rejected as null
transfers.

Run with:  python examples/fig1_walkthrough.py
"""

from repro import SystemConfig
from repro.core.protocol import ReassignmentServer, read_changes
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.process import Process
from repro.net.simloop import SimLoop
from repro.quorum.weighted import WeightedMajorityQuorumSystem


def show_weights(title, weights, bound):
    formatted = ", ".join(f"{server}={weight:.1f}" for server, weight in sorted(weights.items()))
    print(f"  {title:<28}: {formatted}   (bound {bound:.2f})")


def main() -> None:
    config = SystemConfig.uniform(7, f=2)
    loop = SimLoop()
    network = Network(loop, ConstantLatency(1.0))
    servers = {pid: ReassignmentServer(pid, network, config) for pid in config.servers}
    observer = Process("observer", network)

    print("=== Fig. 1 / Example 2: restricted pairwise weight reassignment ===")
    print(f"n = {config.n}, f = {config.f}, RP-Integrity bound = {config.rp_min_weight:.2f}\n")

    async def scenario():
        show_weights("initial weights", servers["s1"].local_weights(), config.rp_min_weight)
        quorum = WeightedMajorityQuorumSystem(servers["s1"].local_weights())
        print(f"  smallest quorum size        : {quorum.smallest_quorum_size()}\n")

        plan = [("s4", "s1", 0.2), ("s5", "s2", 0.2), ("s6", "s3", 0.2)]
        for source, target, delta in plan:
            outcome = await servers[source].transfer(target, delta)
            print(f"  transfer({source} -> {target}, {delta}): "
                  f"{'effective' if outcome.effective else 'REJECTED'}")
        await loop.sleep(5.0)

        weights = servers["s1"].local_weights()
        show_weights("weights at t1", weights, config.rp_min_weight)
        quorum = WeightedMajorityQuorumSystem(weights)
        print(f"  smallest quorum size        : {quorum.smallest_quorum_size()}")
        print(f"  {{s1,s2,s3}} is a quorum      : {quorum.is_quorum(['s1', 's2', 's3'])}\n")

        print("  -- the red box of Fig. 1 (rejected by RP-Integrity) --")
        for source, target, delta in [("s6", "s2", 0.2), ("s7", "s3", 0.3)]:
            outcome = await servers[source].transfer(target, delta)
            print(f"  transfer({source} -> {target}, {delta}): "
                  f"{'effective' if outcome.effective else 'REJECTED (null change)'}")

        # A client can audit every change with read_changes (Algorithm 3).
        changes = await read_changes(observer, "s1", config)
        print(f"\n  observer's view of s1's changes: "
              f"{sorted((c.author, c.counter, round(c.delta, 2)) for c in changes)}")
        print(f"  observer computes W(s1) = {changes.weight_of('s1'):.1f}")

    loop.run_until_complete(scenario())


if __name__ == "__main__":
    main()
