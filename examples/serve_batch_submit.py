#!/usr/bin/env python3
"""Batch-submitting experiments to the lab service, end to end.

Boots an in-process ``repro.serve`` server on a free port, then acts as a
client would:

1. submits a Latin-hypercube sample of the quickstart grid as one sweep job
   and polls it to completion;
2. streams the results back as chunked JSONL (the bytes are exactly what
   ``python -m repro sweep --jsonl`` would have written);
3. submits the default quickstart run and checks it against the committed
   baseline (``benchmarks/baselines/quickstart.json``) — the service is a
   transport, so the baseline must agree run-for-run.

Against a real deployment, replace the in-process boot with
``python -m repro serve --port 8123`` in another terminal and point
``ServeClient`` at it.

Run with:  python examples/serve_batch_submit.py
"""

import json
import os
import tempfile
import threading

from repro.experiments.results import compare_payloads, load_payload
from repro.serve import ExperimentServer, ExperimentService
from repro.serve.client import ServeClient

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO, "benchmarks", "baselines", "quickstart.json")


def main() -> int:
    jobs_dir = tempfile.mkdtemp(prefix="repro-serve-example-")
    service = ExperimentService(jobs_dir, workers=1)
    server = ExperimentServer(("127.0.0.1", 0), service, quiet=True)
    service.start()
    threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    ).start()
    client = ServeClient(f"http://127.0.0.1:{server.server_address[1]}")
    print(f"server up at http://127.0.0.1:{server.server_address[1]} "
          f"(jobs dir: {jobs_dir})")

    try:
        # 1. An LHS sample of the quickstart grid, submitted as one job.
        job = client.submit({
            "kind": "sweep",
            "scenario": "quickstart",
            "params": {"workload.operations_per_client": 4},
            "grid": {"cluster.n": [4, 5, 6], "seed": [0, 1, 2]},
            "sample": 3,
            "sample_method": "lhs",
        })
        print(f"submitted {job['id']}: {job['total']} LHS-sampled runs")
        final = client.wait(job["id"], timeout=300)
        print(f"{job['id']} finished: state={final['state']} "
              f"done={final['done']}/{final['total']}")

        # 2. Stream the chunked JSONL results back.
        lines = client.results_bytes(job["id"]).decode("utf-8").splitlines()
        for line in lines:
            entry = json.loads(line)
            result = entry["result"]
            print(f"  {entry['run_id']}: operations={result['operations']} "
                  f"messages={result['messages']}")

        # 3. The default quickstart run must match the committed baseline.
        check = client.submit({"kind": "run", "scenario": "quickstart"})
        client.wait(check["id"], timeout=300)
        payload = [
            json.loads(line)
            for line in client.results_bytes(check["id"]).splitlines()
        ]
        diffs = compare_payloads(payload, load_payload(BASELINE))
        print(f"baseline comparison   : "
              f"{'OK' if not diffs else f'{len(diffs)} difference(s)'}")
        return 1 if diffs else 0
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()


if __name__ == "__main__":
    raise SystemExit(main())
