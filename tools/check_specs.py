#!/usr/bin/env python3
"""Example spec-file checks (the CI spec-check step).

Every checked-in ``examples/specs/*.json`` must:

* **load** — parse strictly through :func:`ScenarioSpec.from_dict` (unknown
  keys rejected) and pass :meth:`validate`;
* **build** — construct every runtime object the spec describes: the system
  config, the latency model, the cluster, the workload, the fault schedule
  and (when enabled) the monitoring harness;
* **run one step** — simulate the first few virtual-time units end to end,
  proving the built objects actually execute together (a spec can be
  well-formed and still dead on arrival — e.g. a partition that cuts every
  client off).

Run from anywhere (``src`` is put on the path automatically)::

    python tools/check_specs.py

Exit status 0 means every spec file is runnable; 1 lists every problem.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ReproError, SimTimeoutError  # noqa: E402
from repro.experiments.spec import load_spec_file, run_spec  # noqa: E402

SPEC_DIR = REPO_ROOT / "examples" / "specs"

# Enough virtual time for the first protocol round trips to complete, small
# enough that CI never simulates a full scenario here (the baseline gate
# covers full runs).
ONE_STEP_BUDGET = 3.0


def check_spec_file(path: Path) -> List[str]:
    """Problems with one spec file (empty list = loads, builds, and steps)."""
    name = path.relative_to(REPO_ROOT)
    try:
        spec = load_spec_file(str(path))
    except ReproError as error:
        return [f"{name}: does not load: {error}"]
    if spec.name != path.stem:
        return [f"{name}: spec name {spec.name!r} does not match the file name"]
    try:
        # Build every runtime object the spec describes, without running.
        config = spec.cluster.system_config()
        cluster = spec.cluster.build(
            config, spec.latency.build(seed=spec.seed, shards=spec.cluster.shards)
        )
        spec.workload.build(tuple(cluster.clients), seed=spec.seed)
        spec.faults.build(shards=spec.cluster.shards)
        if spec.monitoring.enabled:
            spec.monitoring.build(cluster)
            cluster.loop.run(until=0.0)  # start the control task cleanly
    except ReproError as error:
        return [f"{name}: does not build: {error}"]
    try:
        # One step of the real driver: a fresh build, simulated briefly.
        run_spec(spec.with_overrides({"max_time": ONE_STEP_BUDGET}))
    except SimTimeoutError:
        pass  # expected: the budget cuts the run short after the first steps
    except ReproError as error:
        return [f"{name}: does not run: {error}"]
    return []


def main() -> int:
    spec_files = sorted(SPEC_DIR.glob("*.json"))
    if not spec_files:
        print(f"no spec files found under {SPEC_DIR}", file=sys.stderr)
        return 1
    problems: List[str] = []
    for path in spec_files:
        problems.extend(check_spec_file(path))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"\n{len(problems)} problem(s) found", file=sys.stderr)
        return 1
    print(f"spec check ok: {len(spec_files)} spec file(s) load, build and run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
