#!/usr/bin/env python3
"""Documentation consistency checks (the CI docs job).

Three checks, all pure standard library:

* **link check** — every relative markdown link in the repository's ``*.md``
  files must point at an existing file or directory (external ``http(s)``/
  ``mailto`` links and pure ``#anchor`` links are skipped);
* **scenario-table drift check** — the ``## Scenario catalogue`` table in
  ``README.md`` must list exactly the scenarios the registry knows, i.e. the
  names ``python -m repro list`` prints.  A scenario added to the catalogue
  without a README row (or a README row for a deleted scenario) fails CI.
* **required-sections check** — load-bearing sections other docs and tools
  link into (see ``REQUIRED_SECTIONS``) must keep their exact headings, so
  renaming one fails CI instead of silently breaking anchors.

Run from anywhere::

    python tools/check_docs.py

Exit status 0 means the docs are consistent; 1 lists every problem found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline markdown links: [text](target).  Reference-style links are not used
# in this repository; images share the same syntax and are checked alike.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Rows of the scenario catalogue table: | `name` | description |
_SCENARIO_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|")

_SKIP_SCHEMES = ("http://", "https://", "mailto:")

# Sections other documentation (and CI jobs) deep-link into.  Paths are
# repo-relative; headings must appear verbatim at line start.
REQUIRED_SECTIONS = {
    "docs/ARCHITECTURE.md": [
        "## Observability",
        "## Trace analytics",
        "## Chaos campaigns",
        "## Execution resilience",
        "## Serving layer",
    ],
    "README.md": [
        "## Scenario catalogue",
        "## Tracing a run",
        "## Analyzing a trace",
        "## Chaos campaigns",
        "## Resilient sweeps & resume",
        "## Experiment lab as a service",
    ],
}


def markdown_files(root: Path = REPO_ROOT) -> List[Path]:
    """Every tracked-looking markdown file (hidden directories skipped)."""
    files = []
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in path.relative_to(root).parts):
            continue
        files.append(path)
    return files


def check_links(path: Path, root: Path = REPO_ROOT) -> List[str]:
    """Relative-link problems in one markdown file (empty list = clean)."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        base = root if relative.startswith("/") else path.parent
        resolved = (base / relative.lstrip("/")).resolve()
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(root)}: broken link {target!r} "
                f"(resolved to {resolved})"
            )
    return problems


def readme_scenario_names(readme: Path) -> Set[str]:
    """The scenario names listed in README's ``## Scenario catalogue`` table."""
    names: Set[str] = set()
    in_catalogue = False
    for line in readme.read_text(encoding="utf-8").splitlines():
        if line.startswith("## "):
            in_catalogue = line.strip() == "## Scenario catalogue"
            continue
        if in_catalogue:
            match = _SCENARIO_ROW.match(line.strip())
            if match:
                names.add(match.group(1))
    return names


def registered_scenario_names() -> Set[str]:
    """The names ``python -m repro list`` would print."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.experiments.registry import scenario_names

    return set(scenario_names())


def check_scenario_table(root: Path = REPO_ROOT) -> List[str]:
    """Drift between README's scenario table and the registry (empty = clean)."""
    readme = root / "README.md"
    if not readme.exists():
        return [f"missing {readme}"]
    documented = readme_scenario_names(readme)
    if not documented:
        return ["README.md: no '## Scenario catalogue' table rows found"]
    registered = registered_scenario_names()
    problems = []
    for name in sorted(registered - documented):
        problems.append(
            f"README.md: scenario {name!r} is registered but missing from "
            "the '## Scenario catalogue' table"
        )
    for name in sorted(documented - registered):
        problems.append(
            f"README.md: scenario {name!r} is in the catalogue table but "
            "not registered (run `python -m repro list`)"
        )
    return problems


def check_required_sections(root: Path = REPO_ROOT) -> List[str]:
    """Missing load-bearing headings (empty = clean)."""
    problems = []
    for relative, headings in REQUIRED_SECTIONS.items():
        path = root / relative
        if not path.exists():
            problems.append(f"missing {relative} (required sections live there)")
            continue
        lines = path.read_text(encoding="utf-8").splitlines()
        for heading in headings:
            if not any(line.strip() == heading for line in lines):
                problems.append(
                    f"{relative}: required section {heading!r} not found "
                    "(renamed or removed? other docs link to it)"
                )
    return problems


def main() -> int:
    problems: List[str] = []
    for path in markdown_files():
        problems.extend(check_links(path))
    problems.extend(check_scenario_table())
    problems.extend(check_required_sections())
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print("docs ok: links resolve, scenario table matches the registry, "
          "required sections present")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
