#!/usr/bin/env python3
"""The trace regression gate (the CI trace job).

Runs the ``fig1-walkthrough`` scenario with tracing enabled, then asserts
four things about the trace file it produced:

* **schema** — every JSONL line validates against the record schema in
  :mod:`repro.obs.trace` (closed category/phase sets, ordered ``seq``,
  flow records carry ids);
* **invariants** — the structural and semantic checks in
  :mod:`repro.obs.analysis` hold (balanced spans, paired flows, quorum
  nesting, weight conservation) — the same verdict as
  ``python -m repro trace check``;
* **digest** — the SHA-256 of the file matches the golden digest committed
  in ``benchmarks/baselines/fig1-walkthrough.trace.sha256``.  Because the
  digest is defined over the canonical JSONL bytes, this pins the *exact*
  artifact bytes, not just record count or shape;
* **exporter** — the Chrome ``trace_event`` conversion succeeds and yields
  one event per record plus thread-name metadata (the file Perfetto loads).

A digest mismatch means event ordering or instrumentation changed.  To
reproduce the digest gate locally with one command::

    PYTHONPATH=src python -m repro run fig1-walkthrough --trace out.jsonl --quiet
    PYTHONPATH=src python -m repro trace digest out.jsonl \
        --check benchmarks/baselines/fig1-walkthrough.trace.sha256

If the change is intentional, regenerate the golden file::

    sha256sum out.jsonl | cut -d' ' -f1 > benchmarks/baselines/fig1-walkthrough.trace.sha256

Run from anywhere: ``python tools/check_trace.py [--keep PATH]``.  With
``--keep`` the trace file is written to PATH (CI uploads it as an artifact);
otherwise a temporary directory is used.  Exit status 0 means the gate holds.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

GOLDEN_FILE = os.path.join(
    REPO_ROOT, "benchmarks", "baselines", "fig1-walkthrough.trace.sha256"
)
SCENARIO = "fig1-walkthrough"


def check_trace(trace_path: str) -> int:
    from repro.experiments.cli import main as repro_main
    from repro.obs import check_trace_invariants, read_trace, to_chrome_trace

    status = repro_main(["run", SCENARIO, "--trace", trace_path, "--quiet"])
    if status != 0:
        print(f"error: `repro run {SCENARIO} --trace` exited {status}",
              file=sys.stderr)
        return 1

    # Schema: read_trace validates every record and raises on the first bad
    # line with its line number.
    records = read_trace(trace_path)
    if not records:
        print(f"error: {trace_path} contains no trace records", file=sys.stderr)
        return 1

    # Invariants: the structural/semantic checks behind `repro trace check`.
    report = check_trace_invariants(records)
    if not report.ok:
        for finding in report.errors:
            print(f"error: invariant [{finding.check}] seq {finding.seq}: "
                  f"{finding.message}", file=sys.stderr)
        return 1

    with open(GOLDEN_FILE, "r", encoding="utf-8") as handle:
        golden = handle.read().strip()
    with open(trace_path, "rb") as handle:
        actual = hashlib.sha256(handle.read()).hexdigest()
    if actual != golden:
        print(
            f"error: trace digest mismatch for {SCENARIO}:\n"
            f"  got      {actual}\n"
            f"  expected {golden} (from {os.path.relpath(GOLDEN_FILE, REPO_ROOT)})\n"
            "If the change is intentional, regenerate the golden file "
            "(see this script's docstring).",
            file=sys.stderr,
        )
        return 1

    chrome = to_chrome_trace(records)
    events = chrome["traceEvents"]
    metadata = [event for event in events if event["ph"] == "M"]
    if len(events) != len(records) + len(metadata):
        print(
            f"error: exporter produced {len(events)} events for "
            f"{len(records)} records + {len(metadata)} metadata entries",
            file=sys.stderr,
        )
        return 1

    print(
        f"trace ok: {SCENARIO} produced {len(records)} schema-valid records "
        f"({len(report.warnings)} invariant warning(s), 0 errors), digest "
        f"{actual[:12]}... matches golden, exporter emits "
        f"{len(events)} Chrome events"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--keep", metavar="PATH", default=None,
        help="write the trace file to PATH instead of a temporary directory",
    )
    args = parser.parse_args(argv)
    if args.keep:
        keep_dir = os.path.dirname(os.path.abspath(args.keep))
        os.makedirs(keep_dir, exist_ok=True)
        return check_trace(args.keep)
    with tempfile.TemporaryDirectory() as tmp:
        return check_trace(os.path.join(tmp, f"{SCENARIO}.jsonl"))


if __name__ == "__main__":
    raise SystemExit(main())
