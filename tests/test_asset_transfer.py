"""Tests for the asset-transfer substrate (Section VIII comparator)."""

from __future__ import annotations

import pytest

from repro.assettransfer.accounts import AccountBook, TransferOp
from repro.assettransfer.k_asset import KAssetReplica
from repro.assettransfer.one_asset import OneAssetServer
from repro.consensus.sequencer import Sequencer
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import Network
from repro.net.simloop import SimLoop, gather


class TestAccountBook:
    def test_valid_transfer_applies(self):
        book = AccountBook({"a": 10.0, "b": 0.0}, {"a": ["s1"], "b": ["s2"]})
        op = TransferOp("s1", 1, "a", "b", 4.0)
        assert book.apply(op)
        assert book.balance("a") == 6.0
        assert book.balance("b") == 4.0

    def test_overdraw_rejected(self):
        book = AccountBook({"a": 3.0, "b": 0.0}, {"a": ["s1"], "b": ["s2"]})
        assert not book.apply(TransferOp("s1", 1, "a", "b", 5.0))
        assert book.balance("a") == 3.0

    def test_non_owner_rejected(self):
        book = AccountBook({"a": 3.0, "b": 0.0}, {"a": ["s1"], "b": ["s2"]})
        assert not book.apply(TransferOp("s2", 1, "a", "b", 1.0))

    def test_non_positive_amount_rejected(self):
        book = AccountBook({"a": 3.0, "b": 0.0}, {"a": ["s1"], "b": ["s2"]})
        assert not book.apply(TransferOp("s1", 1, "a", "b", 0.0))
        assert not book.apply(TransferOp("s1", 1, "a", "b", -1.0))

    def test_total_is_conserved(self):
        book = AccountBook({"a": 5.0, "b": 5.0}, {"a": ["s1"], "b": ["s2"]})
        book.apply(TransferOp("s1", 1, "a", "b", 2.5))
        book.apply(TransferOp("s2", 1, "b", "a", 1.0))
        assert book.total() == pytest.approx(10.0)

    def test_negative_initial_balance_rejected(self):
        with pytest.raises(ConfigurationError):
            AccountBook({"a": -1.0}, {"a": ["s1"]})

    def test_owners_must_cover_accounts(self):
        with pytest.raises(ConfigurationError):
            AccountBook({"a": 1.0}, {})

    def test_max_owner_count(self):
        book = AccountBook(
            {"a": 1.0, "b": 1.0}, {"a": ["s1"], "b": ["s1", "s2", "s3"]}
        )
        assert book.max_owner_count() == 3


def build_one_asset(n, f, balance=10.0, latency=None):
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    server_ids = [f"s{i}" for i in range(1, n + 1)]
    balances = {pid: balance for pid in server_ids}
    servers = {
        pid: OneAssetServer(pid, network, server_ids, f, balances) for pid in server_ids
    }
    return loop, network, servers


class TestOneAssetTransfer:
    def test_transfer_updates_all_replicas(self):
        loop, _, servers = build_one_asset(4, 1)

        async def go():
            return await servers["s1"].transfer("s2", 3.0)

        outcome = loop.run_until_complete(go())
        assert outcome.applied
        loop.run()
        for server in servers.values():
            assert server.balance_of("s1") == pytest.approx(7.0)
            assert server.balance_of("s2") == pytest.approx(13.0)

    def test_overdraw_rejected_locally_without_messages(self):
        loop, network, servers = build_one_asset(4, 1)

        async def go():
            return await servers["s1"].transfer("s2", 100.0)

        outcome = loop.run_until_complete(go())
        assert not outcome.applied
        assert network.sent_by_kind["AT_RB"] == 0

    def test_owner_only_semantics(self):
        """Only the account's owner can spend it: s1 cannot move s2's assets."""
        loop, _, servers = build_one_asset(3, 1)
        # The API itself enforces ownership: a server can only name itself as
        # the source (transfer() uses self.pid); verify the book agrees.
        assert not servers["s1"].book.can_apply(
            TransferOp("s1", 1, "s2", "s1", 1.0)
        )

    def test_concurrent_transfers_conserve_total(self):
        loop, _, servers = build_one_asset(5, 2, balance=10.0, latency=UniformLatency(0.5, 2.0, seed=9))

        async def spender(pid, target):
            for _ in range(3):
                await servers[pid].transfer(target, 1.0)

        loop.run_until_complete(
            gather(
                loop,
                [spender("s1", "s2"), spender("s2", "s3"), spender("s3", "s1")],
            )
        )
        loop.run()
        for server in servers.values():
            assert server.book.total() == pytest.approx(50.0)
            assert all(balance >= 0 for balance in server.book.balances().values())

    def test_transfer_completes_despite_f_crashes(self):
        loop, network, servers = build_one_asset(5, 2)
        network.crash("s4")
        network.crash("s5")

        async def go():
            return await servers["s1"].transfer("s2", 1.0)

        assert loop.run_until_complete(go()).applied

    def test_unknown_target_rejected(self):
        loop, _, servers = build_one_asset(3, 1)

        async def go():
            await servers["s1"].transfer("nope", 1.0)

        with pytest.raises(ConfigurationError):
            loop.run_until_complete(go())


def build_k_asset(owners_per_account=2):
    loop = SimLoop()
    network = Network(loop, UniformLatency(0.5, 1.5, seed=4))
    replica_ids = [f"s{i}" for i in range(1, 5)]
    sequencer = Sequencer("seq", network, replica_ids)
    balances = {"shared": 10.0, "other": 0.0}
    owners = {"shared": replica_ids[:owners_per_account], "other": replica_ids}
    replicas = {
        pid: KAssetReplica(pid, network, "seq", balances, owners) for pid in replica_ids
    }
    return loop, network, replicas


class TestKAssetTransfer:
    def test_ordered_transfers_apply_consistently(self):
        loop, _, replicas = build_k_asset()

        async def go():
            first = await replicas["s1"].transfer("shared", "other", 4.0)
            second = await replicas["s2"].transfer("shared", "other", 4.0)
            return first, second

        first, second = loop.run_until_complete(go())
        assert first.applied and second.applied
        loop.run()
        for replica in replicas.values():
            assert replica.balance_of("shared") == pytest.approx(2.0)

    def test_conflicting_overdraws_resolved_identically_everywhere(self):
        """Two co-owners race to overdraw; the total order rejects exactly one."""
        loop, _, replicas = build_k_asset()

        async def go():
            return await gather(
                loop,
                [
                    replicas["s1"].transfer("shared", "other", 7.0),
                    replicas["s2"].transfer("shared", "other", 7.0),
                ],
            )

        outcomes = loop.run_until_complete(go())
        assert sorted(outcome.applied for outcome in outcomes) == [False, True]
        loop.run()
        balances = {pid: replica.balance_of("shared") for pid, replica in replicas.items()}
        assert all(balance == pytest.approx(3.0) for balance in balances.values())

    def test_non_owner_cannot_spend(self):
        loop, _, replicas = build_k_asset(owners_per_account=2)

        async def go():
            await replicas["s4"].transfer("shared", "other", 1.0)

        with pytest.raises(ConfigurationError):
            loop.run_until_complete(go())

    def test_unknown_account_rejected(self):
        loop, _, replicas = build_k_asset()

        async def go():
            await replicas["s1"].transfer("ghost", "other", 1.0)

        with pytest.raises(ConfigurationError):
            loop.run_until_complete(go())
