"""Tests for the consensus reductions (Algorithms 1, 2) and the oracle services.

These tests execute the paper's impossibility arguments: given a linearizable
("oracle") solution of the unrestricted / pairwise weight reassignment
problems, Algorithms 1 and 2 solve consensus — Agreement, Validity and
Termination all hold.
"""

from __future__ import annotations

import pytest

from repro.consensus.spec import check_agreement, check_validity
from repro.core.change import Change
from repro.core.reductions import (
    OraclePairwiseReassignment,
    OracleWeightReassignment,
    algorithm1_propose,
    algorithm2_propose,
    algorithm_config,
    paper_initial_weights,
)
from repro.core.spec import SystemConfig, check_integrity
from repro.errors import ConfigurationError
from repro.net.registers import SWMRRegisterArray
from repro.net.simloop import SimLoop, gather
from repro.types import server_name, server_set


class TestPaperInitialWeights:
    def test_formulas(self):
        weights = paper_initial_weights(7, 2)
        assert weights["s1"] == pytest.approx(6 / 4)
        assert weights["s3"] == pytest.approx(8 / 10)
        assert sum(weights.values()) == pytest.approx(7.0)

    def test_integrity_holds_initially(self):
        for n, f in [(4, 1), (7, 2), (10, 3), (13, 4)]:
            weights = paper_initial_weights(n, f)
            assert check_integrity(weights, f), (n, f)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_initial_weights(3, 0)
        with pytest.raises(ConfigurationError):
            paper_initial_weights(3, 3)


class TestOracleWeightReassignment:
    def test_single_reassignment_is_effective(self):
        loop = SimLoop()
        config = algorithm_config(7, 2)
        oracle = OracleWeightReassignment(loop, config)

        change = loop.run_until_complete(oracle.reassign("s1", "s1", 0.5))
        assert change.delta == 0.5

    def test_integrity_violating_reassignment_is_aborted(self):
        loop = SimLoop()
        config = algorithm_config(7, 2)
        oracle = OracleWeightReassignment(loop, config)

        async def go():
            first = await oracle.reassign("s1", "s1", 0.5)
            second = await oracle.reassign("s2", "s2", 0.5)
            return first, second

        first, second = loop.run_until_complete(go())
        assert first.delta == 0.5
        assert second.delta == 0.0  # aborted: two non-null changes would break Integrity

    def test_integrity_invariant_over_trace(self):
        loop = SimLoop()
        config = algorithm_config(7, 2)
        oracle = OracleWeightReassignment(loop, config)

        async def go():
            for index in range(1, 8):
                delta = 0.5 if index <= 2 else -0.5
                await oracle.reassign(server_name(index), server_name(index), delta)

        loop.run_until_complete(go())
        for record in oracle.trace:
            assert check_integrity(record.weights_after, config.f)

    def test_zero_delta_rejected(self):
        loop = SimLoop()
        oracle = OracleWeightReassignment(loop, algorithm_config(4, 1))

        async def go():
            await oracle.reassign("s1", "s1", 0.0)

        with pytest.raises(ConfigurationError):
            loop.run_until_complete(go())

    def test_read_changes_contains_initial_change(self):
        loop = SimLoop()
        config = algorithm_config(4, 1)
        oracle = OracleWeightReassignment(loop, config)
        changes = loop.run_until_complete(oracle.read_changes("s1"))
        assert Change("s1", 1, "s1", config.initial_weights["s1"]) in changes

    def test_example1_semantics(self):
        """The exact sequence of Example 1 (Section III)."""
        loop = SimLoop()
        config = SystemConfig.uniform(4, f=1)
        oracle = OracleWeightReassignment(loop, config)

        async def go():
            created = await oracle.reassign("s1", "s1", 1.5)
            assert created.delta == 1.5
            after_first = await oracle.read_changes("s1")
            assert after_first.weight_of("s1") == pytest.approx(2.5)
            # s3 tries to take 0.5 from s2: the f=1 heaviest (s1 at 2.5) would
            # reach half of the new total (5.0 - 0.5)/2 = 2.25 < 2.5 -> abort.
            aborted = await oracle.reassign("s3", "s2", -0.5)
            assert aborted.delta == 0.0
            final = await oracle.read_changes("s2")
            return final

        final = loop.run_until_complete(go())
        assert final.weight_of("s2") == pytest.approx(1.0)
        assert Change("s3", 2, "s2", 0.0) in final


class TestOraclePairwiseReassignment:
    def test_total_weight_is_conserved(self):
        loop = SimLoop()
        config = algorithm_config(7, 2)
        oracle = OraclePairwiseReassignment(loop, config)

        async def go():
            await oracle.transfer("s3", "s3", "s1", 0.4)
            await oracle.transfer("s4", "s4", "s1", 0.4)
            await oracle.transfer("s1", "s1", "s2", 0.1)

        loop.run_until_complete(go())
        for record in oracle.trace:
            assert sum(record.weights_after.values()) == pytest.approx(
                config.total_initial_weight
            )

    def test_second_conflicting_transfer_is_null(self):
        loop = SimLoop()
        config = algorithm_config(7, 2)
        oracle = OraclePairwiseReassignment(loop, config)

        async def go():
            first = await oracle.transfer("s3", "s3", "s1", 0.4)
            second = await oracle.transfer("s4", "s4", "s1", 0.4)
            return first, second

        first, second = loop.run_until_complete(go())
        assert first[0].delta == -0.4
        assert second[0].delta == 0.0

    def test_invalid_transfers_rejected(self):
        loop = SimLoop()
        oracle = OraclePairwiseReassignment(loop, algorithm_config(4, 1))

        async def zero():
            await oracle.transfer("s1", "s1", "s2", 0.0)

        async def same():
            await oracle.transfer("s1", "s1", "s1", 0.5)

        for bad in (zero, same):
            with pytest.raises(ConfigurationError):
                loop.run_until_complete(bad())


class TestAlgorithm1Reduction:
    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3)])
    def test_consensus_properties(self, n, f):
        loop = SimLoop()
        config = algorithm_config(n, f)
        registers = SWMRRegisterArray(config.servers)
        oracle = OracleWeightReassignment(loop, config)
        proposals = {i: f"value-{i}" for i in range(1, n + 1)}

        decisions = loop.run_until_complete(
            gather(
                loop,
                [
                    algorithm1_propose(loop, config, registers, oracle, i, proposals[i])
                    for i in range(1, n + 1)
                ],
            )
        )
        # Termination: every server decided.  Agreement: all the same value.
        assert len(decisions) == n
        assert len(set(decisions)) == 1
        # Validity: the decision is one of the proposals.
        assert decisions[0] in proposals.values()

    def test_exactly_one_non_null_change_exists(self):
        loop = SimLoop()
        config = algorithm_config(7, 2)
        registers = SWMRRegisterArray(config.servers)
        oracle = OracleWeightReassignment(loop, config)

        loop.run_until_complete(
            gather(
                loop,
                [
                    algorithm1_propose(loop, config, registers, oracle, i, i)
                    for i in range(1, 8)
                ],
            )
        )
        non_null = [
            record
            for record in oracle.trace
            if any(change.delta != 0 for change in record.created)
        ]
        assert len(non_null) == 1

    def test_decision_matches_winner_register(self):
        loop = SimLoop()
        config = algorithm_config(4, 1)
        registers = SWMRRegisterArray(config.servers)
        oracle = OracleWeightReassignment(loop, config)

        decisions = loop.run_until_complete(
            gather(
                loop,
                [
                    algorithm1_propose(loop, config, registers, oracle, i, f"p{i}")
                    for i in range(1, 5)
                ],
            )
        )
        winner = next(
            record.author
            for record in oracle.trace
            if any(change.delta != 0 for change in record.created)
        )
        assert decisions[0] == registers.read(winner)


class TestAlgorithm2Reduction:
    @pytest.mark.parametrize("n,f", [(4, 1), (7, 2), (10, 3)])
    def test_consensus_properties(self, n, f):
        loop = SimLoop()
        config = algorithm_config(n, f)
        registers = SWMRRegisterArray(config.servers)
        oracle = OraclePairwiseReassignment(loop, config)
        proposals = {i: f"value-{i}" for i in range(1, n + 1)}

        decisions = loop.run_until_complete(
            gather(
                loop,
                [
                    algorithm2_propose(loop, config, registers, oracle, i, proposals[i])
                    for i in range(1, n + 1)
                ],
            )
        )
        assert len(decisions) == n
        assert len(set(decisions)) == 1
        assert decisions[0] in proposals.values()

    def test_decided_value_comes_from_outside_f(self):
        """Algorithm 2 decides a proposal of a server outside F = {s1..sf}."""
        loop = SimLoop()
        config = algorithm_config(7, 2)
        registers = SWMRRegisterArray(config.servers)
        oracle = OraclePairwiseReassignment(loop, config)

        decisions = loop.run_until_complete(
            gather(
                loop,
                [
                    algorithm2_propose(loop, config, registers, oracle, i, f"p{i}")
                    for i in range(1, 8)
                ],
            )
        )
        decided = decisions[0]
        assert decided in {f"p{i}" for i in range(3, 8)}  # s3..s7 are outside F

    def test_f_internal_shuffles_keep_f_total_constant(self):
        loop = SimLoop()
        config = algorithm_config(7, 2)
        registers = SWMRRegisterArray(config.servers)
        oracle = OraclePairwiseReassignment(loop, config)

        loop.run_until_complete(
            gather(
                loop,
                [
                    algorithm2_propose(loop, config, registers, oracle, i, i)
                    for i in range(1, 8)
                ],
            )
        )
        final_weights = oracle.current_weights()
        f_total = sum(final_weights[server_name(i)] for i in range(1, 3))
        # F's internal 0.1-shuffles cancel out; the one effective 0.4 transfer
        # into s1 is the only net change.
        assert f_total == pytest.approx((7 - 1) / 2 + 0.4)

    def test_total_weight_never_changes(self):
        loop = SimLoop()
        config = algorithm_config(10, 3)
        registers = SWMRRegisterArray(config.servers)
        oracle = OraclePairwiseReassignment(loop, config)

        loop.run_until_complete(
            gather(
                loop,
                [
                    algorithm2_propose(loop, config, registers, oracle, i, i)
                    for i in range(1, 11)
                ],
            )
        )
        for record in oracle.trace:
            assert sum(record.weights_after.values()) == pytest.approx(10.0)
