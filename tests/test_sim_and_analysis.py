"""Tests for the simulation harness (workloads, failures, runner) and analysis."""

from __future__ import annotations

import pytest

from repro.analysis import (
    expected_quorum_latency,
    fastest_quorum,
    inverse_latency_weights,
    quorum_latency_table,
    quorum_size_after_reassignment,
)
from repro.core.spec import SystemConfig
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, UniformLatency
from repro.quorum.majority import MajorityQuorumSystem
from repro.quorum.weighted import WeightedMajorityQuorumSystem
from repro.sim import (
    FailureSchedule,
    build_dynamic_cluster,
    build_static_cluster,
    run_workload,
    summarize,
    uniform_workload,
)
from repro.sim.metrics import percentile
from repro.types import server_set


class TestWorkloadGeneration:
    def test_counts_and_first_write(self):
        workload = uniform_workload(["c1", "c2"], 10, read_ratio=0.5, seed=1)
        counts = workload.counts()
        assert counts["total"] == 20
        assert workload.for_client("c1")[0].kind == "write"

    def test_read_ratio_extremes(self):
        all_reads = uniform_workload(["c1"], 10, read_ratio=1.0, seed=2)
        # The forced first write is the only write.
        assert all_reads.counts()["writes"] == 1
        all_writes = uniform_workload(["c1"], 10, read_ratio=0.0, seed=2)
        assert all_writes.counts()["reads"] == 0

    def test_deterministic_for_same_seed(self):
        a = uniform_workload(["c1", "c2"], 5, seed=7)
        b = uniform_workload(["c1", "c2"], 5, seed=7)
        assert a.operations == b.operations

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            uniform_workload([], 5)
        with pytest.raises(ConfigurationError):
            uniform_workload(["c1"], 0)
        with pytest.raises(ConfigurationError):
            uniform_workload(["c1"], 5, read_ratio=2.0)

    def test_clients_listed_in_order(self):
        workload = uniform_workload(["c2", "c1"], 2, seed=0)
        assert workload.clients() == ("c2", "c1")


class TestMetrics:
    def test_percentile_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile(samples, 0.5) == pytest.approx(2.5)

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([], 0.5)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 1.5)

    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 10.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(4.0)
        assert summary.maximum == 10.0
        assert "mean" in summary.as_row()

    def test_summary_of_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestFailureSchedule:
    def test_crash_events_fire_at_time(self):
        config = SystemConfig.uniform(5, f=2)
        cluster = build_dynamic_cluster(config)
        schedule = FailureSchedule().crash("s5", at=3.0)
        schedule.arm(cluster.loop, cluster.network)
        cluster.loop.run(until=10.0)
        assert cluster.network.is_crashed("s5")

    def test_crashed_by(self):
        schedule = FailureSchedule().crash("s1", 5.0).crash("s2", 10.0)
        assert schedule.crashed_by(6.0) == ("s1",)
        assert schedule.max_simultaneous_crashes() == 2

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule().crash("s1", -1.0)


class TestClusterBuilders:
    def test_dynamic_cluster_shape(self):
        config = SystemConfig.uniform(5, f=1)
        cluster = build_dynamic_cluster(config, client_count=3)
        assert len(cluster.servers) == 5
        assert len(cluster.clients) == 3
        assert cluster.flavour == "dynamic-weighted"
        assert cluster.any_client() is cluster.client("c1")

    def test_static_cluster_flavours(self):
        config = SystemConfig.uniform(5, f=1)
        assert build_static_cluster(config).flavour == "static-majority"
        assert build_static_cluster(config, weighted=True).flavour == "static-weighted"

    def test_zero_clients_rejected(self):
        config = SystemConfig.uniform(3, f=1)
        with pytest.raises(ConfigurationError):
            build_dynamic_cluster(config, client_count=0)
        with pytest.raises(ConfigurationError):
            build_static_cluster(config, client_count=0)


class TestRunWorkload:
    def test_dynamic_run_produces_report(self):
        config = SystemConfig.uniform(5, f=2)
        cluster = build_dynamic_cluster(config, latency=UniformLatency(0.5, 1.5, seed=3))
        workload = uniform_workload(list(cluster.clients), 5, read_ratio=0.5, seed=3)
        report = run_workload(cluster, workload)
        assert report.operations == 10
        assert report.messages_sent > 0
        assert report.write_latency is not None
        assert "cluster flavour" in report.describe()

    def test_static_run_with_failures(self):
        config = SystemConfig.uniform(5, f=2)
        cluster = build_static_cluster(config, latency=ConstantLatency(1.0))
        workload = uniform_workload(list(cluster.clients), 4, read_ratio=0.5, seed=5)
        failures = FailureSchedule().crash("s5", at=2.0)
        report = run_workload(cluster, workload, failures=failures)
        assert report.operations == 8

    def test_unknown_client_rejected(self):
        config = SystemConfig.uniform(3, f=1)
        cluster = build_dynamic_cluster(config, client_count=1)
        workload = uniform_workload(["c9"], 2, seed=0)
        with pytest.raises(ConfigurationError):
            run_workload(cluster, workload)

    def test_non_positive_max_time_rejected(self):
        config = SystemConfig.uniform(3, f=1)
        cluster = build_dynamic_cluster(config, client_count=1)
        workload = uniform_workload(list(cluster.clients), 2, seed=0)
        for max_time in (0.0, -1.0):
            with pytest.raises(ConfigurationError, match="max_time"):
                run_workload(cluster, workload, max_time=max_time)

    def test_describe_renders_zero_operation_runs(self):
        from repro.sim.runner import RunReport

        report = RunReport(
            flavour="dynamic-weighted",
            duration=0.0,
            read_latency=None,
            write_latency=None,
            messages_sent=0,
            restarts=0,
            operations=0,
        )
        text = report.describe()
        assert "no completed operations" in text
        assert "read  latency" not in text and "write latency" not in text


class TestQuorumLatencyAnalysis:
    def wan_rtt(self):
        # One fast continent (s1-s3 close to the client) and two far replicas.
        return {"s1": 10.0, "s2": 12.0, "s3": 15.0, "s4": 80.0, "s5": 95.0}

    def test_fastest_quorum_prefers_low_latency_servers(self):
        weights = {"s1": 1.5, "s2": 1.5, "s3": 1.5, "s4": 0.75, "s5": 0.75}
        wmqs = WeightedMajorityQuorumSystem(weights)
        assert fastest_quorum(wmqs, self.wan_rtt()) == ("s1", "s2", "s3")

    def test_wmqs_latency_beats_mqs_on_heterogeneous_rtt(self):
        """The paper's motivating claim (Section I).

        With enough weight on the two nearest servers (still satisfying
        Property 1 for f=1), a two-server weighted quorum beats the
        three-server majority quorum.
        """
        rtt = self.wan_rtt()
        mqs = MajorityQuorumSystem(server_set(5))
        weights = {"s1": 2.0, "s2": 2.0, "s3": 1.0, "s4": 0.5, "s5": 0.5}
        wmqs = WeightedMajorityQuorumSystem(weights)
        assert expected_quorum_latency(wmqs, rtt) < expected_quorum_latency(mqs, rtt)

    def test_equal_rtt_makes_both_equal(self):
        rtt = {s: 10.0 for s in server_set(5)}
        mqs = MajorityQuorumSystem(server_set(5))
        wmqs = WeightedMajorityQuorumSystem.uniform(server_set(5))
        assert expected_quorum_latency(wmqs, rtt) == expected_quorum_latency(mqs, rtt)

    def test_latency_table_covers_all_systems_and_clients(self):
        rtt_by_client = {"c1": self.wan_rtt(), "c2": {s: 20.0 for s in server_set(5)}}
        table = quorum_latency_table(
            {
                "mqs": MajorityQuorumSystem(server_set(5)),
                "wmqs": WeightedMajorityQuorumSystem.uniform(server_set(5)),
            },
            rtt_by_client,
        )
        assert set(table) == {"mqs", "wmqs"}
        assert set(table["mqs"]) == {"c1", "c2"}

    def test_missing_rtt_rejected(self):
        mqs = MajorityQuorumSystem(server_set(3))
        with pytest.raises(ConfigurationError):
            expected_quorum_latency(mqs, {"s1": 1.0})


class TestWeightPlanning:
    def test_inverse_latency_weights_available(self):
        rtt = {"s1": 10.0, "s2": 12.0, "s3": 15.0, "s4": 80.0, "s5": 95.0}
        weights = inverse_latency_weights(rtt, total_weight=5.0, f=1)
        assert sum(weights.values()) == pytest.approx(5.0)
        assert weights["s1"] > weights["s4"]

    def test_infeasible_floor_rejected(self):
        rtt = {"s1": 1.0, "s2": 1000.0, "s3": 1000.0}
        with pytest.raises(ConfigurationError):
            inverse_latency_weights(rtt, total_weight=3.0, f=1, floor_fraction=0.0)

    def test_quorum_size_shrinks_with_skewed_weights(self):
        uniform = {s: 1.0 for s in server_set(7)}
        skewed = {"s1": 1.2, "s2": 1.2, "s3": 1.2, "s4": 0.8, "s5": 0.8, "s6": 0.8, "s7": 1.0}
        assert quorum_size_after_reassignment(skewed) < quorum_size_after_reassignment(uniform)

    def test_empty_latency_map_rejected(self):
        with pytest.raises(ConfigurationError):
            inverse_latency_weights({}, total_weight=1.0, f=0)
