"""Unit tests for the deterministic virtual-time scheduler."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, SimTimeoutError, SimulationError
from repro.net.simloop import Event, Queue, SimFuture, SimLoop, gather


class TestSimFuture:
    def test_initially_pending(self):
        future = SimFuture()
        assert not future.done()

    def test_set_result_makes_done(self):
        future = SimFuture()
        future.set_result(42)
        assert future.done()
        assert future.result() == 42

    def test_set_exception_propagates_on_result(self):
        future = SimFuture()
        future.set_exception(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            future.result()

    def test_result_before_done_raises(self):
        with pytest.raises(SimulationError):
            SimFuture().result()

    def test_double_resolution_rejected(self):
        future = SimFuture()
        future.set_result(1)
        with pytest.raises(SimulationError):
            future.set_result(2)

    def test_cancel_pending_future(self):
        future = SimFuture()
        assert future.cancel()
        assert future.cancelled()
        with pytest.raises(SimulationError):
            future.result()

    def test_cancel_after_completion_is_noop(self):
        future = SimFuture()
        future.set_result(1)
        assert not future.cancel()
        assert future.result() == 1

    def test_done_callback_runs_immediately_when_already_done(self):
        future = SimFuture()
        future.set_result("x")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == ["x"]

    def test_done_callback_runs_on_completion(self):
        future = SimFuture()
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == []
        future.set_result(7)
        assert seen == [7]

    def test_exception_accessor_requires_done(self):
        with pytest.raises(SimulationError):
            SimFuture().exception()


class TestSimLoopBasics:
    def test_time_starts_at_zero(self):
        assert SimLoop().now == 0.0

    def test_run_until_complete_returns_coroutine_result(self):
        loop = SimLoop()

        async def work():
            return "done"

        assert loop.run_until_complete(work()) == "done"

    def test_sleep_advances_virtual_time(self):
        loop = SimLoop()

        async def work():
            await loop.sleep(5.0)
            return loop.now

        assert loop.run_until_complete(work()) == 5.0

    def test_nested_sleeps_accumulate(self):
        loop = SimLoop()

        async def work():
            await loop.sleep(1.5)
            await loop.sleep(2.5)
            return loop.now

        assert loop.run_until_complete(work()) == 4.0

    def test_call_later_executes_in_order(self):
        loop = SimLoop()
        seen = []
        loop.call_later(3.0, lambda: seen.append("late"))
        loop.call_later(1.0, lambda: seen.append("early"))
        loop.run()
        assert seen == ["early", "late"]

    def test_same_time_events_fifo(self):
        loop = SimLoop()
        seen = []
        for index in range(10):
            loop.call_later(1.0, lambda i=index: seen.append(i))
        loop.run()
        assert seen == list(range(10))

    def test_call_at_in_the_past_rejected(self):
        loop = SimLoop()
        loop.call_later(2.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimLoop().call_later(-1.0, lambda: None)

    def test_exception_in_task_propagates(self):
        loop = SimLoop()

        async def broken():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError, match="nope"):
            loop.run_until_complete(broken())

    def test_deadlock_detection(self):
        loop = SimLoop()
        never = SimFuture()

        async def waiter():
            await never

        with pytest.raises(DeadlockError):
            loop.run_until_complete(waiter())

    def test_max_time_budget(self):
        loop = SimLoop()

        async def slow():
            await loop.sleep(100.0)

        with pytest.raises(SimTimeoutError):
            loop.run_until_complete(slow(), max_time=10.0)

    def test_run_until_bound_stops_at_bound(self):
        loop = SimLoop()
        seen = []
        loop.call_later(5.0, lambda: seen.append("a"))
        loop.call_later(50.0, lambda: seen.append("b"))
        assert loop.run(until=10.0) == 10.0
        assert seen == ["a"]

    def test_run_drains_everything_without_bound(self):
        loop = SimLoop()
        seen = []
        loop.call_later(5.0, lambda: seen.append("a"))
        loop.call_later(50.0, lambda: seen.append("b"))
        loop.run()
        assert seen == ["a", "b"]

    def test_awaiting_non_future_fails_cleanly(self):
        loop = SimLoop()

        async def broken():
            await 42  # type: ignore[misc]

        with pytest.raises((SimulationError, TypeError)):
            loop.run_until_complete(broken())

    def test_pending_event_count(self):
        loop = SimLoop()
        loop.call_later(1.0, lambda: None)
        loop.call_later(2.0, lambda: None)
        assert loop.pending_event_count() == 2


class TestTimeout:
    def test_timeout_fires_when_future_is_slow(self):
        loop = SimLoop()
        never = SimFuture()

        async def work():
            await loop.timeout(never, 5.0)

        with pytest.raises(SimTimeoutError):
            loop.run_until_complete(work())

    def test_timeout_passes_through_result(self):
        loop = SimLoop()
        future = SimFuture()
        loop.call_later(1.0, lambda: future.set_result("ok"))

        async def work():
            return await loop.timeout(future, 5.0)

        assert loop.run_until_complete(work()) == "ok"


class TestGather:
    def test_gather_collects_in_input_order(self):
        loop = SimLoop()

        async def job(delay, tag):
            await loop.sleep(delay)
            return tag

        result = loop.run_until_complete(
            gather(loop, [job(3, "a"), job(1, "b"), job(2, "c")])
        )
        assert result == ["a", "b", "c"]

    def test_gather_empty(self):
        loop = SimLoop()
        assert loop.run_until_complete(gather(loop, [])) == []

    def test_gather_propagates_first_exception(self):
        loop = SimLoop()

        async def ok():
            await loop.sleep(1)
            return 1

        async def bad():
            raise ValueError("broken child")

        with pytest.raises(ValueError, match="broken child"):
            loop.run_until_complete(gather(loop, [ok(), bad()]))

    def test_gather_runs_children_concurrently(self):
        loop = SimLoop()

        async def job():
            await loop.sleep(10.0)

        loop.run_until_complete(gather(loop, [job() for _ in range(5)]))
        # Concurrent, not sequential: total virtual time is one sleep, not five.
        assert loop.now == 10.0


class TestEventAndQueue:
    def test_event_wakes_all_waiters(self):
        loop = SimLoop()
        event = Event()
        results = []

        async def waiter(tag):
            await event.wait()
            results.append(tag)

        for tag in range(3):
            loop.create_task(waiter(tag))
        loop.call_later(2.0, event.set)
        loop.run()
        assert sorted(results) == [0, 1, 2]
        assert event.is_set()

    def test_event_wait_after_set_resolves_immediately(self):
        loop = SimLoop()
        event = Event()
        event.set()

        async def waiter():
            await event.wait()
            return loop.now

        assert loop.run_until_complete(waiter()) == 0.0

    def test_event_clear(self):
        event = Event()
        event.set()
        event.clear()
        assert not event.is_set()

    def test_queue_fifo_order(self):
        loop = SimLoop()
        queue = Queue()
        for item in ("a", "b", "c"):
            queue.put(item)

        async def drain():
            return [await queue.get() for _ in range(3)]

        assert loop.run_until_complete(drain()) == ["a", "b", "c"]

    def test_queue_get_waits_for_put(self):
        loop = SimLoop()
        queue = Queue()

        async def consumer():
            return await queue.get()

        loop.call_later(4.0, lambda: queue.put("late"))
        assert loop.run_until_complete(consumer()) == "late"
        assert loop.now == 4.0

    def test_queue_len_and_empty(self):
        queue = Queue()
        assert queue.empty()
        queue.put(1)
        assert len(queue) == 1


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            loop = SimLoop()
            trace = []

            async def worker(tag, delay):
                for step in range(3):
                    await loop.sleep(delay)
                    trace.append((loop.now, tag, step))

            for tag in range(4):
                loop.create_task(worker(tag, 1.0 + tag * 0.5))
            loop.run()
            return trace

        assert run_once() == run_once()
