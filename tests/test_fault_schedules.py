"""Fault-schedule edge cases, end to end.

Satellite of the chaos-campaign PR: the schedules a fault-space search is
most likely to sample — a crash at the very first instant, a redundant
double crash, a recovery landing inside an open partition window — must
run deterministically and leave invariant-clean traces, and the schedules
the engine refuses (overlapping partition windows) must be refused at
build time, not mid-run.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.spec import (
    ClusterSpec,
    FaultSpec,
    ObservabilitySpec,
    PartitionSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_spec,
)
from repro.obs import read_trace
from repro.obs.analysis import check_trace_invariants

#: n=5 static-majority: any 3 servers form a quorum, so one faulted server
#: (f=1) never blocks progress and the runs below always terminate.
MIN_QUORUM = 3


def make_spec(name: str, faults: FaultSpec) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        cluster=ClusterSpec(flavour="static-majority", n=5, f=1,
                            client_count=2),
        workload=WorkloadSpec(operations_per_client=6),
        faults=faults,
        seed=7,
    )


def run_traced(spec: ScenarioSpec, tmp_path, label: str):
    trace_path = str(tmp_path / f"{label}.jsonl")
    import dataclasses

    traced = dataclasses.replace(
        spec,
        observability=ObservabilitySpec(enabled=True, trace_path=trace_path),
    )
    result = run_spec(traced)
    return result, read_trace(trace_path)


class TestEdgeCaseSchedules:
    """The awkward-but-legal schedules run clean and deterministically."""

    @pytest.mark.parametrize("label,faults", [
        ("crash-at-zero", FaultSpec(crashes=(("s3", 0.0),))),
        ("double-crash", FaultSpec(crashes=(("s2", 1.0), ("s2", 3.0)))),
        ("recover-in-partition", FaultSpec(
            crashes=(("s2", 2.0),),
            recoveries=(("s2", 8.0),),
            partitions=(PartitionSpec(at=4.0, groups=(("s5",),),
                                      heal_at=12.0),),
        )),
        ("outage-window", FaultSpec(outages=(("s4", 2.0, 10.0),))),
    ])
    def test_runs_deterministically_with_clean_trace(
        self, tmp_path, label, faults
    ):
        spec = make_spec(label, faults)

        first, first_trace = run_traced(spec, tmp_path, f"{label}-a")
        second, second_trace = run_traced(spec, tmp_path, f"{label}-b")
        assert first == second
        assert first_trace == second_trace

        report = check_trace_invariants(first_trace, min_quorum=MIN_QUORUM)
        assert report.ok, [f.message for f in report.errors]
        assert first["operations"] == 12

    def test_crash_at_zero_excludes_the_server_from_the_start(self, tmp_path):
        spec = make_spec("crash-at-zero", FaultSpec(crashes=(("s3", 0.0),)))
        _, trace = run_traced(spec, tmp_path, "zero")
        # A server down from t=0 never joins a quorum.
        for record in trace:
            if record.get("kind") == "quorum":
                assert "s3" not in (record.get("fields") or {}).get(
                    "members", ()
                )

    def test_double_crash_equals_single_crash(self):
        # The redundant crash is injection bookkeeping (it shows up in the
        # trace and the fault counters); the workload cannot tell the two
        # schedules apart.
        once = make_spec("once", FaultSpec(crashes=(("s2", 1.0),)))
        twice = make_spec("once",  # same name: results embed the spec name
                          FaultSpec(crashes=(("s2", 1.0), ("s2", 3.0))))
        assert run_spec(once) == run_spec(twice)


class TestRejectedSchedules:
    """Impossible schedules fail before the simulation starts."""

    def test_overlapping_partition_windows_rejected(self):
        spec = make_spec("overlap", FaultSpec(partitions=(
            PartitionSpec(at=2.0, groups=(("s4",),), heal_at=8.0),
            PartitionSpec(at=6.0, groups=(("s5",),), heal_at=10.0),
        )))
        with pytest.raises(ConfigurationError, match="overlap"):
            run_spec(spec)

    def test_back_to_back_partition_windows_are_not_overlapping(
        self, tmp_path
    ):
        # heal_at is exclusive: a window starting exactly at the previous
        # heal instant is sequential, not concurrent.
        spec = make_spec("sequential", FaultSpec(partitions=(
            PartitionSpec(at=2.0, groups=(("s4",),), heal_at=6.0),
            PartitionSpec(at=6.0, groups=(("s5",),), heal_at=10.0),
        )))
        result, trace = run_traced(spec, tmp_path, "sequential")
        assert result["operations"] == 12
        report = check_trace_invariants(trace, min_quorum=MIN_QUORUM)
        assert report.ok, [f.message for f in report.errors]

    def test_recovery_before_partition_crash_rejected(self):
        spec = make_spec("bad", FaultSpec(
            crashes=(("s2", 8.0),), recoveries=(("s2", 2.0),)
        ))
        with pytest.raises(ConfigurationError, match="not down then"):
            run_spec(spec)
