"""Spec v2: the uniform section protocol, MonitoringSpec/FaultSpec, spec files.

Covers the acceptance surface of the Spec v2 redesign:

* per-section serialization round trips (``to_dict``/``from_dict`` inverses),
* unknown-key rejection and the ``failures`` → ``faults`` deprecation shim,
* dotted-path flatten/expand inverses shared by every section,
* ``validate()`` catching semantic problems without building anything,
* the declarative :class:`MonitoringSpec` reproducing the imperative
  ``hotspot-shift-monitoring`` scenario result-for-result,
* :class:`FaultSpec` crash/recover schedules and partition windows,
* the checked-in ``examples/specs/*.json`` files and the CLI ``--spec`` path.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.experiments.registry import get_scenario, register
from repro.experiments.sections import SpecSection, unflatten
from repro.experiments.spec import (
    ArrivalSpec,
    ClusterSpec,
    FailureSpec,
    FaultSpec,
    KeySpec,
    LatencySpec,
    MixSpec,
    MonitoringSpec,
    PartitionSpec,
    PhaseSpec,
    PolicySpec,
    ScenarioSpec,
    TransferEvent,
    WorkloadSpec,
    flatten_spec,
    load_spec_file,
    run_spec,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SPEC_DIR = REPO_ROOT / "examples" / "specs"

# One non-default instance per section: every field departs from its default
# where practical, so a broken field round-trip cannot hide behind defaults.
SECTION_SAMPLES = (
    LatencySpec(kind="lognormal", median=2.0, sigma=0.5, slow=("s1", "s2#1"),
                slow_factor=4.0, slow_start=3.0, slow_end=9.0),
    ClusterSpec(flavour="static-weighted", n=3, f=1, client_count=4,
                initial_weights=(("s1", 1.2), ("s2", 1.0), ("s3", 0.8)), shards=2),
    KeySpec(kind="hotspot", space=64, zipf_s=1.4, hot_fraction=0.25,
            hot_weight=0.8, offset=8),
    ArrivalSpec(kind="onoff", mean_think_time=2.0, rate=3.0, burst_rate=8.0,
                burst_length=2.0, idle_time=4.0),
    MixSpec(read_ratio=0.9, keys_per_op=3),
    PhaseSpec(at=12.0, overrides=(("keys.offset", 8), ("mix.read_ratio", 1.0))),
    WorkloadSpec(operations_per_client=7,
                 keys=KeySpec(kind="zipfian", space=32),
                 arrivals=ArrivalSpec(kind="poisson", rate=2.0),
                 mix=MixSpec(read_ratio=0.25),
                 phases=(PhaseSpec(at=5.0, overrides=(("keys.space", 8),)),)),
    PolicySpec(kind="wheat", threshold=0.1, margin=0.02, extra_servers=2),
    MonitoringSpec(enabled=True, interval=3.0, rounds=4, window=16,
                   ewma_alpha=0.5, policy=PolicySpec(threshold=0.2),
                   gain=0.2, scope="global", prober="probe"),
    PartitionSpec(at=4.0, groups=(("s1", "s2"), ("s3",)), heal_at=9.0),
    FaultSpec(crashes=(("s4", 10.0),), recoveries=(("s4", 20.0),),
              partitions=(PartitionSpec(at=4.0, groups=(("s1", "s2"),),
                                        heal_at=9.0),)),
    TransferEvent(at=5.0, source="s1", target="s2", delta=0.25, shard=1),
    ScenarioSpec(name="v2-sample", description="round-trip sample",
                 cluster=ClusterSpec(n=7, f=2),
                 workload=WorkloadSpec(operations_per_client=3),
                 latency=LatencySpec(kind="uniform", low=0.2, high=0.8),
                 monitoring=MonitoringSpec(enabled=True, rounds=2),
                 faults=FaultSpec(crashes=(("s7", 6.0),)),
                 transfers=(TransferEvent(at=2.0, source="s1", target="s2",
                                          delta=0.1),),
                 seed=11, max_time=500.0),
)


class TestSectionProtocol:
    @pytest.mark.parametrize("section", SECTION_SAMPLES,
                             ids=lambda s: type(s).__name__)
    def test_from_dict_inverts_to_dict(self, section):
        assert type(section).from_dict(section.to_dict()) == section

    @pytest.mark.parametrize("section", SECTION_SAMPLES,
                             ids=lambda s: type(s).__name__)
    def test_to_dict_inverts_from_dict(self, section):
        payload = section.to_dict()
        assert type(section).from_dict(payload).to_dict() == payload

    @pytest.mark.parametrize("section", SECTION_SAMPLES,
                             ids=lambda s: type(s).__name__)
    def test_to_dict_is_json_serialisable(self, section):
        rehydrated = type(section).from_dict(
            json.loads(json.dumps(section.to_dict()))
        )
        assert rehydrated == section

    @pytest.mark.parametrize("section", SECTION_SAMPLES,
                             ids=lambda s: type(s).__name__)
    def test_samples_validate(self, section):
        assert section.validate() is section

    @pytest.mark.parametrize("section", SECTION_SAMPLES,
                             ids=lambda s: type(s).__name__)
    def test_unknown_keys_rejected(self, section):
        payload = section.to_dict()
        payload["bogus_key"] = 1
        with pytest.raises(ConfigurationError, match="unknown key 'bogus_key'"):
            type(section).from_dict(payload)

    def test_nested_unknown_keys_rejected(self):
        payload = ScenarioSpec(name="t").to_dict()
        payload["workload"]["keys"]["bogus"] = 1
        with pytest.raises(ConfigurationError, match="unknown key 'bogus'"):
            ScenarioSpec.from_dict(payload)

    def test_every_section_implements_the_protocol(self):
        for section in SECTION_SAMPLES:
            assert isinstance(section, SpecSection)
            assert dataclasses.is_dataclass(section)


class TestFlattenExpand:
    SPEC = SECTION_SAMPLES[-1]

    def test_with_overrides_of_flatten_is_identity(self):
        # flatten() and with_overrides() are inverses: re-applying a spec's
        # own flat parameters reproduces the spec exactly.
        flat = flatten_spec(self.SPEC)
        assert self.SPEC.with_overrides(flat) == self.SPEC

    def test_unflatten_inverts_flatten_nesting(self):
        flat = {"cluster.n": 5, "workload.keys.zipf_s": 1.2, "seed": 3}
        assert unflatten(flat) == {
            "cluster": {"n": 5},
            "workload": {"keys": {"zipf_s": 1.2}},
            "seed": 3,
        }

    def test_unflatten_rejects_leaf_collisions(self):
        with pytest.raises(ConfigurationError, match="leaf"):
            unflatten({"cluster": 1, "cluster.n": 5})

    def test_flatten_exposes_monitoring_and_faults_paths(self):
        flat = flatten_spec(ScenarioSpec(name="t"))
        for path in ("monitoring.enabled", "monitoring.interval",
                     "monitoring.policy.kind", "monitoring.policy.threshold",
                     "monitoring.gain", "monitoring.scope",
                     "faults.crashes", "faults.recoveries", "faults.partitions"):
            assert path in flat

    def test_registered_spec_defaults_carry_new_paths(self):
        defaults = get_scenario("quickstart").defaults
        assert "monitoring.policy.threshold" in defaults
        assert "faults.crashes" in defaults


class TestDeprecationShim:
    def test_failure_spec_is_fault_spec(self):
        assert FailureSpec is FaultSpec
        assert FailureSpec(crashes=(("s1", 2.0),)).crashes == (("s1", 2.0),)

    def test_failures_key_aliases_to_faults_in_from_dict(self):
        spec = ScenarioSpec.from_dict(
            {"name": "t", "failures": {"crashes": [["s5", 4.0]]}}
        )
        assert spec.faults.crashes == (("s5", 4.0),)

    def test_failures_path_aliases_in_overrides(self):
        spec = ScenarioSpec(name="t").with_overrides(
            {"failures.crashes": [["s5", 4.0]]}
        )
        assert spec.faults.crashes == (("s5", 4.0),)

    def test_alias_and_canonical_key_together_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate key"):
            ScenarioSpec.from_dict({
                "name": "t",
                "failures": {"crashes": [["s1", 1.0]]},
                "faults": {"crashes": [["s2", 1.0]]},
            })


class TestValidate:
    def test_validate_catches_bad_kinds_without_building(self):
        for spec, match in (
            (ScenarioSpec(name="t", latency=LatencySpec(kind="bogus")),
             "latency kind"),
            (ScenarioSpec(name="t", workload=WorkloadSpec(keys=KeySpec(kind="no"))),
             "key distribution"),
            (ScenarioSpec(name="t",
                          monitoring=MonitoringSpec(policy=PolicySpec(kind="x"))),
             "policy kind"),
            (ScenarioSpec(name="t", monitoring=MonitoringSpec(scope="everywhere")),
             "monitoring scope"),
            (ScenarioSpec(name="t", faults=FaultSpec(crashes=(("s1", -1.0),))),
             "non-negative"),
        ):
            with pytest.raises(ConfigurationError, match=match):
                spec.validate()

    def test_validate_rejects_overlapping_partition_windows(self):
        faults = FaultSpec(partitions=(
            PartitionSpec(at=1.0, groups=(("s1",),), heal_at=5.0),
            PartitionSpec(at=4.0, groups=(("s2",),), heal_at=8.0),
        ))
        with pytest.raises(ConfigurationError, match="overlap"):
            faults.validate()

    def test_validate_rejects_bad_policy_threshold(self):
        with pytest.raises(ConfigurationError, match="threshold"):
            PolicySpec(threshold=0.0).validate()

    def test_monitoring_requires_dynamic_flavour(self):
        spec = ScenarioSpec(
            name="t",
            cluster=ClusterSpec(flavour="static-majority", n=4, client_count=1),
            monitoring=MonitoringSpec(enabled=True),
        )
        with pytest.raises(ConfigurationError, match="dynamic-weighted"):
            run_spec(spec)


class TestMonitoringSpec:
    def test_spec_run_reproduces_hotspot_shift_monitoring_exactly(self):
        # The acceptance bar for the MonitoringSpec section: the declarative
        # form runs the *same simulation* as the imperative scenario.
        fn_result = get_scenario("hotspot-shift-monitoring").execute()
        spec_result = run_spec(
            load_spec_file(str(SPEC_DIR / "hotspot-shift-monitoring.json"))
        )
        for key in ("operations", "duration", "messages", "weights", "workload"):
            assert spec_result[key] == fn_result[key], key
        assert (spec_result["monitoring"]["transfers_attempted"]
                == fn_result["transfers_attempted"])

    def test_monitoring_block_absent_when_disabled(self):
        result = run_spec(ScenarioSpec(
            name="t", cluster=ClusterSpec(n=4, f=1, client_count=1),
            workload=WorkloadSpec(operations_per_client=2),
        ))
        assert "monitoring" not in result

    def test_threshold_is_sweepable(self):
        spec = load_spec_file(str(SPEC_DIR / "hotspot-shift-monitoring.json"))
        spec = spec.with_overrides({"workload.operations_per_client": 4})
        tight = run_spec(spec.with_overrides({"monitoring.policy.threshold": 0.05}))
        loose = run_spec(spec.with_overrides({"monitoring.policy.threshold": 5.0}))
        assert loose["monitoring"]["transfers_attempted"] == 0
        assert (tight["monitoring"]["transfers_attempted"]
                >= loose["monitoring"]["transfers_attempted"])

    def test_sharded_global_scope_moves_weight_in_every_shard(self):
        result = run_spec(
            load_spec_file(str(SPEC_DIR / "sharded-global-monitoring.json"))
        )
        by_shard = result["monitoring"]["transfers_attempted_by_shard"]
        assert set(by_shard) == {"0", "1"}
        assert all(count > 0 for count in by_shard.values())
        for weights in result["shard_weights"].values():
            # The globally-degraded machine s1 lost weight in every shard.
            assert weights["s1"] < 1.0


class TestFaultSpec:
    def test_crash_and_recover_round_trip_on_the_network(self):
        spec = ScenarioSpec(
            name="t",
            cluster=ClusterSpec(n=5, f=2, client_count=1),
            workload=WorkloadSpec(operations_per_client=8,
                                  arrivals=ArrivalSpec(mean_think_time=3.0)),
            faults=FaultSpec(crashes=(("s4", 2.0),), recoveries=(("s4", 12.0),)),
            max_time=10_000.0,
        )
        result = run_spec(spec)
        assert result["operations"] == 8
        # The recovered server answers again: its weight view is readable
        # via the run's weights block (s4 is back among the surviving).
        assert "s4" in result["weights"]

    def test_partition_window_holds_and_releases(self):
        # Partition a server off mid-run; the window heals and the run
        # completes with every operation served.
        result = run_spec(
            load_spec_file(str(SPEC_DIR / "crash-recover-partition.json"))
        )
        assert result["operations"] == 24
        assert result["duration"] > 20.0  # the run outlives the heal

    def test_spec_level_partition_expands_canonical_names(self):
        schedule = FaultSpec(
            partitions=(PartitionSpec(at=1.0, groups=(("s1",),), heal_at=2.0),)
        ).build(shards=2)
        assert schedule.partitions[0].groups == (("s1#0", "s1#1"),)

    def test_overlapping_windows_rejected_at_build(self):
        from repro.sim.failures import FailureSchedule
        schedule = FailureSchedule().partition_window((("s1",),), at=1.0, heal_at=5.0)
        with pytest.raises(ConfigurationError, match="overlap"):
            schedule.partition_window((("s2",),), at=3.0, heal_at=7.0)

    def test_network_recover_unit(self):
        from repro.core.spec import SystemConfig
        from repro.sim.cluster import build_dynamic_cluster
        cluster = build_dynamic_cluster(SystemConfig.uniform(3, f=1))
        cluster.network.crash("s2")
        assert cluster.network.is_crashed("s2")
        cluster.network.recover("s2")
        assert not cluster.network.is_crashed("s2")

    def test_crashed_by_replays_crash_recover_crash_in_time_order(self):
        from repro.sim.failures import FailureSchedule
        schedule = (FailureSchedule()
                    .crash("s1", 1.0).recover("s1", 2.0).crash("s1", 3.0))
        assert schedule.crashed_by(2.5) == ()
        assert schedule.crashed_by(4.0) == ("s1",)  # re-crashed: still down

    def test_back_to_back_windows_listed_out_of_order_arm_correctly(self):
        # A window healing at the instant the next one starts must not tear
        # the new partition down, regardless of the order windows were
        # declared in (heal events schedule before same-time partitions).
        from repro.core.spec import SystemConfig
        from repro.sim.cluster import build_dynamic_cluster
        from repro.sim.failures import FailureSchedule
        cluster = build_dynamic_cluster(SystemConfig.uniform(3, f=1))
        schedule = (FailureSchedule()
                    .partition_window((("s1",),), at=20.0, heal_at=30.0)
                    .partition_window((("s2",),), at=10.0, heal_at=20.0))
        schedule.arm(cluster.loop, cluster.network)
        cluster.loop.run(until=25.0)
        assert cluster.network._crosses_partition("s1", "s3")  # window live
        cluster.loop.run(until=31.0)
        assert not cluster.network._crosses_partition("s1", "s3")

    def test_same_instant_crash_and_recover_resolve_alike_everywhere(self):
        # crashed_by's replay and arm()'s scheduling must agree: a crash at
        # the same instant as a recovery wins in both.
        from repro.core.spec import SystemConfig
        from repro.sim.cluster import build_dynamic_cluster
        from repro.sim.failures import FailureSchedule
        schedule = FailureSchedule().crash("s1", 5.0).recover("s1", 5.0)
        assert schedule.crashed_by(5.0) == ("s1",)
        cluster = build_dynamic_cluster(SystemConfig.uniform(3, f=1))
        schedule.arm(cluster.loop, cluster.network)
        cluster.loop.run(until=6.0)
        assert cluster.network.is_crashed("s1")

    def test_monitoring_survives_a_mid_probe_crash(self):
        # A crash landing while a PING is in flight must not stall the loop:
        # the probe's alive count is re-evaluated on every reply.
        spec = ScenarioSpec(
            name="t",
            cluster=ClusterSpec(n=5, f=2, client_count=1),
            workload=WorkloadSpec(operations_per_client=8,
                                  arrivals=ArrivalSpec(mean_think_time=4.0)),
            latency=LatencySpec(kind="constant", value=1.0),
            monitoring=MonitoringSpec(enabled=True, interval=5.0, rounds=4),
            faults=FaultSpec(crashes=(("s5", 5.5),)),  # probe sent at t=5.0
            max_time=10_000.0,
        )
        result = run_spec(spec)
        assert result["monitoring"]["rounds_completed"] == 4

    def test_monitoring_survives_a_crashed_server(self):
        # A crashed server's probe replies never arrive; the loop must wait
        # only for the live ones and keep running every configured round.
        spec = ScenarioSpec(
            name="t",
            cluster=ClusterSpec(n=5, f=2, client_count=1),
            workload=WorkloadSpec(operations_per_client=10,
                                  arrivals=ArrivalSpec(mean_think_time=4.0)),
            monitoring=MonitoringSpec(enabled=True, interval=4.0, rounds=4),
            faults=FaultSpec(crashes=(("s5", 1.0),)),
            max_time=10_000.0,
        )
        result = run_spec(spec)
        assert result["monitoring"]["rounds_completed"] == 4


class TestFaultWindowValidation:
    """Impossible fault schedules fail at build time with the dotted path."""

    def test_recovery_before_crash_rejected(self):
        faults = FaultSpec(crashes=(("s2", 10.0),), recoveries=(("s2", 4.0),))
        with pytest.raises(ConfigurationError,
                           match=r"faults\.recoveries\[0\] recovers 's2'"):
            faults.validate()

    def test_recovery_without_any_crash_rejected(self):
        faults = FaultSpec(recoveries=(("s3", 4.0),))
        with pytest.raises(ConfigurationError,
                           match=r"faults\.recoveries\[0\]"):
            faults.validate()

    def test_recovery_at_crash_instant_rejected(self):
        # Recoveries resolve before crashes at equal times, so a same-instant
        # pair means the recovery fires on an up process.
        faults = FaultSpec(crashes=(("s2", 5.0),), recoveries=(("s2", 5.0),))
        with pytest.raises(ConfigurationError, match="strictly earlier"):
            faults.validate()

    def test_double_crash_same_node_is_allowed(self):
        # Crashing a crashed node is idempotent on the network; the schedule
        # is valid (and exercised end-to-end in test_fault_schedules).
        FaultSpec(crashes=(("s2", 1.0), ("s2", 3.0))).validate()

    def test_outage_recovering_at_or_before_crash_rejected(self):
        with pytest.raises(ConfigurationError,
                           match=r"faults\.outages\[0\] recovers at until=2.0"):
            FaultSpec(outages=(("s1", 2.0, 2.0),)).validate()

    def test_outage_without_recovery_is_valid(self):
        FaultSpec(outages=(("s1", 2.0),)).validate()
        FaultSpec(outages=(("s1", 2.0, None),)).validate()

    def test_malformed_outage_entry_rejected(self):
        for bad in ("s1", ("s1",), ("s1", 1.0, 2.0, 3.0)):
            with pytest.raises(ConfigurationError, match="invalid outage"):
                FaultSpec(outages=(bad,)).validate()

    def test_partition_heal_before_start_rejected(self):
        faults = FaultSpec(
            partitions=(PartitionSpec(at=5.0, groups=(("s1",),), heal_at=3.0),)
        )
        with pytest.raises(ConfigurationError,
                           match=r"heal_at=3.0 must be after at=5.0"):
            faults.validate()

    def test_overlapping_partition_windows_name_both_paths(self):
        faults = FaultSpec(partitions=(
            PartitionSpec(at=1.0, groups=(("s1",),), heal_at=5.0),
            PartitionSpec(at=4.0, groups=(("s2",),), heal_at=8.0),
        ))
        with pytest.raises(
            ConfigurationError,
            match=r"faults\.partitions\[0\] and faults\.partitions\[1\] overlap",
        ):
            faults.validate()

    def test_crash_of_unknown_node_fails_before_the_run(self):
        spec = ScenarioSpec(
            name="t",
            cluster=ClusterSpec(n=3, f=1, client_count=1),
            workload=WorkloadSpec(operations_per_client=2),
            faults=FaultSpec(crashes=(("s9", 1.0),)),
        )
        with pytest.raises(
            ConfigurationError,
            match=r"faults\.crashes\[0\] targets unknown process 's9'",
        ):
            run_spec(spec)

    def test_unknown_outage_and_partition_targets_named_by_path(self):
        known = ("s1", "s2", "c1")
        with pytest.raises(ConfigurationError,
                           match=r"faults\.outages\[0\].*'ghost'"):
            FaultSpec(outages=(("ghost", 1.0),)).check_processes(known)
        with pytest.raises(
            ConfigurationError,
            match=r"faults\.partitions\[0\]\.groups\[1\].*'gone'",
        ):
            FaultSpec(partitions=(
                PartitionSpec(at=1.0, groups=(("s1",), ("gone",)), heal_at=2.0),
            )).check_processes(known)

    def test_check_processes_expands_sharded_names(self):
        # Canonical names pass when every shard-qualified expansion exists.
        known = ("s1#0", "s1#1", "s2#0", "s2#1")
        FaultSpec(crashes=(("s1", 1.0),)).check_processes(known, shards=2)
        with pytest.raises(ConfigurationError, match="unknown process"):
            FaultSpec(crashes=(("s3", 1.0),)).check_processes(known, shards=2)

    def test_outage_builds_a_crash_recover_pair(self):
        schedule = FaultSpec(outages=(("s2", 3.0, 9.0),)).build()
        assert schedule.crashed_by(4.0) == ("s2",)
        assert schedule.crashed_by(10.0) == ()

    def test_permanent_outage_never_recovers(self):
        schedule = FaultSpec(outages=(("s2", 3.0),)).build()
        assert schedule.crashed_by(1e9) == ("s2",)


class TestSpecFiles:
    def test_all_example_spec_files_load_build_and_step(self):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "check_specs", REPO_ROOT / "tools" / "check_specs.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        problems = []
        files = sorted(SPEC_DIR.glob("*.json"))
        assert files, "no example spec files found"
        for path in files:
            problems.extend(module.check_spec_file(path))
        assert problems == []

    def test_quickstart_spec_file_matches_registered_scenario(self):
        spec_result = run_spec(load_spec_file(str(SPEC_DIR / "quickstart.json")))
        assert spec_result == get_scenario("quickstart").execute()

    def test_load_rejects_unknown_keys_and_bad_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "bogus": 1}')
        with pytest.raises(ConfigurationError, match="unknown key"):
            load_spec_file(str(bad))
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_spec_file(str(broken))
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_spec_file(str(tmp_path / "missing.json"))


@pytest.fixture
def restore_catalogue_entry():
    """Put a catalogue entry back after a --spec run shadowed its name.

    The CLI registers a spec file under its own name with ``replace=True``;
    simply unregistering afterwards would delete the name for the rest of
    the process (the built-in catalogue only loads once), so the original
    entry is captured up front and re-registered.
    """
    originals = {}

    def capture(name):
        originals[name] = get_scenario(name)

    yield capture
    for entry in originals.values():
        register(entry, replace=True)


class TestCliSpecFiles:
    def test_run_spec_file(self, tmp_path, capsys, restore_catalogue_entry):
        restore_catalogue_entry("quickstart")
        out = tmp_path / "out.json"
        assert main(["run", "--spec", str(SPEC_DIR / "quickstart.json"),
                     "-p", "workload.operations_per_client=2",
                     "--json", str(out), "--quiet"]) == 0
        payload = json.loads(out.read_text())
        assert payload[0]["scenario"] == "quickstart"
        assert payload[0]["result"]["operations"] == 4

    def test_sweep_spec_file_over_monitoring_threshold(
        self, tmp_path, capsys, restore_catalogue_entry
    ):
        restore_catalogue_entry("hotspot-shift-monitoring")
        out = tmp_path / "sweep.json"
        assert main(["sweep", "--spec",
                     str(SPEC_DIR / "hotspot-shift-monitoring.json"),
                     "-g", "monitoring.policy.threshold=0.05,5.0",
                     "-p", "workload.operations_per_client=3",
                     "--json", str(out), "--quiet", "--no-progress"]) == 0
        payload = json.loads(out.read_text())
        thresholds = [entry["params"]["monitoring.policy.threshold"]
                      for entry in payload]
        assert thresholds == [0.05, 5.0]
        assert all("monitoring" in entry["result"] for entry in payload)

    def test_spec_and_scenario_name_are_mutually_exclusive(self, capsys):
        assert main(["run", "quickstart", "--spec",
                     str(SPEC_DIR / "quickstart.json")]) == 2
        assert "not both" in capsys.readouterr().err

    def test_run_without_scenario_or_spec_fails(self, capsys):
        assert main(["run"]) == 2
        assert "required" in capsys.readouterr().err


class TestAssetTransferScenario:
    def test_registered_and_reproduces_section_viii_claims(self):
        result = get_scenario("asset-transfer").execute()
        one, k, pairwise = (result["one_asset"], result["k_asset"],
                            result["pairwise"])
        # 1-owner transfers all apply without an ordering service.
        assert one["applied"] == 3 and one["total_conserved"]
        # Conflicting k-owner overdraws: exactly one wins, everywhere alike.
        assert k["applied"] == 1 and k["consistent"]
        # Pairwise reassignment rejects the second transfer although no
        # balance went negative: the P-Integrity distribution constraint.
        assert pairwise["first_effective"] and not pairwise["second_effective"]
        assert pairwise["balances_non_negative"]

    def test_parameters_are_spec_section_backed(self):
        from repro.experiments.catalogue import AssetTransferSpec
        section = AssetTransferSpec(n=4)
        assert AssetTransferSpec.from_dict(section.to_dict()) == section
        assert "ring_amount" in section.flatten()
        with pytest.raises(ConfigurationError, match="n >= 3"):
            AssetTransferSpec(n=2).validate()

    def test_invalid_amounts_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            get_scenario("asset-transfer").execute({"ring_amount": -1.0})
