"""Tests for the dynamic-weighted atomic storage (Algorithms 5 and 6)."""

from __future__ import annotations

import pytest

from repro.core.spec import SystemConfig
from repro.core.storage import (
    DynamicWeightedStorageClient,
    DynamicWeightedStorageServer,
)
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import Network
from repro.net.simloop import SimLoop, gather

from tests.conftest import check_atomic_history, history_from_records


def build_storage_cluster(n, f, latency=None, clients=2):
    loop = SimLoop()
    network = Network(loop, latency or ConstantLatency(1.0))
    config = SystemConfig.uniform(n, f=f)
    servers = {
        pid: DynamicWeightedStorageServer(pid, network, config) for pid in config.servers
    }
    client_map = {
        f"c{i}": DynamicWeightedStorageClient(f"c{i}", network, config)
        for i in range(1, clients + 1)
    }
    return loop, network, config, servers, client_map


class TestReadWriteBasics:
    def test_read_of_unwritten_register_returns_none(self):
        loop, _, _, _, clients = build_storage_cluster(3, 1)
        assert loop.run_until_complete(clients["c1"].read()) is None

    def test_read_returns_last_written_value(self):
        loop, _, _, _, clients = build_storage_cluster(5, 1)

        async def go():
            await clients["c1"].write("alpha")
            await clients["c1"].write("beta")
            return await clients["c2"].read()

        assert loop.run_until_complete(go()) == "beta"

    def test_write_of_none_rejected(self):
        loop, _, _, _, clients = build_storage_cluster(3, 1)

        async def go():
            await clients["c1"].write(None)

        with pytest.raises(ConfigurationError):
            loop.run_until_complete(go())

    def test_multi_writer_tags_are_ordered_by_writer_id(self):
        loop, _, _, _, clients = build_storage_cluster(5, 1)

        async def go():
            await clients["c1"].write("from-c1")
            await clients["c2"].write("from-c2")
            return await clients["c1"].read()

        assert loop.run_until_complete(go()) == "from-c2"

    def test_operation_records_are_kept(self):
        loop, _, _, _, clients = build_storage_cluster(3, 1)

        async def go():
            await clients["c1"].write("x")
            await clients["c1"].read()

        loop.run_until_complete(go())
        kinds = [record.kind for record in clients["c1"].history]
        assert kinds == ["write", "read"]
        assert all(record.latency > 0 for record in clients["c1"].history)

    def test_reads_survive_f_crashes(self):
        loop, network, _, _, clients = build_storage_cluster(5, 2)

        async def go():
            await clients["c1"].write("durable")
            network.crash("s4")
            network.crash("s5")
            return await clients["c2"].read()

        assert loop.run_until_complete(go()) == "durable"


class TestAtomicity:
    def test_concurrent_clients_histories_are_atomic(self):
        loop, _, _, _, clients = build_storage_cluster(
            5, 2, latency=UniformLatency(0.5, 2.5, seed=42), clients=4
        )

        async def writer(client, prefix, count):
            for index in range(count):
                await client.write(f"{prefix}-{index}")
                await loop.sleep(0.3)

        async def reader(client, count):
            for _ in range(count):
                await client.read()
                await loop.sleep(0.2)

        loop.run_until_complete(
            gather(
                loop,
                [
                    writer(clients["c1"], "a", 6),
                    writer(clients["c2"], "b", 6),
                    reader(clients["c3"], 10),
                    reader(clients["c4"], 10),
                ],
            )
        )
        entries = []
        for client in clients.values():
            entries.extend(history_from_records(client.history))
        assert check_atomic_history(entries) == []

    def test_atomicity_with_concurrent_transfers(self):
        """Definition 6 holds while weights are being reassigned mid-workload."""
        loop, _, _, servers, clients = build_storage_cluster(
            7, 2, latency=UniformLatency(0.5, 2.0, seed=7), clients=3
        )

        async def workload(client, prefix):
            for index in range(5):
                await client.write(f"{prefix}-{index}")
                value = await client.read()
                assert value is not None

        async def reassigner():
            await loop.sleep(1.0)
            await servers["s4"].transfer("s1", 0.2)
            await servers["s5"].transfer("s2", 0.2)
            await servers["s6"].transfer("s3", 0.2)

        loop.run_until_complete(
            gather(
                loop,
                [
                    workload(clients["c1"], "x"),
                    workload(clients["c2"], "y"),
                    workload(clients["c3"], "z"),
                    reassigner(),
                ],
            )
        )
        entries = []
        for client in clients.values():
            entries.extend(history_from_records(client.history))
        assert check_atomic_history(entries) == []

    def test_two_sequential_reads_are_monotonic(self):
        """Definition 6 directly: a later read never returns an older value."""
        loop, _, _, _, clients = build_storage_cluster(5, 1, clients=2)

        async def go():
            await clients["c1"].write("v1")
            first = await clients["c2"].read()
            await clients["c1"].write("v2")
            second = await clients["c2"].read()
            return first, second

        first, second = loop.run_until_complete(go())
        assert first == "v1"
        assert second == "v2"


class TestWeightAwareQuorums:
    def test_client_learns_new_weights_and_restarts(self):
        loop, _, config, servers, clients = build_storage_cluster(7, 2)

        async def go():
            await clients["c1"].write("seed")
            await servers["s4"].transfer("s1", 0.2)
            await servers["s5"].transfer("s2", 0.2)
            await servers["s6"].transfer("s3", 0.2)
            await clients["c1"].read()
            return clients["c1"].observed_weights()

        weights = loop.run_until_complete(go())
        assert weights["s1"] == pytest.approx(1.2)
        assert weights["s4"] == pytest.approx(0.8)
        restarts = sum(record.restarts for record in clients["c1"].history)
        assert restarts >= 1  # the post-transfer read had to refresh its view

    def test_minority_quorum_suffices_after_reassignment(self):
        """After the Fig. 1 transfers, {s1,s2,s3} alone can serve operations."""
        loop, network, config, servers, clients = build_storage_cluster(7, 2)

        async def reassign_and_isolate():
            await servers["s4"].transfer("s1", 0.2)
            await servers["s5"].transfer("s2", 0.2)
            await servers["s6"].transfer("s3", 0.2)
            # Let the change sets propagate everywhere before partitioning.
            await loop.sleep(10.0)
            # Make the client learn the new weights before the partition.
            await clients["c1"].write("before-partition")
            network.partition([["s1", "s2", "s3", "c1"], ["s4", "s5", "s6", "s7"]])
            await clients["c1"].write("inside-minority")
            return await clients["c1"].read()

        assert loop.run_until_complete(reassign_and_isolate()) == "inside-minority"

    def test_uniform_weights_require_majority(self):
        """Without reassignment the same 3-of-7 partition blocks operations."""
        from repro.errors import DeadlockError

        loop, network, config, servers, clients = build_storage_cluster(7, 2)

        async def go():
            await clients["c1"].write("seed")
            network.partition([["s1", "s2", "s3", "c1"], ["s4", "s5", "s6", "s7"]])
            await clients["c1"].read()

        with pytest.raises(DeadlockError):
            loop.run_until_complete(go())

    def test_gaining_server_refreshes_register_before_acking(self):
        """Algorithm 4 lines 8-9: the beneficiary reads before storing the gain."""
        loop, _, config, servers, clients = build_storage_cluster(5, 1)

        async def go():
            await clients["c1"].write("precious")
            await servers["s2"].transfer("s1", 0.2)
            return servers["s1"].stored.value

        assert loop.run_until_complete(go()) == "precious"

    def test_server_storage_read(self):
        loop, _, config, servers, clients = build_storage_cluster(5, 1)

        async def go():
            await clients["c1"].write("shared")
            return await servers["s3"].storage_read()

        assert loop.run_until_complete(go()) == "shared"
